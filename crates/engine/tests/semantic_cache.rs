//! Behavioural and equivalence tests for [`SemanticCache`]: exact hits,
//! ±-assembly from containing entries, the cost-model fall-through,
//! region-wise invalidation across snapshot installs, and the headline
//! guarantee — cache-assembled sums bit-identical to direct execution
//! under random interleaved update installs, for both
//! `Parallelism::Sequential` and `Parallelism::Threads(n)` engines.

use olap_array::{DenseArray, Parallelism, Region, Shape};
use olap_engine::{
    AdaptiveRouter, CubeIndex, IndexConfig, NaiveEngine, RangeEngine, SemanticCache, SumTreeEngine,
    VersionCell,
};
use olap_query::{EngineKind, RangeQuery};
use proptest::prelude::*;
use std::sync::Arc;

fn cube(shape: &[usize]) -> DenseArray<i64> {
    DenseArray::from_fn(Shape::new(shape).unwrap(), |i| {
        let mut h = 0i64;
        for (axis, &x) in i.iter().enumerate() {
            h = h * 31 + (x as i64 + 7) * (axis as i64 + 3);
        }
        h % 101 - 50
    })
}

fn q(bounds: &[(usize, usize)]) -> RangeQuery {
    RangeQuery::from_region(&Region::from_bounds(bounds).unwrap())
}

fn router(a: &DenseArray<i64>, par: Parallelism) -> AdaptiveRouter<i64> {
    let config = IndexConfig {
        parallelism: par,
        ..IndexConfig::default()
    };
    AdaptiveRouter::new()
        .with_engine(Box::new(CubeIndex::build(a.clone(), config).unwrap()))
        .with_engine(Box::new(NaiveEngine::new(a.clone())))
}

fn oracle(a: &DenseArray<i64>, region: &Region) -> i64 {
    a.fold_region(region, 0i64, |acc, &v| acc + v)
}

/// A router whose only engine is the naive scan: direct execution costs
/// the full region volume, so ±-assembly from a cached superset is the
/// economical plan whenever the residual frame is thin. (With a
/// prefix-sum engine in the set, direct execution costs `2^d` and the
/// cost model correctly refuses to assemble — covered separately below.)
fn naive_router(a: &DenseArray<i64>) -> AdaptiveRouter<i64> {
    AdaptiveRouter::new().with_engine(Box::new(NaiveEngine::new(a.clone())))
}

#[test]
fn exact_hit_answers_from_the_cache() {
    let a = cube(&[32, 16]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 64);
    let query = q(&[(4, 19), (2, 13)]);
    let expect = oracle(&a, &Region::from_bounds(&[(4, 19), (2, 13)]).unwrap());

    let first = cache.range_sum(&query).unwrap();
    assert_eq!(first.value(), Some(&expect));
    assert_ne!(first.answered_by, EngineKind::SemanticCache);

    let second = cache.range_sum(&query).unwrap();
    assert_eq!(second.value(), Some(&expect));
    assert_eq!(second.answered_by, EngineKind::SemanticCache);
    // A pure hit touches no elements — only one combine step.
    assert_eq!(second.cost(), 0);
    assert_eq!(second.stats.combine_steps, 1);

    let stats = cache.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn containment_hit_assembles_by_subtraction() {
    let a = cube(&[32, 16]);
    let cache = SemanticCache::new(naive_router(&a), 64);
    let superset = Region::from_bounds(&[(0, 31), (0, 15)]).unwrap();
    cache.prime(&superset).unwrap();

    // A large interior box: small residual relative to direct execution
    // on the naive/indexed engines.
    let target = Region::from_bounds(&[(1, 30), (1, 14)]).unwrap();
    let out = cache.range_sum(&RangeQuery::from_region(&target)).unwrap();
    assert_eq!(out.value(), Some(&oracle(&a, &target)));
    assert_eq!(out.answered_by, EngineKind::SemanticCache);

    let stats = cache.stats();
    assert_eq!(stats.assemblies, 1);
    assert_eq!(stats.hits, 0);
    // The assembled answer was inserted, so a repeat is an exact hit.
    let again = cache.range_sum(&RangeQuery::from_region(&target)).unwrap();
    assert_eq!(again.value(), Some(&oracle(&a, &target)));
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn cost_model_prefers_direct_execution_for_tiny_queries() {
    let a = cube(&[32, 16]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 64);
    cache
        .prime(&Region::from_bounds(&[(0, 31), (0, 15)]).unwrap())
        .unwrap();
    // A point query: the prefix-sum direct plan costs 2^d lookups while
    // the assembly would execute huge residual slabs — must fall through.
    let out = cache.range_sum(&q(&[(5, 5), (5, 5)])).unwrap();
    assert_ne!(out.answered_by, EngineKind::SemanticCache);
    assert_eq!(
        out.value(),
        Some(&oracle(
            &a,
            &Region::from_bounds(&[(5, 5), (5, 5)]).unwrap()
        ))
    );
    let stats = cache.stats();
    assert_eq!(stats.assemblies, 0);
    assert_eq!(stats.hits, 0);
}

#[test]
fn capacity_zero_is_a_pure_passthrough() {
    let a = cube(&[16, 8]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 0);
    let query = q(&[(0, 15), (0, 7)]);
    for _ in 0..3 {
        let out = cache.range_sum(&query).unwrap();
        assert_ne!(out.answered_by, EngineKind::SemanticCache);
    }
    let stats = cache.stats();
    assert_eq!(stats.lookups(), 0);
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.hit_rate(), 0.0);
}

#[test]
fn extrema_pass_through_uncached() {
    let a = cube(&[16, 8]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 16);
    let query = q(&[(0, 15), (0, 7)]);
    let max = cache.range_max(&query).unwrap();
    let min = cache.range_min(&query).unwrap();
    assert_ne!(max.answered_by, EngineKind::SemanticCache);
    assert_ne!(min.answered_by, EngineKind::SemanticCache);
    assert_eq!(cache.stats().lookups(), 0);
}

#[test]
fn updates_invalidate_region_wise_not_globally() {
    let a = cube(&[32, 16]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 64);
    // Two entries in different leading-dimension slabs.
    let low = Region::from_bounds(&[(0, 3), (0, 15)]).unwrap();
    let high = Region::from_bounds(&[(28, 31), (0, 15)]).unwrap();
    cache.prime(&low).unwrap();
    cache.prime(&high).unwrap();
    assert_eq!(cache.stats().entries, 2);

    // Update one cell inside `low`: only that entry may be dropped.
    cache.apply_updates(&[(vec![1, 1], 999)]).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.entries, 1);

    // The surviving entry answers exactly at the *new* epoch…
    let out = cache.range_sum(&RangeQuery::from_region(&high)).unwrap();
    assert_eq!(out.answered_by, EngineKind::SemanticCache);
    assert_eq!(out.value(), Some(&oracle(&a, &high)));
    // …and the invalidated region reflects the update on re-execution.
    let mut shadow = a.clone();
    *shadow.get_mut(&[1, 1]) = 999;
    let out = cache.range_sum(&RangeQuery::from_region(&low)).unwrap();
    assert_ne!(out.answered_by, EngineKind::SemanticCache);
    assert_eq!(out.value(), Some(&oracle(&shadow, &low)));
}

#[test]
fn failed_cell_updates_install_nothing_and_keep_entries() {
    // A VersionCell installs nothing on a failed derive, so current
    // entries stay valid and keep answering.
    let a = cube(&[16, 8]);
    let cell = VersionCell::new(Box::new(NaiveEngine::new(a.clone())) as Box<dyn RangeEngine<i64>>);
    let cache = SemanticCache::new(cell, 16);
    let region = Region::from_bounds(&[(0, 7), (0, 7)]).unwrap();
    cache.prime(&region).unwrap();
    let epoch = cache.epoch();
    assert!(cache.apply_updates(&[(vec![99, 99], 1)]).is_err());
    assert_eq!(cache.epoch(), epoch);
    assert_eq!(cache.stats().entries, 1);
    let out = cache.range_sum(&RangeQuery::from_region(&region)).unwrap();
    assert_eq!(out.answered_by, EngineKind::SemanticCache);
    assert_eq!(out.value(), Some(&oracle(&a, &region)));
}

#[test]
fn failed_router_updates_flush_conservatively() {
    // The router installs a successor set even when a derive fails (the
    // healthy engines stay mutually consistent), so pre-batch sums may
    // no longer describe the serving snapshot — the cache must drop them.
    let a = cube(&[16, 8]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 16);
    let region = Region::from_bounds(&[(0, 7), (0, 7)]).unwrap();
    cache.prime(&region).unwrap();
    assert!(cache.apply_updates(&[(vec![99, 99], 1)]).is_err());
    assert_eq!(cache.stats().entries, 0);
    let out = cache.range_sum(&RangeQuery::from_region(&region)).unwrap();
    assert_ne!(out.answered_by, EngineKind::SemanticCache);
}

#[test]
fn lru_eviction_bounds_the_table() {
    let a = cube(&[32, 16]);
    let cache = SemanticCache::new(router(&a, Parallelism::Sequential), 2);
    for k in 0..5usize {
        cache
            .prime(&Region::from_bounds(&[(k * 4, k * 4 + 3), (0, 15)]).unwrap())
            .unwrap();
    }
    let stats = cache.stats();
    assert!(stats.entries <= 2, "{stats:?}");
    assert_eq!(stats.insertions, 5);
    assert_eq!(stats.evictions, 3);
}

#[test]
fn installs_bypassing_the_cache_never_serve_stale_sums() {
    let a = cube(&[16, 8]);
    let cell = Arc::new(VersionCell::new(
        Box::new(NaiveEngine::new(a.clone())) as Box<dyn RangeEngine<i64>>
    ));
    let cache = SemanticCache::new(Arc::clone(&cell), 16);
    let region = Region::from_bounds(&[(0, 7), (0, 7)]).unwrap();
    cache.prime(&region).unwrap();

    // Out-of-band install, not routed through the cache.
    cell.update(&[(vec![0, 0], 12345)]).unwrap();
    let mut shadow = a.clone();
    *shadow.get_mut(&[0, 0]) = 12345;

    let out = cache.range_sum(&RangeQuery::from_region(&region)).unwrap();
    assert_ne!(out.answered_by, EngineKind::SemanticCache);
    assert_eq!(out.value(), Some(&oracle(&shadow, &region)));
}

#[test]
fn version_cell_backend_supports_the_full_protocol() {
    let a = cube(&[24, 10]);
    let cell = VersionCell::new(Box::new(NaiveEngine::new(a.clone())) as Box<dyn RangeEngine<i64>>);
    let cache = SemanticCache::with_label(cell, 32, "cell-cache");
    let sup = Region::from_bounds(&[(0, 23), (0, 9)]).unwrap();
    cache.prime(&sup).unwrap();
    let target = Region::from_bounds(&[(1, 22), (1, 8)]).unwrap();
    let out = cache.range_sum(&RangeQuery::from_region(&target)).unwrap();
    assert_eq!(out.value(), Some(&oracle(&a, &target)));
    assert_eq!(out.answered_by, EngineKind::SemanticCache);
    cache.apply_updates(&[(vec![2, 2], -7)]).unwrap();
    let mut shadow = a.clone();
    *shadow.get_mut(&[2, 2]) = -7;
    let out = cache.range_sum(&RangeQuery::from_region(&target)).unwrap();
    assert_eq!(out.value(), Some(&oracle(&shadow, &target)));
}

#[test]
fn concurrent_installs_never_tear_cached_answers() {
    let a = cube(&[16, 16]);
    let probe = Region::from_bounds(&[(0, 15), (0, 15)]).unwrap();
    let pre = oracle(&a, &probe);
    let mut shadow = a.clone();
    *shadow.get_mut(&[3, 3]) = 7777;
    let post = oracle(&shadow, &probe);

    for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let cache = Arc::new(SemanticCache::new(router(&a, par), 32));
        cache.prime(&probe).unwrap();
        // Sub-boxes assembled from the cached superset while an install
        // lands mid-stream: every answer must match the pre- or
        // post-update oracle exactly — never a mix of snapshots.
        let sub = Region::from_bounds(&[(1, 14), (1, 14)]).unwrap();
        let sub_pre = oracle(&a, &sub);
        let sub_post = oracle(&shadow, &sub);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let sub = sub.clone();
                let probe = probe.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let got = *cache
                            .range_sum(&RangeQuery::from_region(&probe))
                            .unwrap()
                            .value()
                            .unwrap();
                        assert!(got == pre || got == post, "torn full-box read: {got}");
                        let got = *cache
                            .range_sum(&RangeQuery::from_region(&sub))
                            .unwrap()
                            .value()
                            .unwrap();
                        assert!(
                            got == sub_pre || got == sub_post,
                            "torn assembled read: {got} (pre {sub_pre}, post {sub_post})"
                        );
                    }
                });
            }
            cache.apply_updates(&[(vec![3, 3], 7777)]).unwrap();
        });
    }
}

/// One step of the randomised interleaving.
#[derive(Debug, Clone)]
enum Op {
    Query(Vec<(usize, usize)>),
    Update(Vec<(Vec<usize>, i64)>),
}

fn arb_bounds(shape: &'static [usize]) -> impl Strategy<Value = Vec<(usize, usize)>> {
    shape
        .iter()
        .map(|&n| (0..n, 0..n).prop_map(|(a, b)| (a.min(b), a.max(b))))
        .collect::<Vec<_>>()
}

fn arb_op(shape: &'static [usize]) -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is uniform; repeating the query arm
    // weights the mix ~3:1 queries to updates.
    prop_oneof![
        arb_bounds(shape).prop_map(Op::Query),
        arb_bounds(shape).prop_map(Op::Query),
        arb_bounds(shape).prop_map(Op::Query),
        prop::collection::vec(
            (
                shape.iter().map(|&n| 0..n).collect::<Vec<_>>(),
                -100i64..100
            ),
            1..4
        )
        .prop_map(Op::Update),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline equivalence: across a random interleaving of queries
    /// and update installs, every answer the cache produces — exact hit,
    /// ±-assembly, or fall-through — is bit-identical to the sequential
    /// point-wise oracle on the current snapshot, under both Sequential
    /// and Threads(n) engine execution.
    #[test]
    fn cached_answers_match_the_oracle_under_interleaved_installs(
        ops in prop::collection::vec(arb_op(&[12, 10]), 1..40),
        cap in prop_oneof![Just(0usize), Just(4), Just(64)],
    ) {
        for par in [Parallelism::Sequential, Parallelism::Threads(3)] {
            let mut shadow = cube(&[12, 10]);
            let cache = SemanticCache::new(
                AdaptiveRouter::new()
                    .with_engine(Box::new(
                        CubeIndex::build(
                            shadow.clone(),
                            IndexConfig { parallelism: par, ..IndexConfig::default() },
                        )
                        .unwrap(),
                    ))
                    .with_engine(Box::new(SumTreeEngine::build(shadow.clone(), 4).unwrap()))
                    .with_engine(Box::new(NaiveEngine::new(shadow.clone()))),
                cap,
            );
            for op in &ops {
                match op {
                    Op::Query(bounds) => {
                        let region = Region::from_bounds(bounds).unwrap();
                        let out = cache
                            .range_sum(&RangeQuery::from_region(&region))
                            .unwrap();
                        prop_assert_eq!(
                            out.value(),
                            Some(&oracle(&shadow, &region)),
                            "bounds {:?} via {} (cap {})",
                            bounds,
                            out.answered_by,
                            cap
                        );
                    }
                    Op::Update(batch) => {
                        cache.apply_updates(batch).unwrap();
                        for (idx, v) in batch {
                            *shadow.get_mut(idx) = *v;
                        }
                    }
                }
            }
        }
    }
}
