//! `QueryOutcome` must carry the engine's `AccessStats` through
//! trait-object dispatch unchanged: the paper's §8 cost accounting is only
//! trustworthy if no layer between the algorithm and the caller rewrites
//! or drops counters.

use olap_array::{DenseArray, Region, Shape};
use olap_engine::{AdaptiveRouter, CubeIndex, IndexConfig, RangeEngine};
use olap_query::RangeQuery;

fn cube() -> DenseArray<i64> {
    DenseArray::from_fn(Shape::new(&[32, 24]).unwrap(), |i| {
        (i[0] * 5 + i[1] * 3) as i64 % 19
    })
}

fn query() -> RangeQuery {
    RangeQuery::from_region(&Region::from_bounds(&[(1, 30), (2, 20)]).unwrap())
}

#[test]
fn stats_survive_boxed_dispatch() {
    let a = cube();
    let idx = CubeIndex::build(a.clone(), IndexConfig::default()).unwrap();
    let q = query();
    let region = q.to_region(a.shape()).unwrap();
    let (direct_v, direct_stats) = idx.range_sum(&region).unwrap();

    let boxed: Box<dyn RangeEngine<i64>> = Box::new(idx);
    let outcome = boxed.range_sum(&q).unwrap();
    assert_eq!(outcome.value(), Some(&direct_v));
    assert_eq!(
        outcome.stats, direct_stats,
        "boxed dispatch must forward AccessStats field-for-field"
    );
    assert_eq!(outcome.cost(), direct_stats.total_accesses());
}

#[test]
fn stats_survive_router_dispatch() {
    let a = cube();
    let idx = CubeIndex::build(a.clone(), IndexConfig::default()).unwrap();
    let q = query();
    let region = q.to_region(a.shape()).unwrap();
    let (_, direct_stats) = idx.range_sum(&region).unwrap();

    let router = AdaptiveRouter::new().with_engine(Box::new(idx) as Box<dyn RangeEngine<i64>>);
    let outcome = router.range_sum(&q).unwrap();
    assert_eq!(
        outcome.stats, direct_stats,
        "routing must not perturb the observed stats it calibrates on"
    );
}

#[cfg(feature = "telemetry")]
#[test]
fn stats_unchanged_with_telemetry_recording() {
    // Recording is observation only: the outcome with a telemetry context
    // active must be bit-identical to the outcome without one.
    let a = cube();
    let idx = CubeIndex::build(a, IndexConfig::default()).unwrap();
    let boxed: Box<dyn RangeEngine<i64>> = Box::new(idx);
    let q = query();
    let quiet = boxed.range_sum(&q).unwrap();
    let ctx = std::sync::Arc::new(olap_telemetry::Telemetry::new());
    let recorded = olap_telemetry::with_scope(&ctx, || boxed.range_sum(&q).unwrap());
    assert_eq!(quiet.stats, recorded.stats);
    assert_eq!(quiet.value(), recorded.value());
    // And the recorded access histogram saw exactly the outcome's cost.
    let h = ctx.registry().histogram(
        "olap_engine_accesses",
        &[("engine", "cube-index(basic-prefix)"), ("op", "range_sum")],
    );
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), recorded.cost());
}
