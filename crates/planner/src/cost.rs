//! The analytic cost models of §8 and §9.3.
//!
//! All costs are in the paper's unit: *number of elements accessed* to
//! answer a query, using the query statistics of Table 1 (volume `V`,
//! surface area `S`).
//!
//! Every function here is **total**: the `2^d` terms are computed in f64
//! (saturating to `+∞` beyond the exponent range instead of overflowing a
//! shift), and the one genuinely partial operation — a tree depth with a
//! fanout that cannot shrink the domain — reports a [`CostError`] instead
//! of panicking.

use std::fmt;

/// Errors from the cost model's partial inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostError {
    /// A tree of fanout `b < 2` never shrinks its domain, so it has no
    /// finite depth.
    FanoutTooSmall {
        /// The offending fanout.
        b: usize,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::FanoutTooSmall { b } => {
                write!(f, "tree fanout must be ≥ 2, got {b}")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// `2^d` as an f64, for any `d`: exact for `d ≤ 52`, and saturating to
/// `+∞` once `d` exceeds the exponent range — no shift overflow.
pub fn pow2(d: usize) -> f64 {
    (d as f64).exp2()
}

/// `b^e` in f64 with a clamped integer exponent, saturating instead of
/// overflowing the `i32` exponent of `powi`.
fn powu(b: f64, e: usize) -> f64 {
    b.powi(e.min(i32::MAX as usize) as i32)
}

/// `F(b)`: the expected number of boundary cells accessed per unit of
/// query surface (§8): `b/4` for even `b`, `b/4 − 1/(4b)` for odd `b`
/// (and 0 for `b = 1`, which is the basic algorithm).
pub fn f_of_b(b: usize) -> f64 {
    let bf = b as f64;
    if b.is_multiple_of(2) {
        bf / 4.0
    } else {
        bf / 4.0 - 1.0 / (4.0 * bf)
    }
}

/// Average cost of the (blocked) prefix-sum algorithm, Equation 3:
/// `2^d + S·F(b)`.
pub fn prefix_sum_cost(d: usize, surface: f64, b: usize) -> f64 {
    pow2(d) + surface * f_of_b(b)
}

/// Depth `t` of a tree of fanout `b` per dimension over a domain of
/// maximum extent `n`: `⌈log_b n⌉`.
///
/// # Errors
/// [`CostError::FanoutTooSmall`] for `b < 2` (such a tree never shrinks
/// the domain, so it has no finite depth).
pub fn tree_depth(n: usize, b: usize) -> Result<usize, CostError> {
    if b < 2 {
        return Err(CostError::FanoutTooSmall { b });
    }
    let mut t = 0;
    let mut cover = 1usize;
    while cover < n {
        cover = cover.saturating_mul(b);
        t += 1;
    }
    Ok(t.max(1))
}

/// Average cost of the hierarchical-tree range-sum (§8):
/// `F(b) · Σ_{k=0}^{t−1} S / b^{k(d−1)}`.
///
/// Total in `d`: a (degenerate) `d = 0` is treated like `d = 1`, where
/// every level contributes the full surface term.
pub fn tree_cost(d: usize, surface: f64, b: usize, depth: usize) -> f64 {
    let f = f_of_b(b);
    let mut total = 0.0;
    for k in 0..depth {
        total += surface / powu(b as f64, k.saturating_mul(d.saturating_sub(1)));
    }
    f * total
}

/// The Figure-11 closed form: for queries of side `α·b` in every
/// dimension, `Cost(tree) − Cost(prefix sum) ≈ d·α^{d−1}·b/2 − 2^d`.
pub fn fig11_difference(d: usize, b: usize, alpha: f64) -> f64 {
    d as f64 * powu(alpha, d.saturating_sub(1)) * b as f64 / 2.0 - pow2(d)
}

/// Benefit/space ratio of materializing a blocked prefix sum (§9.3):
/// `(N_Q/N) · [(V − 2^d)·b^d − (S/4)·b^{d+1}]`.
///
/// `nq_over_n` is the query count divided by the cuboid size.
pub fn benefit_space_ratio(nq_over_n: f64, v: f64, s: f64, d: usize, b: usize) -> f64 {
    let bf = b as f64;
    nq_over_n * ((v - pow2(d)) * powu(bf, d) - (s / 4.0) * powu(bf, d.saturating_add(1)))
}

/// The block size maximising benefit/space (§9.3):
/// `b* = (V − 2^d)/(S/4) · d/(d+1)`, rounded to whichever neighbouring
/// integer gives the better ratio.
///
/// Returns `None` when blocking cannot pay off: `V − 2^d ≤ S/4` (the paper:
/// "there is no benefit to computing the prefix sum with blocking"), in
/// which case the caller should consider `b = 1`.
pub fn optimal_block_size(v: f64, s: f64, d: usize) -> Option<usize> {
    let v_eff = v - pow2(d);
    if v_eff <= s / 4.0 || s <= 0.0 {
        return None;
    }
    let b_star = v_eff / (s / 4.0) * d as f64 / (d as f64 + 1.0);
    let lo = (b_star.floor() as usize).max(1);
    let hi = (b_star.ceil() as usize).max(1);
    let ratio = |b: usize| benefit_space_ratio(1.0, v, s, d, b);
    let best = if ratio(lo) >= ratio(hi) { lo } else { hi };
    // A maximiser below 2 means blocking never beats the basic algorithm.
    if best < 2 {
        None
    } else {
        Some(best)
    }
}

/// §9.3, "Incorporating the effect of prefix sums on ancestor cuboids":
/// when an ancestor already has a prefix sum with block size `b0`, the
/// benefit is `N_Q·(S/4)(b0 − b)` for `b < b0` and 0 otherwise, whose
/// benefit/space maximiser is `b = b0·d/(d+1)`.
pub fn optimal_block_size_under_ancestor(b0: usize, d: usize) -> usize {
    ((b0 as f64 * d as f64 / (d as f64 + 1.0)).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_of_b_basic_cases() {
        assert_eq!(f_of_b(1), 0.0); // basic algorithm: no boundary cells
        assert_eq!(f_of_b(4), 1.0);
        assert_eq!(f_of_b(100), 25.0);
        // Odd b: b/4 − 1/(4b).
        assert!((f_of_b(5) - (1.25 - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn prefix_cost_reduces_to_basic() {
        // F(1) = 0 ⇒ cost = 2^d exactly (the paper notes the formula is
        // right for the basic algorithm).
        assert_eq!(prefix_sum_cost(3, 600.0, 1), 8.0);
        assert_eq!(prefix_sum_cost(2, 40.0, 4), 4.0 + 40.0);
    }

    #[test]
    fn tree_depth_examples() {
        assert_eq!(tree_depth(14, 3).unwrap(), 3); // Figure 9
        assert_eq!(tree_depth(1000, 10).unwrap(), 3);
        assert_eq!(tree_depth(1001, 10).unwrap(), 4);
        assert_eq!(tree_depth(1, 2).unwrap(), 1);
    }

    #[test]
    fn tree_depth_rejects_degenerate_fanouts() {
        assert_eq!(tree_depth(100, 0), Err(CostError::FanoutTooSmall { b: 0 }));
        assert_eq!(tree_depth(100, 1), Err(CostError::FanoutTooSmall { b: 1 }));
        assert!(tree_depth(100, 1).unwrap_err().to_string().contains("≥ 2"));
    }

    #[test]
    fn pow2_is_exact_then_saturates() {
        assert_eq!(pow2(0), 1.0);
        assert_eq!(pow2(10), 1024.0);
        assert_eq!(pow2(63), 9_223_372_036_854_775_808.0);
        // Beyond the u64 shift range: finite up to the f64 exponent limit,
        // then +∞ — never an overflow panic or a wrapped shift.
        assert_eq!(pow2(64), 2.0f64.powi(32).powi(2));
        assert!(pow2(1023).is_finite());
        assert_eq!(pow2(1024), f64::INFINITY);
        assert_eq!(pow2(usize::MAX), f64::INFINITY);
    }

    #[test]
    fn high_dimension_costs_saturate_instead_of_overflowing() {
        // d ≥ 64 used to overflow `1u64 << d`; now the 2^d term saturates.
        assert!(prefix_sum_cost(64, 100.0, 4).is_finite());
        assert_eq!(prefix_sum_cost(2000, 100.0, 4), f64::INFINITY);
        assert_eq!(fig11_difference(2000, 10, 1.0), f64::NEG_INFINITY);
        assert!(fig11_difference(64, 10, 2.0).is_finite());
        // Tree cost is total in d (d = 0 treated like d = 1) and in depth.
        assert!(tree_cost(0, 100.0, 4, 3).is_finite());
        assert!(tree_cost(70, 100.0, 4, 64).is_finite());
        // Benefit/space and b* stay total too.
        assert!(benefit_space_ratio(1.0, 1e6, 100.0, 70, 3).is_finite());
        assert_eq!(optimal_block_size(1e6, 100.0, 2000), None);
    }

    #[test]
    fn tree_cost_first_term_matches_blocked_prefix() {
        // §8: "at the lowest level of the tree, the number of elements that
        // have to be accessed is the same as for a blocked prefix sum with
        // a block size of b (ignoring the 2^d cost)".
        let s = 500.0;
        let t1 = tree_cost(3, s, 10, 1);
        assert!((t1 - s * f_of_b(10)).abs() < 1e-9);
        // Deeper trees only add cost.
        assert!(tree_cost(3, s, 10, 4) > t1);
    }

    #[test]
    fn tree_always_loses_to_prefix_for_big_queries() {
        // §8's conclusion: for α·b ≫ b the prefix sum is clearly faster.
        for d in [2usize, 3, 4] {
            for b in [10usize, 20] {
                for alpha in [4.0f64, 8.0, 16.0] {
                    let side = alpha * b as f64;
                    let v: f64 = side.powi(d as i32);
                    let s = 2.0 * d as f64 * v / side;
                    let depth = tree_depth(4096, b).unwrap();
                    assert!(
                        tree_cost(d, s, b, depth) > prefix_sum_cost(d, s, b),
                        "d={d} b={b} α={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig11_difference_is_positive_and_monotone() {
        for d in [2usize, 3, 4] {
            for b in [10usize, 20] {
                let mut prev = fig11_difference(d, b, 1.0);
                for a in 2..=20 {
                    let cur = fig11_difference(d, b, a as f64);
                    assert!(cur >= prev, "d={d} b={b} α={a}");
                    prev = cur;
                }
                // For α ≥ 2 the tree is always worse.
                assert!(fig11_difference(d, b, 2.0) > 0.0);
            }
        }
    }

    #[test]
    fn fig14_maximum_matches_closed_form() {
        // The figure's curve 100b² − 10b³ is benefit/space for d = 2 with
        // (N_Q/N)(V − 2^d) = 100 and (N_Q/N)(S/4) = 10; its maximum is at
        // b* = 10 · 2/3 = 6.67 → integer 7.
        let v = 10000.0 + 4.0;
        let s = 4000.0;
        let b = optimal_block_size(v, s, 2).unwrap();
        assert_eq!(b, 7);
        // Ratio at 7 beats 6 and 8.
        let r = |b| benefit_space_ratio(0.01, v, s, 2, b);
        assert!(r(7) >= r(6) && r(7) >= r(8));
    }

    #[test]
    fn paper_example_d3() {
        // §9.3 example: d = 3, V − 2^d = 1000, S = 400 ⇒ b* = 10·3/4 = 7.5.
        let v = 1000.0 + 8.0;
        let s = 400.0;
        let b = optimal_block_size(v, s, 3).unwrap();
        assert!(b == 7 || b == 8);
    }

    #[test]
    fn no_blocking_benefit_for_tiny_queries() {
        // V − 2^d ≤ S/4 ⇒ None.
        assert_eq!(optimal_block_size(8.0, 40.0, 2), None);
        assert_eq!(optimal_block_size(5.0, 4.0, 3), None);
    }

    #[test]
    fn ancestor_constrained_block_size() {
        assert_eq!(optimal_block_size_under_ancestor(12, 3), 9);
        assert_eq!(optimal_block_size_under_ancestor(2, 1), 1);
    }

    #[test]
    fn benefit_zero_crossing() {
        // Benefit hits 0 at b = 4(V − 2^d)/S (the paper's remark).
        let v = 1008.0;
        let s = 400.0;
        let b0 = 4.0 * (v - 8.0) / s; // = 10
        let at_cross = benefit_space_ratio(1.0, v, s, 3, b0 as usize);
        assert!(at_cross.abs() < 1e-6);
    }
}
