//! The analytic cost models of §8 and §9.3.
//!
//! All costs are in the paper's unit: *number of elements accessed* to
//! answer a query, using the query statistics of Table 1 (volume `V`,
//! surface area `S`).

/// `F(b)`: the expected number of boundary cells accessed per unit of
/// query surface (§8): `b/4` for even `b`, `b/4 − 1/(4b)` for odd `b`
/// (and 0 for `b = 1`, which is the basic algorithm).
pub fn f_of_b(b: usize) -> f64 {
    let bf = b as f64;
    if b.is_multiple_of(2) {
        bf / 4.0
    } else {
        bf / 4.0 - 1.0 / (4.0 * bf)
    }
}

/// Average cost of the (blocked) prefix-sum algorithm, Equation 3:
/// `2^d + S·F(b)`.
pub fn prefix_sum_cost(d: usize, surface: f64, b: usize) -> f64 {
    (1u64 << d) as f64 + surface * f_of_b(b)
}

/// Depth `t` of a tree of fanout `b` per dimension over a domain of
/// maximum extent `n`: `⌈log_b n⌉`.
pub fn tree_depth(n: usize, b: usize) -> usize {
    assert!(b >= 2, "tree fanout must be ≥ 2");
    let mut t = 0;
    let mut cover = 1usize;
    while cover < n {
        cover = cover.saturating_mul(b);
        t += 1;
    }
    t.max(1)
}

/// Average cost of the hierarchical-tree range-sum (§8):
/// `F(b) · Σ_{k=0}^{t−1} S / b^{k(d−1)}`.
pub fn tree_cost(d: usize, surface: f64, b: usize, depth: usize) -> f64 {
    let f = f_of_b(b);
    let mut total = 0.0;
    for k in 0..depth {
        total += surface / (b as f64).powi((k * (d - 1)) as i32);
    }
    f * total
}

/// The Figure-11 closed form: for queries of side `α·b` in every
/// dimension, `Cost(tree) − Cost(prefix sum) ≈ d·α^{d−1}·b/2 − 2^d`.
pub fn fig11_difference(d: usize, b: usize, alpha: f64) -> f64 {
    d as f64 * alpha.powi(d as i32 - 1) * b as f64 / 2.0 - (1u64 << d) as f64
}

/// Benefit/space ratio of materializing a blocked prefix sum (§9.3):
/// `(N_Q/N) · [(V − 2^d)·b^d − (S/4)·b^{d+1}]`.
///
/// `nq_over_n` is the query count divided by the cuboid size.
pub fn benefit_space_ratio(nq_over_n: f64, v: f64, s: f64, d: usize, b: usize) -> f64 {
    let bf = b as f64;
    nq_over_n * ((v - (1u64 << d) as f64) * bf.powi(d as i32) - (s / 4.0) * bf.powi(d as i32 + 1))
}

/// The block size maximising benefit/space (§9.3):
/// `b* = (V − 2^d)/(S/4) · d/(d+1)`, rounded to whichever neighbouring
/// integer gives the better ratio.
///
/// Returns `None` when blocking cannot pay off: `V − 2^d ≤ S/4` (the paper:
/// "there is no benefit to computing the prefix sum with blocking"), in
/// which case the caller should consider `b = 1`.
pub fn optimal_block_size(v: f64, s: f64, d: usize) -> Option<usize> {
    let v_eff = v - (1u64 << d) as f64;
    if v_eff <= s / 4.0 || s <= 0.0 {
        return None;
    }
    let b_star = v_eff / (s / 4.0) * d as f64 / (d as f64 + 1.0);
    let lo = (b_star.floor() as usize).max(1);
    let hi = (b_star.ceil() as usize).max(1);
    let ratio = |b: usize| benefit_space_ratio(1.0, v, s, d, b);
    let best = if ratio(lo) >= ratio(hi) { lo } else { hi };
    // A maximiser below 2 means blocking never beats the basic algorithm.
    if best < 2 {
        None
    } else {
        Some(best)
    }
}

/// §9.3, "Incorporating the effect of prefix sums on ancestor cuboids":
/// when an ancestor already has a prefix sum with block size `b0`, the
/// benefit is `N_Q·(S/4)(b0 − b)` for `b < b0` and 0 otherwise, whose
/// benefit/space maximiser is `b = b0·d/(d+1)`.
pub fn optimal_block_size_under_ancestor(b0: usize, d: usize) -> usize {
    ((b0 as f64 * d as f64 / (d as f64 + 1.0)).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_of_b_basic_cases() {
        assert_eq!(f_of_b(1), 0.0); // basic algorithm: no boundary cells
        assert_eq!(f_of_b(4), 1.0);
        assert_eq!(f_of_b(100), 25.0);
        // Odd b: b/4 − 1/(4b).
        assert!((f_of_b(5) - (1.25 - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn prefix_cost_reduces_to_basic() {
        // F(1) = 0 ⇒ cost = 2^d exactly (the paper notes the formula is
        // right for the basic algorithm).
        assert_eq!(prefix_sum_cost(3, 600.0, 1), 8.0);
        assert_eq!(prefix_sum_cost(2, 40.0, 4), 4.0 + 40.0);
    }

    #[test]
    fn tree_depth_examples() {
        assert_eq!(tree_depth(14, 3), 3); // Figure 9
        assert_eq!(tree_depth(1000, 10), 3);
        assert_eq!(tree_depth(1001, 10), 4);
        assert_eq!(tree_depth(1, 2), 1);
    }

    #[test]
    fn tree_cost_first_term_matches_blocked_prefix() {
        // §8: "at the lowest level of the tree, the number of elements that
        // have to be accessed is the same as for a blocked prefix sum with
        // a block size of b (ignoring the 2^d cost)".
        let s = 500.0;
        let t1 = tree_cost(3, s, 10, 1);
        assert!((t1 - s * f_of_b(10)).abs() < 1e-9);
        // Deeper trees only add cost.
        assert!(tree_cost(3, s, 10, 4) > t1);
    }

    #[test]
    fn tree_always_loses_to_prefix_for_big_queries() {
        // §8's conclusion: for α·b ≫ b the prefix sum is clearly faster.
        for d in [2usize, 3, 4] {
            for b in [10usize, 20] {
                for alpha in [4.0f64, 8.0, 16.0] {
                    let side = alpha * b as f64;
                    let v: f64 = side.powi(d as i32);
                    let s = 2.0 * d as f64 * v / side;
                    let depth = tree_depth(4096, b);
                    assert!(
                        tree_cost(d, s, b, depth) > prefix_sum_cost(d, s, b),
                        "d={d} b={b} α={alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig11_difference_is_positive_and_monotone() {
        for d in [2usize, 3, 4] {
            for b in [10usize, 20] {
                let mut prev = fig11_difference(d, b, 1.0);
                for a in 2..=20 {
                    let cur = fig11_difference(d, b, a as f64);
                    assert!(cur >= prev, "d={d} b={b} α={a}");
                    prev = cur;
                }
                // For α ≥ 2 the tree is always worse.
                assert!(fig11_difference(d, b, 2.0) > 0.0);
            }
        }
    }

    #[test]
    fn fig14_maximum_matches_closed_form() {
        // The figure's curve 100b² − 10b³ is benefit/space for d = 2 with
        // (N_Q/N)(V − 2^d) = 100 and (N_Q/N)(S/4) = 10; its maximum is at
        // b* = 10 · 2/3 = 6.67 → integer 7.
        let v = 10000.0 + 4.0;
        let s = 4000.0;
        let b = optimal_block_size(v, s, 2).unwrap();
        assert_eq!(b, 7);
        // Ratio at 7 beats 6 and 8.
        let r = |b| benefit_space_ratio(0.01, v, s, 2, b);
        assert!(r(7) >= r(6) && r(7) >= r(8));
    }

    #[test]
    fn paper_example_d3() {
        // §9.3 example: d = 3, V − 2^d = 1000, S = 400 ⇒ b* = 10·3/4 = 7.5.
        let v = 1000.0 + 8.0;
        let s = 400.0;
        let b = optimal_block_size(v, s, 3).unwrap();
        assert!(b == 7 || b == 8);
    }

    #[test]
    fn no_blocking_benefit_for_tiny_queries() {
        // V − 2^d ≤ S/4 ⇒ None.
        assert_eq!(optimal_block_size(8.0, 40.0, 2), None);
        assert_eq!(optimal_block_size(5.0, 4.0, 3), None);
    }

    #[test]
    fn ancestor_constrained_block_size() {
        assert_eq!(optimal_block_size_under_ancestor(12, 3), 9);
        assert_eq!(optimal_block_size_under_ancestor(2, 1), 1);
    }

    #[test]
    fn benefit_zero_crossing() {
        // Benefit hits 0 at b = 4(V − 2^d)/S (the paper's remark).
        let v = 1008.0;
        let s = 400.0;
        let b0 = 4.0 * (v - 8.0) / s; // = 10
        let at_cross = benefit_space_ratio(1.0, v, s, 3, b0 as usize);
        assert!(at_cross.abs() < 1e-6);
    }
}
