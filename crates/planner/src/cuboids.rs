//! Choosing cuboids and block sizes under a space budget (§9.2, Figure 13).
//!
//! The problem is NP-complete (reduction from Set-Cover), so the paper
//! uses a greedy search — repeatedly add the cuboid whose best-block-size
//! prefix sum maximises benefit/space — followed by a drop-and-replace
//! fine-tuning loop.

use crate::cost;
use olap_array::Shape;
use olap_query::{CuboidId, CuboidStats};
use std::collections::BTreeMap;

/// A materialization decision: a prefix sum on `cuboid` with block size
/// `block` (1 = unblocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixSumChoice {
    /// The cuboid to compute the prefix sum for.
    pub cuboid: CuboidId,
    /// Its block size.
    pub block: usize,
}

impl PrefixSumChoice {
    /// Storage cost in cells of the packed blocked array:
    /// `∏ ⌈n_j / b⌉` (asymptotically `N_c / b^{d_c}`).
    pub fn space(&self, shape: &Shape) -> f64 {
        self.cuboid
            .dims()
            .iter()
            .map(|&j| shape.dim(j).div_ceil(self.block.max(1)) as f64)
            .product()
    }
}

/// The planner's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The chosen prefix sums.
    pub choices: Vec<PrefixSumChoice>,
    /// Expected total cost (elements accessed) of the whole log under the
    /// plan.
    pub total_cost: f64,
    /// Cells of storage consumed.
    pub space_used: f64,
}

/// Greedy cuboid/block-size selection (Figure 13).
///
/// # Examples
///
/// ```
/// use olap_array::Shape;
/// use olap_planner::GreedyPlanner;
/// use olap_query::{DimSelection, QueryLog, RangeQuery};
///
/// let shape = Shape::new(&[1000, 1000]).unwrap();
/// let mut log = QueryLog::new(shape.clone());
/// for _ in 0..50 {
///     log.push(RangeQuery::new(vec![
///         DimSelection::span(100, 299).unwrap(),
///         DimSelection::All,
///     ]).unwrap());
/// }
/// let planner = GreedyPlanner::new(shape, log.cuboid_stats(), 10_000.0);
/// let plan = planner.plan();
/// assert!(!plan.choices.is_empty());
/// assert!(plan.total_cost < planner.total_cost(&[]));
/// ```
#[derive(Debug, Clone)]
pub struct GreedyPlanner {
    shape: Shape,
    stats: BTreeMap<CuboidId, CuboidStats>,
    space_limit: f64,
    /// Candidate block sizes tried for every cuboid (plus the analytic
    /// optimum of §9.3).
    candidate_blocks: Vec<usize>,
}

impl GreedyPlanner {
    /// Creates a planner for a cube shape, per-cuboid query statistics
    /// (see [`olap_query::QueryLog::cuboid_stats`]) and a space budget in
    /// cells.
    pub fn new(shape: Shape, stats: BTreeMap<CuboidId, CuboidStats>, space_limit: f64) -> Self {
        GreedyPlanner {
            shape,
            stats,
            space_limit,
            candidate_blocks: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 100],
        }
    }

    /// Cost of answering one cuboid's average query with a prefix sum on
    /// `structure` (an ancestor-or-self cuboid) with block `b`:
    /// `2^{d_struct} + S·F(b)` — the Equation-3 model, with the corner
    /// count paid on the structure's dimensionality. Capped at the naive
    /// volume `V`: when the block dwarfs the query no complete block fits
    /// inside it and the blocked algorithm degrades to the scan (the
    /// §8 caveat for very small queries, in the pessimistic direction).
    fn query_cost_with(&self, q: &CuboidStats, structure: CuboidId, b: usize) -> f64 {
        let modelled = cost::prefix_sum_cost(structure.ndim(), q.avg.surface, b);
        modelled.min(q.avg.volume)
    }

    /// Cost of answering a cuboid's average query without any prefix sum:
    /// scan the `V` cells of the query sub-cube.
    fn naive_cost(q: &CuboidStats) -> f64 {
        q.avg.volume
    }

    /// Expected cost of the whole log under a set of choices: each query
    /// cuboid uses its cheapest applicable structure (an ancestor or
    /// itself) or falls back to the naive scan.
    pub fn total_cost(&self, choices: &[PrefixSumChoice]) -> f64 {
        self.stats
            .values()
            .map(|q| {
                let mut best = Self::naive_cost(q);
                for c in choices {
                    if c.cuboid.is_ancestor_of(&q.cuboid) {
                        best = best.min(self.query_cost_with(q, c.cuboid, c.block));
                    }
                }
                q.num_queries as f64 * best
            })
            .sum()
    }

    /// Space consumed by a set of choices.
    pub fn space_used(&self, choices: &[PrefixSumChoice]) -> f64 {
        choices.iter().map(|c| c.space(&self.shape)).sum()
    }

    /// The candidate cuboids: every ancestor (in the full lattice when the
    /// cube is small, otherwise ancestors of logged cuboids) of a logged
    /// cuboid, excluding the empty cuboid.
    fn candidates(&self) -> Vec<CuboidId> {
        let d = self.shape.ndim();
        if d <= 12 {
            CuboidId::lattice(d)
                .filter(|c| c.ndim() > 0)
                .filter(|c| self.stats.keys().any(|q| c.is_ancestor_of(q)))
                .collect()
        } else {
            // Large cubes: the logged cuboids plus the full cube.
            let mut v: Vec<CuboidId> = self
                .stats
                .keys()
                .copied()
                .filter(|c| c.ndim() > 0)
                .collect();
            v.push(CuboidId::full(d));
            v.sort();
            v.dedup();
            v
        }
    }

    /// The best (block size, benefit/space ratio, benefit) for adding
    /// `cuboid` given the current choices, or `None` when nothing fits or
    /// pays off.
    fn best_block_for(
        &self,
        cuboid: CuboidId,
        current: &[PrefixSumChoice],
        remaining: f64,
    ) -> Option<(usize, f64, f64)> {
        let base = self.total_cost(current);
        let mut blocks = self.candidate_blocks.clone();
        // Add the analytic §9.3 optimum for each affected descendant.
        for q in self.stats.values() {
            if cuboid.is_ancestor_of(&q.cuboid) {
                if let Some(b) =
                    cost::optimal_block_size(q.avg.volume, q.avg.surface, cuboid.ndim())
                {
                    blocks.push(b);
                }
            }
        }
        blocks.sort_unstable();
        blocks.dedup();
        let mut best: Option<(usize, f64, f64)> = None;
        for b in blocks {
            let choice = PrefixSumChoice { cuboid, block: b };
            let space = choice.space(&self.shape);
            if space > remaining || space <= 0.0 {
                continue;
            }
            let mut with = current.to_vec();
            with.push(choice);
            let benefit = base - self.total_cost(&with);
            if benefit <= 0.0 {
                continue;
            }
            let ratio = benefit / space;
            if best.is_none_or(|(_, br, _)| ratio > br) {
                best = Some((b, ratio, benefit));
            }
        }
        best
    }

    /// The best block-size *upgrade* of an already-chosen cuboid: replace
    /// its prefix sum with a smaller block size (more space, lower cost).
    /// This move is not spelled out in Figure 13 but is needed for the
    /// greedy to converge when space is plentiful: ratio-greedy otherwise
    /// locks in an early coarse block forever.
    fn best_upgrade_for(
        &self,
        pos: usize,
        current: &[PrefixSumChoice],
        remaining: f64,
    ) -> Option<(usize, f64)> {
        let base = self.total_cost(current);
        let old = current[pos];
        let old_space = old.space(&self.shape);
        let mut best: Option<(usize, f64)> = None;
        for &b in self.candidate_blocks.iter().filter(|&&b| b < old.block) {
            let choice = PrefixSumChoice {
                cuboid: old.cuboid,
                block: b,
            };
            let delta_space = choice.space(&self.shape) - old_space;
            if delta_space > remaining {
                continue;
            }
            let mut with = current.to_vec();
            with[pos] = choice;
            let benefit = base - self.total_cost(&with);
            if benefit <= 0.0 {
                continue;
            }
            let ratio = benefit / delta_space.max(1.0);
            if best.is_none_or(|(_, br)| ratio > br) {
                best = Some((b, ratio));
            }
        }
        best
    }

    /// One full greedy pass starting from `start` (Figure 13, first half,
    /// extended with block-size upgrades of already-chosen cuboids).
    fn greedy_from(&self, mut choices: Vec<PrefixSumChoice>) -> Vec<PrefixSumChoice> {
        enum Move {
            Add(CuboidId, usize),
            Upgrade(usize, usize),
        }
        loop {
            let remaining = self.space_limit - self.space_used(&choices);
            if remaining <= 0.0 {
                break;
            }
            let mut best: Option<(Move, f64)> = None;
            for cuboid in self.candidates() {
                if choices.iter().any(|c| c.cuboid == cuboid) {
                    continue;
                }
                if let Some((b, ratio, _)) = self.best_block_for(cuboid, &choices, remaining) {
                    if best.as_ref().is_none_or(|(_, br)| ratio > *br) {
                        best = Some((Move::Add(cuboid, b), ratio));
                    }
                }
            }
            for pos in 0..choices.len() {
                if let Some((b, ratio)) = self.best_upgrade_for(pos, &choices, remaining) {
                    if best.as_ref().is_none_or(|(_, br)| ratio > *br) {
                        best = Some((Move::Upgrade(pos, b), ratio));
                    }
                }
            }
            match best {
                Some((Move::Add(cuboid, block), _)) => {
                    choices.push(PrefixSumChoice { cuboid, block })
                }
                Some((Move::Upgrade(pos, block), _)) => choices[pos].block = block,
                None => break,
            }
        }
        choices
    }

    /// Runs the greedy algorithm plus the drop-and-replace fine-tuning
    /// loop (Figure 13, second half).
    pub fn plan(&self) -> Plan {
        let mut choices = self.greedy_from(Vec::new());
        // Fine-tuning: try dropping each choice and re-running the greedy
        // completion; keep any strict improvement. Bounded iterations.
        for _ in 0..8 {
            let cur_cost = self.total_cost(&choices);
            let mut improved = false;
            for i in 0..choices.len() {
                let mut without: Vec<PrefixSumChoice> = choices.clone();
                without.remove(i);
                let alt = self.greedy_from(without);
                if self.total_cost(&alt) < cur_cost {
                    choices = alt;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        Plan {
            total_cost: self.total_cost(&choices),
            space_used: self.space_used(&choices),
            choices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_query::{DimSelection, QueryLog, RangeQuery};

    /// A 3-d cube with ranges on ⟨d1,d2⟩ and on ⟨d1⟩.
    fn setup(space_limit: f64) -> GreedyPlanner {
        let shape = Shape::new(&[1000, 1000, 1000]).unwrap();
        let mut log = QueryLog::new(shape.clone());
        for _ in 0..80 {
            log.push(
                RangeQuery::new(vec![
                    DimSelection::span(100, 299).unwrap(),
                    DimSelection::span(0, 99).unwrap(),
                    DimSelection::All,
                ])
                .unwrap(),
            );
        }
        for _ in 0..20 {
            log.push(
                RangeQuery::new(vec![
                    DimSelection::span(50, 849).unwrap(),
                    DimSelection::All,
                    DimSelection::All,
                ])
                .unwrap(),
            );
        }
        GreedyPlanner::new(shape, log.cuboid_stats(), space_limit)
    }

    #[test]
    fn unlimited_space_gets_unblocked_prefix_sums() {
        let planner = setup(1e12);
        let plan = planner.plan();
        // With space to spare, b = 1 on the queried cuboids beats
        // everything (cost = 2^d per query).
        assert!(plan.total_cost <= 100.0 * 8.0);
        assert!(plan.choices.iter().any(|c| c.block == 1));
    }

    #[test]
    fn tight_space_forces_blocking() {
        // Budget far below N_{d1,d2} = 10^6 cells forces a blocked array.
        let planner = setup(20_000.0);
        let plan = planner.plan();
        assert!(plan.space_used <= 20_000.0);
        assert!(!plan.choices.is_empty());
        // The two-dimensional cuboid (10^6 cells) can only fit blocked;
        // smaller cuboids may still be unblocked.
        for c in plan.choices.iter().filter(|c| c.cuboid.ndim() >= 2) {
            assert!(c.block > 1, "{c:?} cannot fit unblocked in 20k cells");
        }
        // And the plan still beats the naive cost.
        assert!(plan.total_cost < planner.total_cost(&[]));
    }

    #[test]
    fn zero_space_yields_empty_plan() {
        let planner = setup(0.0);
        let plan = planner.plan();
        assert!(plan.choices.is_empty());
        assert_eq!(plan.total_cost, planner.total_cost(&[]));
    }

    #[test]
    fn ancestor_structure_serves_descendant_queries() {
        // Only the ⟨d1,d2⟩ structure fits; ⟨d1⟩ queries should still use it.
        let planner = setup(1e7);
        let plan = planner.plan();
        let naive = planner.total_cost(&[]);
        assert!(plan.total_cost < naive / 10.0);
    }

    #[test]
    fn total_cost_monotone_in_choices() {
        let planner = setup(1e9);
        let base = planner.total_cost(&[]);
        let one = planner.total_cost(&[PrefixSumChoice {
            cuboid: CuboidId::from_dims(&[0, 1]),
            block: 10,
        }]);
        let two = planner.total_cost(&[
            PrefixSumChoice {
                cuboid: CuboidId::from_dims(&[0, 1]),
                block: 10,
            },
            PrefixSumChoice {
                cuboid: CuboidId::from_dims(&[0]),
                block: 1,
            },
        ]);
        assert!(one <= base);
        assert!(two <= one);
    }

    #[test]
    fn space_accounting() {
        let shape = Shape::new(&[100, 200]).unwrap();
        let c = PrefixSumChoice {
            cuboid: CuboidId::from_dims(&[0, 1]),
            block: 10,
        };
        assert_eq!(c.space(&shape), 20_000.0 / 100.0);
        let c1 = PrefixSumChoice {
            cuboid: CuboidId::from_dims(&[1]),
            block: 1,
        };
        assert_eq!(c1.space(&shape), 200.0);
    }
}
