//! Choosing the subset of dimensions to compute prefix sums along (§9.1).
//!
//! With prefix sums on `X′ ⊆ X`, a query pays a multiplicative factor of
//! `2` per chosen attribute and `r_ij` (its range length) per unchosen
//! one. Minimising the total over a log is an optimisation problem; the
//! paper gives an exact `O(m·2^d)` algorithm using a Gray-code walk of the
//! `2^d` subsets and an `O(m·d)` heuristic (`R_j = Σ_i r_ij ≥ 2m`).

use olap_query::QueryLog;

/// The cost of a dimension selection over a log: for each query,
/// `∏_j (2 if j ∈ X′ else r_ij)` — the time-complexity factors of §9.1 —
/// summed over the log.
pub fn selection_cost(log: &QueryLog, dims: &[usize]) -> f64 {
    let lengths = log.heuristic_lengths();
    let d = log.shape().ndim();
    let chosen: Vec<bool> = {
        let mut v = vec![false; d];
        for &j in dims {
            v[j] = true;
        }
        v
    };
    lengths
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, &r)| if chosen[j] { 2.0 } else { r as f64 })
                .product::<f64>()
        })
        .sum()
}

/// The `O(m·d)` heuristic of §9.1: choose `X′ = { d_j | R_j ≥ 2m }` where
/// `R_j = Σ_i r_ij`.
pub fn choose_dimensions_heuristic(log: &QueryLog) -> Vec<usize> {
    let lengths = log.heuristic_lengths();
    let d = log.shape().ndim();
    let m = log.len();
    let mut r = vec![0usize; d];
    for row in &lengths {
        for (j, &x) in row.iter().enumerate() {
            r[j] += x;
        }
    }
    (0..d).filter(|&j| r[j] >= 2 * m).collect()
}

/// The exact `O(m·2^d)` algorithm of §9.1: walks the `2^d` subsets in
/// binary-reflected Gray-code order so each step toggles one attribute,
/// updating every query's product term in `O(1)` (an `O(m)` step).
///
/// # Panics
/// Panics when `d > 24` (the subset walk would be prohibitive; use the
/// heuristic there — the paper notes real cubes have 5–10 dimensions).
pub fn choose_dimensions_exact(log: &QueryLog) -> Vec<usize> {
    let d = log.shape().ndim();
    assert!(
        d <= 24,
        "exact dimension selection is O(m·2^d); d = {d} is too large"
    );
    let lengths = log.heuristic_lengths();
    let m = lengths.len();
    // terms[i] = current product for query i; start with X′ = ∅.
    let mut terms: Vec<f64> = lengths
        .iter()
        .map(|row| row.iter().map(|&r| r as f64).product())
        .collect();
    let mut cost: f64 = terms.iter().sum();
    let mut best_cost = cost;
    let mut best_mask = 0u32;
    let mut mask = 0u32;
    // Standard Gray-code walk: step k toggles bit = trailing ones of k.
    for k in 1u64..(1u64 << d) {
        let bit = k.trailing_zeros() as usize;
        let adding = (mask >> bit) & 1 == 0;
        mask ^= 1 << bit;
        for i in 0..m {
            let r = lengths[i][bit] as f64;
            cost -= terms[i];
            if adding {
                terms[i] = terms[i] / r * 2.0;
            } else {
                terms[i] = terms[i] / 2.0 * r;
            }
            cost += terms[i];
        }
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    (0..d).filter(|&j| (best_mask >> j) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_array::Shape;
    use olap_query::{DimSelection, RangeQuery};

    /// Builds the Figure 12 log: r_ij rows over 5 attributes.
    fn fig12_log() -> QueryLog {
        let shape = Shape::new(&[1000; 5]).unwrap();
        let rows = [
            [1usize, 100, 1, 3, 1],
            [200, 1, 100, 1, 1],
            [500, 500, 1, 1, 1],
        ];
        let mut log = QueryLog::new(shape);
        for row in rows {
            log.push(
                RangeQuery::new(
                    row.iter()
                        .map(|&len| {
                            if len == 1 {
                                DimSelection::Single(0)
                            } else {
                                DimSelection::span(0, len - 1).unwrap()
                            }
                        })
                        .collect(),
                )
                .unwrap(),
            );
        }
        log
    }

    #[test]
    fn fig12_heuristic_example() {
        // R = (701, 601, 102, 5, 3); threshold 2m = 6 ⇒ X′ = {d1, d2, d3}.
        let log = fig12_log();
        assert_eq!(choose_dimensions_heuristic(&log), vec![0, 1, 2]);
    }

    #[test]
    fn exact_never_worse_than_heuristic() {
        let log = fig12_log();
        let h = choose_dimensions_heuristic(&log);
        let e = choose_dimensions_exact(&log);
        assert!(selection_cost(&log, &e) <= selection_cost(&log, &h));
    }

    #[test]
    fn exact_equals_brute_force() {
        let log = fig12_log();
        let d = log.shape().ndim();
        let mut best: Option<(f64, Vec<usize>)> = None;
        for mask in 0u32..(1 << d) {
            let dims: Vec<usize> = (0..d).filter(|&j| (mask >> j) & 1 == 1).collect();
            let c = selection_cost(&log, &dims);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, dims));
            }
        }
        let (bc, _) = best.unwrap();
        let e = choose_dimensions_exact(&log);
        assert_eq!(selection_cost(&log, &e), bc);
    }

    #[test]
    fn selection_cost_basics() {
        let log = fig12_log();
        // Empty selection: Σ ∏ r_ij = 300 + 20000 + 250000.
        assert_eq!(selection_cost(&log, &[]), 300.0 + 20_000.0 + 250_000.0);
        // All selected: m · 2^d = 3 · 32.
        assert_eq!(selection_cost(&log, &[0, 1, 2, 3, 4]), 96.0);
    }

    #[test]
    fn passive_only_log_chooses_nothing() {
        let shape = Shape::new(&[10, 10]).unwrap();
        let mut log = QueryLog::new(shape);
        log.push(RangeQuery::new(vec![DimSelection::Single(1), DimSelection::All]).unwrap());
        log.push(RangeQuery::new(vec![DimSelection::All, DimSelection::Single(2)]).unwrap());
        assert!(choose_dimensions_heuristic(&log).is_empty());
        assert!(choose_dimensions_exact(&log).is_empty());
    }

    #[test]
    fn single_heavy_dimension_is_selected() {
        let shape = Shape::new(&[100, 100]).unwrap();
        let mut log = QueryLog::new(shape);
        for _ in 0..5 {
            log.push(
                RangeQuery::new(vec![
                    DimSelection::span(0, 49).unwrap(),
                    DimSelection::Single(3),
                ])
                .unwrap(),
            );
        }
        assert_eq!(choose_dimensions_heuristic(&log), vec![0]);
        assert_eq!(choose_dimensions_exact(&log), vec![0]);
    }
}
