//! Cost models and physical-design planning (§8–§9).
//!
//! Three decisions, in the paper's order:
//!
//! 1. **Choosing dimensions** (§9.1): drop the prefix sum along attributes
//!    that queries rarely range over — [`dimensions`] has the `R_j ≥ 2m`
//!    heuristic, the exact Gray-code `O(m·2^d)` optimizer, and the cost
//!    function both optimize.
//! 2. **Choosing cuboids** (§9.2): under a space budget, greedily pick the
//!    cuboids to materialize prefix sums for (with per-cuboid block
//!    sizes), then fine-tune by drop-and-replace — [`cuboids`].
//! 3. **Choosing block sizes** (§9.3): the closed-form maximiser of the
//!    benefit/space ratio, `b* = (V − 2^d)/(S/4) · d/(d+1)` — [`cost`].
//!
//! [`cost`] also carries the §8 comparison between prefix sums and tree
//! hierarchies that Figure 11 plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cuboids;
pub mod dimensions;

pub use cost::{
    benefit_space_ratio, f_of_b, fig11_difference, optimal_block_size,
    optimal_block_size_under_ancestor, pow2, prefix_sum_cost, tree_cost, tree_depth, CostError,
};
pub use cuboids::{GreedyPlanner, Plan, PrefixSumChoice};
pub use dimensions::{choose_dimensions_exact, choose_dimensions_heuristic, selection_cost};
