//! Property tests for the planner: cost-model sanity and greedy-search
//! monotonicity.

use olap_array::Shape;
use olap_planner::{
    benefit_space_ratio, choose_dimensions_exact, choose_dimensions_heuristic, f_of_b,
    optimal_block_size, prefix_sum_cost, selection_cost, tree_cost, tree_depth, GreedyPlanner,
    PrefixSumChoice,
};
use olap_query::{CuboidId, DimSelection, QueryLog, RangeQuery};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn f_of_b_is_monotone_and_close_to_quarter(b in 1usize..500) {
        prop_assert!(f_of_b(b) <= f_of_b(b + 1));
        prop_assert!((f_of_b(b) - b as f64 / 4.0).abs() <= 0.25);
    }

    #[test]
    fn prefix_cost_beats_tree_cost(
        d in 2usize..5,
        b in 2usize..40,
        surface in 10.0f64..10_000.0,
        n in 64usize..100_000,
    ) {
        // §8's conclusion, as an inequality over the whole model domain:
        // with equal storage the tree pays the blocked prefix's boundary
        // cost at every level, so it can be cheaper only by the 2^d corner
        // term.
        let depth = tree_depth(n, b).unwrap();
        let p = prefix_sum_cost(d, surface, b);
        let t = tree_cost(d, surface, b, depth);
        prop_assert!(t + (1u64 << d) as f64 >= p - 1e-9);
    }

    #[test]
    fn optimal_block_size_is_the_argmax(
        v in 10.0f64..100_000.0,
        s in 4.0f64..10_000.0,
        d in 1usize..5,
    ) {
        if let Some(b) = optimal_block_size(v, s, d) {
            let r = |b: usize| benefit_space_ratio(1.0, v, s, d, b);
            // Better than both integer neighbours (allowing ties).
            prop_assert!(r(b) >= r(b + 1) - 1e-9);
            if b > 1 {
                prop_assert!(r(b) >= r(b - 1) - 1e-9);
            }
        }
    }

    #[test]
    fn exact_dimension_selection_is_optimal(
        rows in prop::collection::vec(
            prop::collection::vec(1usize..200, 4),
            1..6,
        )
    ) {
        let shape = Shape::new(&[500; 4]).unwrap();
        let mut log = QueryLog::new(shape);
        for row in &rows {
            log.push(
                RangeQuery::new(
                    row.iter()
                        .map(|&len| {
                            if len == 1 {
                                DimSelection::Single(0)
                            } else {
                                DimSelection::span(0, len - 1).unwrap()
                            }
                        })
                        .collect(),
                )
                .unwrap(),
            );
        }
        let exact = choose_dimensions_exact(&log);
        let exact_cost = selection_cost(&log, &exact);
        // Beats every subset, including the heuristic's.
        for mask in 0u32..16 {
            let dims: Vec<usize> = (0..4).filter(|&j| (mask >> j) & 1 == 1).collect();
            prop_assert!(exact_cost <= selection_cost(&log, &dims) + 1e-9);
        }
        let h = choose_dimensions_heuristic(&log);
        prop_assert!(exact_cost <= selection_cost(&log, &h) + 1e-9);
    }

    #[test]
    fn more_budget_never_hurts(
        (side, count, b1, b2) in (5usize..200, 5usize..60, 1e3f64..1e6, 1e3f64..1e6)
    ) {
        let shape = Shape::new(&[1000, 500]).unwrap();
        let mut log = QueryLog::new(shape.clone());
        for _ in 0..count {
            log.push(
                RangeQuery::new(vec![
                    DimSelection::span(0, side).unwrap(),
                    DimSelection::All,
                ])
                .unwrap(),
            );
        }
        let stats = log.cuboid_stats();
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let plan_lo = GreedyPlanner::new(shape.clone(), stats.clone(), lo).plan();
        let plan_hi = GreedyPlanner::new(shape, stats, hi).plan();
        prop_assert!(plan_hi.total_cost <= plan_lo.total_cost + 1e-9);
    }

    #[test]
    fn plan_respects_its_budget(
        budget in 10.0f64..1e6,
    ) {
        let shape = Shape::new(&[800, 400, 50]).unwrap();
        let mut log = QueryLog::new(shape.clone());
        for k in 0..30usize {
            log.push(
                RangeQuery::new(vec![
                    DimSelection::span(k, k + 99).unwrap(),
                    DimSelection::span(0, 49).unwrap(),
                    DimSelection::All,
                ])
                .unwrap(),
            );
        }
        let planner = GreedyPlanner::new(shape.clone(), log.cuboid_stats(), budget);
        let plan = planner.plan();
        prop_assert!(plan.space_used <= budget + 1e-9);
        // Space accounting matches per-choice sums.
        let manual: f64 = plan.choices.iter().map(|c| c.space(&shape)).sum();
        prop_assert!((manual - plan.space_used).abs() < 1e-9);
        // No duplicate cuboids in a plan.
        let mut cuboids: Vec<CuboidId> = plan.choices.iter().map(|c| c.cuboid).collect();
        cuboids.sort();
        let before = cuboids.len();
        cuboids.dedup();
        prop_assert_eq!(before, cuboids.len());
        // The reported cost is the model's cost of the choices.
        prop_assert!((planner.total_cost(&plan.choices) - plan.total_cost).abs() < 1e-9);
        let _ = PrefixSumChoice { cuboid: CuboidId::empty(), block: 1 };
    }
}
