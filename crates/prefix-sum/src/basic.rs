//! The basic range-sum algorithm (§3): full prefix-sum array + Theorem 1.

use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{ArrayError, DenseArray, Parallelism, Region, Shape};
use olap_query::AccessStats;

/// The precomputed prefix-sum array `P` of a data cube (§3.1):
/// `P[x_1,…,x_d] = Sum(0:x_1, …, 0:x_d)`, same shape as the cube.
///
/// Built in `dN` combine steps by `d` one-dimensional scan phases visiting
/// memory in storage order (§3.3). Any range-sum is answered with at most
/// `2^d` lookups and `2^d − 1` combines (Theorem 1), independent of the
/// query volume.
#[derive(Debug, Clone)]
pub struct PrefixSumArray<G: AbelianGroup> {
    op: G,
    p: DenseArray<G::Value>,
}

/// The prefix-sum array specialised to SUM — the common OLAP case.
pub type PrefixSumCube<T> = PrefixSumArray<SumOp<T>>;

impl<T: NumericValue> PrefixSumCube<T> {
    /// Builds the SUM prefix-sum array of a cube.
    ///
    /// # Examples
    ///
    /// ```
    /// use olap_array::{DenseArray, Region, Shape};
    /// use olap_prefix_sum::PrefixSumCube;
    ///
    /// let cube = DenseArray::from_vec(
    ///     Shape::new(&[2, 3]).unwrap(),
    ///     vec![1i64, 2, 3, 4, 5, 6],
    /// )
    /// .unwrap();
    /// let ps = PrefixSumCube::build(&cube);
    /// let q = Region::from_bounds(&[(0, 1), (1, 2)]).unwrap();
    /// assert_eq!(ps.range_sum(&q).unwrap(), 2 + 3 + 5 + 6);
    /// ```
    pub fn build(cube: &DenseArray<T>) -> Self {
        PrefixSumArray::with_op(cube, SumOp::new())
    }

    /// [`PrefixSumCube::build`] under an execution strategy: the same
    /// d-phase line-kernel sweeps, optionally fanned out across threads.
    /// Results are bit-identical to the sequential build.
    pub fn build_with(cube: &DenseArray<T>, par: Parallelism) -> Self
    where
        T: Send + Sync,
    {
        PrefixSumArray::with_op_par(cube, SumOp::new(), par)
    }
}

impl<G: AbelianGroup> PrefixSumArray<G> {
    /// Builds `P` from the cube under any invertible operator, using the
    /// d-phase algorithm of §3.3 (`dN` combine steps).
    pub fn with_op(cube: &DenseArray<G::Value>, op: G) -> Self {
        let mut p = cube.clone();
        for axis in 0..p.shape().ndim() {
            p.scan_axis(axis, |a, b| op.combine(a, b));
        }
        PrefixSumArray { op, p }
    }

    /// [`PrefixSumArray::with_op`] under an execution strategy: each of
    /// the `d` scan phases runs the same per-slab line kernel as the
    /// sequential build, with the disjoint slabs optionally fanned out
    /// across threads. Every cell sees the identical combine sequence, so
    /// the resulting `P` is bit-identical under every [`Parallelism`].
    pub fn with_op_par(cube: &DenseArray<G::Value>, op: G, par: Parallelism) -> Self
    where
        G: Sync,
        G::Value: Send + Sync,
    {
        let mut p = cube.clone();
        for axis in 0..p.shape().ndim() {
            p.scan_axis_with(par, axis, |a, b| op.combine(a, b));
        }
        PrefixSumArray { op, p }
    }

    /// Wraps an already-computed prefix array (used by the batch-update
    /// machinery and tests).
    pub fn from_prefix_array(p: DenseArray<G::Value>, op: G) -> Self {
        PrefixSumArray { op, p }
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        self.p.shape()
    }

    /// The operator.
    pub fn op(&self) -> &G {
        &self.op
    }

    /// Read-only view of the raw prefix array.
    pub fn prefix_array(&self) -> &DenseArray<G::Value> {
        &self.p
    }

    /// Mutable view of the raw prefix array (for batch updates).
    pub fn prefix_array_mut(&mut self) -> &mut DenseArray<G::Value> {
        &mut self.p
    }

    /// The precomputed prefix `P[x_1,…,x_d] = Sum(0:x_1,…,0:x_d)`.
    pub fn prefix(&self, index: &[usize]) -> &G::Value {
        self.p.get(index)
    }

    /// Answers `Sum(ℓ_1:h_1, …, ℓ_d:h_d)` via Theorem 1.
    ///
    /// # Errors
    /// Propagates region-validation errors.
    pub fn range_sum(&self, region: &Region) -> Result<G::Value, ArrayError> {
        self.p.shape().check_region(region)?;
        let mut stats = AccessStats::new();
        Ok(self.range_sum_unchecked(region, &mut stats))
    }

    /// Like [`PrefixSumArray::range_sum`], also reporting access counts.
    pub fn range_sum_with_stats(
        &self,
        region: &Region,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        self.p.shape().check_region(region)?;
        let mut stats = AccessStats::new();
        let v = self.range_sum_unchecked(region, &mut stats);
        Ok((v, stats))
    }

    /// Theorem 1 without validation. `stats` counts each *real* `P` access
    /// (corners with some `ℓ_j − 1 = −1` contribute the identity without
    /// touching memory, which is why the paper says "up to" `2^d`).
    pub(crate) fn range_sum_unchecked(&self, region: &Region, stats: &mut AccessStats) -> G::Value {
        let d = region.ndim();
        let mut corner = vec![0usize; d];
        let mut acc = self.op.identity();
        // analyzer: allow(budget-coverage, reason = "Theorem 1 corner gather: at most 2^d probes, charged by the budgeted wrappers")
        'corners: for mask in 0u64..(1u64 << d) {
            // Bit j set ⇒ pick x_j = ℓ_j − 1 (sign −1); clear ⇒ x_j = h_j.
            // analyzer: allow(budget-coverage, reason = "corner coordinate selection: trip count = ndim per corner")
            for (j, c) in corner.iter_mut().enumerate() {
                let r = region.range(j);
                if (mask >> j) & 1 == 1 {
                    if r.lo() == 0 {
                        // P[…, −1, …] = 0 by convention: term vanishes.
                        continue 'corners;
                    }
                    *c = r.lo() - 1;
                } else {
                    *c = r.hi();
                }
            }
            let term = self.p.get(&corner);
            stats.read_p(1);
            stats.step(1);
            if mask.count_ones() % 2 == 0 {
                acc = self.op.combine(&acc, term);
            } else {
                acc = self.op.uncombine(&acc, term);
            }
        }
        acc
    }

    /// Reconstructs the original cell `A[index]` from `P` alone (§3.4:
    /// the cube can be discarded because a cell is the degenerate
    /// range-sum `Sum(x_1:x_1, …, x_d:x_d)`).
    pub fn cell(&self, index: &[usize]) -> Result<G::Value, ArrayError> {
        self.p.shape().check_index(index)?;
        let region = Region::point(index)?;
        let mut stats = AccessStats::new();
        Ok(self.range_sum_unchecked(&region, &mut stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_aggregate::{AvgOp, AvgPair, XorOp};
    use olap_array::Range;

    /// Figure 1's 3×6 array (rows = the paper's second dimension).
    fn figure1() -> DenseArray<i64> {
        DenseArray::from_vec(
            Shape::new(&[3, 6]).unwrap(),
            vec![
                3, 5, 1, 2, 2, 3, //
                7, 3, 2, 6, 8, 2, //
                2, 4, 2, 3, 3, 5,
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig1_paper_example() {
        // The prefix array of Figure 1 (bottom table, transposed into our
        // row-major [row][col] layout).
        let ps = PrefixSumCube::build(&figure1());
        let expected = [
            [3, 8, 9, 11, 13, 16],
            [10, 18, 21, 29, 39, 44],
            [12, 24, 29, 40, 53, 63],
        ];
        for (r, row) in expected.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(*ps.prefix(&[r, c]), v, "P[{r},{c}]");
            }
        }
    }

    #[test]
    fn fig2_inclusion_exclusion() {
        // Sum(2:3, 1:2) = P[3,2] − P[3,0] − P[1,2] + P[1,0] = 40−11−24+8 = 13.
        // The paper's first coordinate runs along Figure 1's columns, so in
        // our [row, col] layout the query is rows 1:2 × cols 2:3.
        let ps = PrefixSumCube::build(&figure1());
        let q = Region::from_bounds(&[(1, 2), (2, 3)]).unwrap();
        let (v, stats) = ps.range_sum_with_stats(&q).unwrap();
        assert_eq!(v, 13);
        assert_eq!(stats.p_cells, 4); // all 2^d corners are real here
    }

    #[test]
    fn corner_terms_skip_negative_index() {
        let ps = PrefixSumCube::build(&figure1());
        // ℓ = 0 on both dims: only the P[h1,h2] corner is a real access.
        let q = Region::from_bounds(&[(0, 1), (0, 2)]).unwrap();
        let (v, stats) = ps.range_sum_with_stats(&q).unwrap();
        assert_eq!(v, 3 + 5 + 1 + 7 + 3 + 2);
        assert_eq!(stats.p_cells, 1);
    }

    #[test]
    fn full_cube_sum() {
        let a = figure1();
        let ps = PrefixSumCube::build(&a);
        let total: i64 = a.as_slice().iter().sum();
        assert_eq!(ps.range_sum(&a.shape().full_region()).unwrap(), total);
        assert_eq!(total, 63); // P's last entry in Figure 1
    }

    #[test]
    fn matches_naive_on_3d_cube() {
        let shape = Shape::new(&[4, 5, 6]).unwrap();
        let a = DenseArray::from_fn(shape.clone(), |idx| {
            (idx[0] * 31 + idx[1] * 7 + idx[2] * 3) as i64 % 17 - 5
        });
        let ps = PrefixSumCube::build(&a);
        let queries = [
            [(0, 3), (0, 4), (0, 5)],
            [(1, 2), (2, 2), (3, 5)],
            [(3, 3), (4, 4), (0, 0)],
            [(0, 0), (1, 4), (2, 3)],
        ];
        for q in queries {
            let region = Region::from_bounds(&q).unwrap();
            let naive = a.fold_region(&region, 0i64, |acc, &x| acc + x);
            assert_eq!(ps.range_sum(&region).unwrap(), naive, "query {region}");
        }
    }

    #[test]
    fn seven_step_three_dim_identity() {
        // The d = 3 expansion below Theorem 1 has 2^3 = 8 terms.
        let shape = Shape::new(&[3, 3, 3]).unwrap();
        let a = DenseArray::from_fn(shape, |idx| (idx[0] + idx[1] + idx[2]) as i64);
        let ps = PrefixSumCube::build(&a);
        let q = Region::from_bounds(&[(1, 2), (1, 2), (1, 2)]).unwrap();
        let (v, stats) = ps.range_sum_with_stats(&q).unwrap();
        let naive = a.fold_region(&q, 0i64, |acc, &x| acc + x);
        assert_eq!(v, naive);
        assert_eq!(stats.p_cells, 8);
    }

    #[test]
    fn cell_reconstruction_storage_tradeoff() {
        // §3.4: A can be discarded; every cell is recoverable from P.
        let a = figure1();
        let ps = PrefixSumCube::build(&a);
        for idx in a.shape().full_region().iter_indices() {
            assert_eq!(ps.cell(&idx).unwrap(), *a.get(&idx), "at {idx:?}");
        }
    }

    #[test]
    fn range_sum_validates_region() {
        let ps = PrefixSumCube::build(&figure1());
        let q = Region::from_bounds(&[(0, 2), (0, 6)]).unwrap();
        assert!(ps.range_sum(&q).is_err());
        let q = Region::new(vec![Range::new(0, 1).unwrap()]).unwrap();
        assert!(ps.range_sum(&q).is_err());
    }

    #[test]
    fn works_with_xor_group() {
        // §1: any (⊕, ⊖) pair works; xor is self-inverse.
        let shape = Shape::new(&[4, 4]).unwrap();
        let a = DenseArray::from_fn(shape, |idx| ((idx[0] * 13 + idx[1] * 5) % 256) as u32);
        let ps = PrefixSumArray::with_op(&a, XorOp::<u32>::new());
        let q = Region::from_bounds(&[(1, 2), (0, 3)]).unwrap();
        let naive = a.fold_region(&q, 0u32, |acc, &x| acc ^ x);
        assert_eq!(ps.range_sum(&q).unwrap(), naive);
    }

    #[test]
    fn works_with_avg_pairs() {
        // §1: AVERAGE via the (sum, count) 2-tuple.
        let shape = Shape::new(&[3, 4]).unwrap();
        let a = DenseArray::from_fn(shape, |idx| AvgPair::of((idx[0] * 4 + idx[1]) as f64));
        let ps = PrefixSumArray::with_op(&a, AvgOp::<f64>::new());
        let q = Region::from_bounds(&[(1, 2), (1, 3)]).unwrap();
        let got = ps.range_sum(&q).unwrap();
        assert_eq!(got.count, 6);
        assert_eq!(got.mean(), Some((5 + 6 + 7 + 9 + 10 + 11) as f64 / 6.0));
    }

    #[test]
    fn one_dimensional_prefix() {
        let a = DenseArray::from_vec(Shape::new(&[8]).unwrap(), vec![5i64, -2, 9, 0, 3, 3, -7, 1])
            .unwrap();
        let ps = PrefixSumCube::build(&a);
        let q = Region::from_bounds(&[(2, 6)]).unwrap();
        assert_eq!(ps.range_sum(&q).unwrap(), 9 + 3 + 3 - 7);
    }
}
