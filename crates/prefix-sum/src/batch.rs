//! Batch updates to prefix-sum arrays (§5).
//!
//! In a typical OLAP environment updates are cumulated (say, for a day) and
//! applied together. A single update of `A[x]` affects every
//! `P[y], y ≥ x` — `O(N)` in the worst case — so the paper's algorithm
//! groups the affected elements of `P` of `k` queued updates into at most
//! `∏_{j=0}^{d−1}(k+j)/d!` disjoint rectangular regions (Theorem 2), each
//! carrying one combined value-to-add.

use crate::{BlockedPrefixSum, PrefixSumArray};
use olap_aggregate::AbelianGroup;
use olap_array::{exec, ArrayError, DenseArray, FlatRegionIter, Parallelism, Range, Region, Shape};

/// A queued update: `(location of an A element, value-to-add)`.
///
/// The value-to-add is *new value ⊖ previous value*; the paper updates the
/// `A` element right away and queues this delta for the combined update of
/// `P`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellUpdate<V> {
    /// The updated cell of `A`.
    pub index: Vec<usize>,
    /// The value-to-add under the structure's operator.
    pub delta: V,
}

impl<V> CellUpdate<V> {
    /// Convenience constructor.
    pub fn new(index: &[usize], delta: V) -> Self {
        CellUpdate {
            index: index.to_vec(),
            delta,
        }
    }
}

/// The Theorem-2 bound on the number of update regions:
/// `∏_{j=0}^{d−1}(k+j) / d!`.
pub fn max_regions(k: usize, d: usize) -> f64 {
    let mut v = 1.0f64;
    for j in 0..d {
        // Add in f64: `k + j` in usize overflows (and panics under
        // `overflow-checks`) for k near usize::MAX, while the bound
        // itself is only ever consumed as a float.
        // analyzer: allow(panic-site, reason = "operands are f64 here, not indices; float addition cannot overflow")
        v *= k as f64 + j as f64;
        v /= (j + 1) as f64;
    }
    v
}

/// Plans the combined update: partitions the affected elements of `P` into
/// disjoint rectangular regions, each in a single update-class (Properties
/// 1 and 2 of §5.1), and returns `(region, combined value-to-add)` pairs.
///
/// # Errors
/// Rejects updates whose index does not match `shape`.
pub fn plan_regions<G: AbelianGroup>(
    shape: &Shape,
    op: &G,
    updates: &[CellUpdate<G::Value>],
) -> Result<Vec<(Region, G::Value)>, ArrayError> {
    for u in updates {
        shape.check_index(&u.index)?;
    }
    let entries: Vec<(&[usize], G::Value)> = updates
        .iter()
        .map(|u| (u.index.as_slice(), u.delta.clone()))
        .collect();
    let mut out = Vec::new();
    recurse(shape.dims(), op, entries, &mut Vec::new(), &mut out);
    // Every batch path (basic and blocked) plans here, so this is the one
    // choke point for the regions-vs-Theorem-2 accounting.
    #[cfg(feature = "telemetry")]
    if let Some(ctx) = olap_telemetry::current() {
        let reg = ctx.registry();
        reg.counter("olap_batch_plans_total", &[]).inc(1);
        reg.counter("olap_batch_updates_total", &[])
            .inc(updates.len() as u64);
        reg.counter("olap_batch_regions_total", &[])
            .inc(out.len() as u64);
        if !updates.is_empty() {
            let bound = max_regions(updates.len(), shape.dims().len());
            if bound.is_finite() && bound > 0.0 {
                // Planned regions as a share of the worst-case bound, in
                // permille: 1000 = the bound was hit, lower = coalescing won.
                let permille = (out.len() as f64 / bound * 1000.0).min(u64::MAX as f64) as u64;
                reg.histogram("olap_batch_region_bound_permille", &[])
                    .observe(permille);
            }
        }
    }
    Ok(out)
}

/// Recursion of §5.1: `dims` are the extents of the remaining dimensions,
/// `entries` the updates projected onto them (first coordinate =
/// `dims[0]`'s axis), `prefix` the ranges fixed by enclosing levels.
fn recurse<G: AbelianGroup>(
    dims: &[usize],
    op: &G,
    mut entries: Vec<(&[usize], G::Value)>,
    prefix: &mut Vec<Range>,
    out: &mut Vec<(Region, G::Value)>,
) {
    let n = dims[0];
    // Sort by the first coordinate and coalesce groups sharing it — the
    // "combining effect" of Figure 7(c).
    entries.sort_by_key(|(idx, _)| idx[0]);
    if dims.len() == 1 {
        // Base case: k+1 adjoining regions; region 0 (before the first
        // update index) is unaffected. V_i = v_1 ⊕ … ⊕ v_i accumulates.
        let mut acc: Option<G::Value> = None;
        let mut i = 0;
        while i < entries.len() {
            let u = entries[i].0[0];
            let mut v = match acc {
                Some(ref a) => a.clone(),
                None => op.identity(),
            };
            while i < entries.len() && entries[i].0[0] == u {
                v = op.combine(&v, &entries[i].1);
                i += 1;
            }
            let next = if i < entries.len() {
                entries[i].0[0]
            } else {
                n
            };
            acc = Some(v.clone());
            prefix.push(Range::trusted(u, next - 1));
            out.push((Region::trusted(prefix.clone()), v));
            prefix.pop();
        }
        return;
    }
    // d > 1: partition the first dimension's index space into slabs at each
    // distinct update coordinate; slab i is affected by the first i update
    // groups, so recurse on their (d−1)-dimensional projections.
    let mut group_starts: Vec<usize> = Vec::new();
    for (pos, (idx, _)) in entries.iter().enumerate() {
        if pos == 0 || idx[0] != entries[pos - 1].0[0] {
            group_starts.push(pos);
        }
    }
    for (g, &start) in group_starts.iter().enumerate() {
        let u = entries[start].0[0];
        let next = group_starts
            .get(g + 1)
            .map(|&s| entries[s].0[0])
            .unwrap_or(n);
        let slab = Range::trusted(u, next - 1);
        // All updates with first coordinate ≤ u, projected one dimension
        // down. Duplicate projections are coalesced inside the recursion.
        let end = group_starts.get(g + 1).copied().unwrap_or(entries.len());
        let projected: Vec<(&[usize], G::Value)> = entries[..end]
            .iter()
            .map(|(idx, v)| (&idx[1..], v.clone()))
            .collect();
        prefix.push(slab);
        recurse(&dims[1..], op, projected, prefix, out);
        prefix.pop();
    }
}

/// Applies `k` queued updates to a basic prefix-sum array (`b = 1`, §5.1),
/// returning the number of update regions used.
///
/// # Errors
/// Rejects out-of-shape update indices.
pub fn apply_batch<G: AbelianGroup>(
    ps: &mut PrefixSumArray<G>,
    updates: &[CellUpdate<G::Value>],
) -> Result<usize, ArrayError> {
    let op = ps.op().clone();
    let plan = plan_regions(ps.shape(), &op, updates)?;
    apply_plan_seq(ps.prefix_array_mut(), &op, &plan);
    Ok(plan.len())
}

/// [`apply_batch`] under an execution strategy: the planned regions are
/// disjoint (Theorem 2), so their writes are applied tile-by-tile with an
/// owner-computes split over the outermost axis — each worker owns a
/// contiguous run of axis-0 slabs and applies every region clipped to it.
/// Each cell is written by exactly one region on exactly one worker, so
/// the resulting `P` is bit-identical to the sequential application.
///
/// # Errors
/// Rejects out-of-shape update indices.
pub fn apply_batch_par<G>(
    ps: &mut PrefixSumArray<G>,
    updates: &[CellUpdate<G::Value>],
    par: Parallelism,
) -> Result<usize, ArrayError>
where
    G: AbelianGroup + Sync,
    G::Value: Send + Sync,
{
    let op = ps.op().clone();
    let plan = plan_regions(ps.shape(), &op, updates)?;
    apply_plan(ps.prefix_array_mut(), &op, &plan, par);
    Ok(plan.len())
}

/// The shared region-application kernel: combines each planned region's
/// delta into every covered cell of `p`. Sequential execution walks the
/// regions directly; parallel execution splits `p` into disjoint axis-0
/// tiles ([`DenseArray::disjoint_block_tiles`]) and lets each worker apply
/// all regions clipped to its tile. The plan's regions are pairwise
/// disjoint, so both orders write each cell at most once with the same
/// value.
fn apply_plan_seq<G: AbelianGroup>(
    p: &mut DenseArray<G::Value>,
    op: &G,
    plan: &[(Region, G::Value)],
) {
    for (region, delta) in plan {
        for off in p.region_offsets(region) {
            let cur = p.get_flat(off);
            *p.get_flat_mut(off) = op.combine(cur, delta);
        }
    }
}

/// [`apply_plan_seq`] under an execution strategy (see the determinism
/// argument on [`apply_batch_par`]); the `Send + Sync` bounds exist only
/// here so the sequential entry points stay bound-free.
fn apply_plan<G>(
    p: &mut DenseArray<G::Value>,
    op: &G,
    plan: &[(Region, G::Value)],
    par: Parallelism,
) where
    G: AbelianGroup + Sync,
    G::Value: Send + Sync,
{
    if plan.is_empty() {
        return;
    }
    let shape = p.shape().clone();
    let n0 = shape.dim(0);
    let workers = par.workers_for(n0);
    if workers <= 1 {
        apply_plan_seq(p, op, plan);
        return;
    }
    let row = shape.strides()[0];
    let tile = n0.div_ceil(workers);
    let tiles: Vec<(usize, &mut [G::Value])> = p.disjoint_block_tiles(tile).collect();
    exec::run_indexed(par, tiles, |_, (start, slab)| {
        let rows = slab.len() / row;
        if rows == 0 {
            return; // empty tail tile: `start + rows - 1` would underflow
        }
        for (region, delta) in plan {
            let r0 = region.range(0);
            let lo = r0.lo().max(start);
            let hi = r0.hi().min(start + rows - 1);
            if lo > hi {
                continue;
            }
            let mut ranges = region.ranges().to_vec();
            ranges[0] = Range::trusted(lo, hi);
            let clipped = Region::trusted(ranges);
            for off in FlatRegionIter::new(&shape, &clipped) {
                let local = off - start * row;
                let merged = op.combine(&slab[local], delta);
                slab[local] = merged;
            }
        }
    });
}

/// Applies one update the naive way: combines the delta into every
/// `P[y], y ≥ x` (the `O(N)` baseline the batch algorithm improves on).
///
/// # Errors
/// Rejects out-of-shape update indices.
pub fn apply_single_naive<G: AbelianGroup>(
    ps: &mut PrefixSumArray<G>,
    update: &CellUpdate<G::Value>,
) -> Result<(), ArrayError> {
    ps.shape().check_index(&update.index)?;
    let ranges: Vec<Range> = update
        .index
        .iter()
        .zip(ps.shape().dims())
        .map(|(&x, &n)| Range::trusted(x, n - 1))
        .collect();
    let region = Region::new(ranges)?;
    let op = ps.op().clone();
    let p = ps.prefix_array_mut();
    for off in p.region_offsets(&region) {
        let cur = p.get_flat(off);
        *p.get_flat_mut(off) = op.combine(cur, &update.delta);
    }
    Ok(())
}

/// Applies `k` queued updates to a blocked prefix-sum array (§5.2): the
/// update locations are first contracted to block coordinates (one
/// combined value-to-add per touched block), then the basic algorithm runs
/// on the contracted index space. Returns the region count.
///
/// # Errors
/// Rejects out-of-shape update indices.
pub fn apply_batch_blocked<G: AbelianGroup>(
    bp: &mut BlockedPrefixSum<G>,
    updates: &[CellUpdate<G::Value>],
) -> Result<usize, ArrayError> {
    let plan = plan_blocked(bp, updates)?;
    let op = bp.op().clone();
    apply_plan_seq(bp.packed_array_mut(), &op, &plan);
    Ok(plan.len())
}

/// [`apply_batch_blocked`] under an execution strategy; see
/// [`apply_batch_par`] for the owner-computes determinism argument.
///
/// # Errors
/// Rejects out-of-shape update indices.
pub fn apply_batch_blocked_par<G>(
    bp: &mut BlockedPrefixSum<G>,
    updates: &[CellUpdate<G::Value>],
    par: Parallelism,
) -> Result<usize, ArrayError>
where
    G: AbelianGroup + Sync,
    G::Value: Send + Sync,
{
    let plan = plan_blocked(bp, updates)?;
    let op = bp.op().clone();
    apply_plan(bp.packed_array_mut(), &op, &plan, par);
    Ok(plan.len())
}

/// Contracts update locations to block coordinates and plans the regions
/// over the packed index space (§5.2).
fn plan_blocked<G: AbelianGroup>(
    bp: &BlockedPrefixSum<G>,
    updates: &[CellUpdate<G::Value>],
) -> Result<Vec<(Region, G::Value)>, ArrayError> {
    for u in updates {
        bp.shape().check_index(&u.index)?;
    }
    let b = bp.block_size();
    let contracted: Vec<CellUpdate<G::Value>> = updates
        .iter()
        .map(|u| CellUpdate {
            index: u.index.iter().map(|&x| x / b).collect(),
            delta: u.delta.clone(),
        })
        .collect();
    plan_regions(bp.packed_array().shape(), &bp.op().clone(), &contracted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockedPrefixCube, PrefixSumCube};
    use olap_aggregate::SumOp;
    use olap_array::DenseArray;

    fn cube(dims: &[usize]) -> DenseArray<i64> {
        DenseArray::from_fn(Shape::new(dims).unwrap(), |idx| {
            idx.iter()
                .enumerate()
                .map(|(a, &x)| (a as i64 + 2) * x as i64)
                .sum::<i64>()
                % 9
        })
    }

    /// Applies updates to the raw cube for ground truth.
    fn apply_to_cube(a: &mut DenseArray<i64>, updates: &[CellUpdate<i64>]) {
        for u in updates {
            *a.get_mut(&u.index) += u.delta;
        }
    }

    #[test]
    fn max_regions_matches_closed_forms() {
        // NR(k,1) = k; NR(k,2) = k(k+1)/2; NR(k,3) = k(k+1)(k+2)/6.
        assert_eq!(max_regions(5, 1), 5.0);
        assert_eq!(max_regions(5, 2), 15.0);
        assert_eq!(max_regions(5, 3), 35.0);
        assert_eq!(max_regions(3, 2), 6.0);
    }

    #[test]
    fn max_regions_survives_huge_inputs() {
        // `k + j` in usize would overflow here; the bound must come back
        // as a (possibly infinite) float, not panic under overflow-checks.
        let v = max_regions(usize::MAX, 8);
        assert!(v.is_infinite() || v > 0.0);
        assert!(max_regions(usize::MAX - 1, 2) > 0.0);
    }

    #[test]
    fn one_dimensional_plan_shape() {
        // d = 1: k sorted updates produce k affected regions with
        // cumulative deltas (region 0 is unaffected and absent).
        let shape = Shape::new(&[10]).unwrap();
        let op = SumOp::<i64>::new();
        let updates = [
            CellUpdate::new(&[7], 100),
            CellUpdate::new(&[2], 10),
            CellUpdate::new(&[4], 1),
        ];
        let plan = plan_regions(&shape, &op, &updates).unwrap();
        assert_eq!(
            plan,
            vec![
                (Region::from_bounds(&[(2, 3)]).unwrap(), 10),
                (Region::from_bounds(&[(4, 6)]).unwrap(), 11),
                (Region::from_bounds(&[(7, 9)]).unwrap(), 111),
            ]
        );
    }

    #[test]
    fn duplicate_locations_coalesce() {
        let shape = Shape::new(&[10]).unwrap();
        let op = SumOp::<i64>::new();
        let updates = [CellUpdate::new(&[3], 5), CellUpdate::new(&[3], -2)];
        let plan = plan_regions(&shape, &op, &updates).unwrap();
        assert_eq!(plan, vec![(Region::from_bounds(&[(3, 9)]).unwrap(), 3)]);
    }

    #[test]
    fn fig8_k3_d2_region_count() {
        // Figures 7–8: k = 3, d = 2 partitions into ≤ NR(3,2) = 6 regions.
        let shape = Shape::new(&[8, 8]).unwrap();
        let op = SumOp::<i64>::new();
        let updates = [
            CellUpdate::new(&[1, 5], 1),
            CellUpdate::new(&[3, 2], 2),
            CellUpdate::new(&[6, 6], 3),
        ];
        let plan = plan_regions(&shape, &op, &updates).unwrap();
        assert!(plan.len() <= 6, "got {} regions", plan.len());
        // Regions are pairwise disjoint (Property 1 needs disjointness).
        for i in 0..plan.len() {
            for j in (i + 1)..plan.len() {
                assert!(
                    !plan[i].0.overlaps(&plan[j].0),
                    "{} vs {}",
                    plan[i].0,
                    plan[j].0
                );
            }
        }
    }

    #[test]
    fn plan_covers_exactly_affected_cells() {
        // Every P[y] with y ≥ some update x must receive exactly the sum of
        // deltas of updates dominating it; everything else stays untouched.
        let shape = Shape::new(&[6, 5]).unwrap();
        let op = SumOp::<i64>::new();
        let updates = [
            CellUpdate::new(&[2, 3], 7),
            CellUpdate::new(&[4, 1], -3),
            CellUpdate::new(&[2, 1], 11),
        ];
        let plan = plan_regions(&shape, &op, &updates).unwrap();
        for y in shape.full_region().iter_indices() {
            let expected: i64 = updates
                .iter()
                .filter(|u| u.index.iter().zip(&y).all(|(&x, &yy)| x <= yy))
                .map(|u| u.delta)
                .sum();
            let from_plan: i64 = plan
                .iter()
                .filter(|(r, _)| r.contains(&y))
                .map(|(_, v)| *v)
                .sum();
            assert_eq!(from_plan, expected, "at {y:?}");
        }
    }

    #[test]
    fn batch_equals_rebuild_2d() {
        let mut a = cube(&[9, 7]);
        let mut ps = PrefixSumCube::build(&a);
        let updates = [
            CellUpdate::new(&[0, 0], 5),
            CellUpdate::new(&[8, 6], -2),
            CellUpdate::new(&[4, 3], 9),
            CellUpdate::new(&[4, 5], 1),
            CellUpdate::new(&[2, 3], -7),
        ];
        let regions = apply_batch(&mut ps, &updates).unwrap();
        assert!(regions as f64 <= max_regions(5, 2));
        apply_to_cube(&mut a, &updates);
        let rebuilt = PrefixSumCube::build(&a);
        assert_eq!(
            ps.prefix_array().as_slice(),
            rebuilt.prefix_array().as_slice()
        );
    }

    #[test]
    fn batch_equals_rebuild_3d() {
        let mut a = cube(&[5, 6, 4]);
        let mut ps = PrefixSumCube::build(&a);
        let updates = [
            CellUpdate::new(&[0, 5, 3], 4),
            CellUpdate::new(&[4, 0, 0], 13),
            CellUpdate::new(&[2, 2, 2], -8),
            CellUpdate::new(&[2, 2, 2], 3), // duplicate location
        ];
        let regions = apply_batch(&mut ps, &updates).unwrap();
        assert!(regions as f64 <= max_regions(4, 3));
        apply_to_cube(&mut a, &updates);
        let rebuilt = PrefixSumCube::build(&a);
        assert_eq!(
            ps.prefix_array().as_slice(),
            rebuilt.prefix_array().as_slice()
        );
    }

    #[test]
    fn single_naive_matches_batch() {
        let mut a = cube(&[6, 6]);
        let mut ps1 = PrefixSumCube::build(&a);
        let mut ps2 = ps1.clone();
        let u = CellUpdate::new(&[3, 4], 21);
        apply_single_naive(&mut ps1, &u).unwrap();
        apply_batch(&mut ps2, std::slice::from_ref(&u)).unwrap();
        assert_eq!(ps1.prefix_array().as_slice(), ps2.prefix_array().as_slice());
        apply_to_cube(&mut a, std::slice::from_ref(&u));
        assert_eq!(
            ps1.prefix_array().as_slice(),
            PrefixSumCube::build(&a).prefix_array().as_slice()
        );
    }

    #[test]
    fn worst_case_update_touches_whole_p() {
        // Updating A[0,…,0] affects every element of P (§5.1).
        let a = cube(&[4, 4]);
        let mut ps = PrefixSumCube::build(&a);
        let before = ps.prefix_array().as_slice().to_vec();
        apply_batch(&mut ps, &[CellUpdate::new(&[0, 0], 1)]).unwrap();
        for (x, y) in before.iter().zip(ps.prefix_array().as_slice()) {
            assert_eq!(x + 1, *y);
        }
    }

    #[test]
    fn blocked_batch_equals_rebuild() {
        let mut a = cube(&[11, 13]);
        for b in [2usize, 3, 5] {
            let mut bp = BlockedPrefixCube::build(&a, b).unwrap();
            let updates = [
                CellUpdate::new(&[0, 12], 6),
                CellUpdate::new(&[10, 0], -4),
                CellUpdate::new(&[5, 5], 2),
                CellUpdate::new(&[5, 6], 2), // same block as the previous
            ];
            apply_batch_blocked(&mut bp, &updates).unwrap();
            let mut a2 = a.clone();
            apply_to_cube(&mut a2, &updates);
            let rebuilt = BlockedPrefixCube::build(&a2, b).unwrap();
            assert_eq!(
                bp.packed_array().as_slice(),
                rebuilt.packed_array().as_slice(),
                "b = {b}"
            );
        }
        // Keep `a` mutable usage meaningful: apply once for a final query check.
        let updates = [CellUpdate::new(&[1, 1], 100)];
        let mut bp = BlockedPrefixCube::build(&a, 4).unwrap();
        apply_batch_blocked(&mut bp, &updates).unwrap();
        apply_to_cube(&mut a, &updates);
        let q = Region::from_bounds(&[(0, 10), (0, 12)]).unwrap();
        assert_eq!(
            bp.range_sum(&a, &q).unwrap(),
            a.fold_region(&q, 0i64, |s, &x| s + x)
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn planning_records_regions_vs_bound() {
        let ctx = std::sync::Arc::new(olap_telemetry::Telemetry::new());
        olap_telemetry::with_scope(&ctx, || {
            let a = cube(&[8, 8]);
            let mut ps = PrefixSumCube::build(&a);
            let updates = [
                CellUpdate::new(&[1, 5], 1),
                CellUpdate::new(&[3, 2], 2),
                CellUpdate::new(&[6, 6], 3),
            ];
            let regions = apply_batch(&mut ps, &updates).unwrap();
            let reg = ctx.registry();
            assert_eq!(reg.counter("olap_batch_plans_total", &[]).get(), 1);
            assert_eq!(reg.counter("olap_batch_updates_total", &[]).get(), 3);
            assert_eq!(
                reg.counter("olap_batch_regions_total", &[]).get(),
                regions as u64
            );
            let h = reg.histogram("olap_batch_region_bound_permille", &[]);
            assert_eq!(h.count(), 1);
            // NR(3,2) = 6; the plan can never exceed the Theorem 2 bound.
            assert!(h.sum() <= 1000, "regions exceeded the bound: {}", h.sum());
        });
    }

    #[test]
    fn rejects_out_of_shape_updates() {
        let a = cube(&[4, 4]);
        let mut ps = PrefixSumCube::build(&a);
        assert!(apply_batch(&mut ps, &[CellUpdate::new(&[4, 0], 1)]).is_err());
        assert!(apply_single_naive(&mut ps, &CellUpdate::new(&[0], 1)).is_err());
    }

    #[test]
    fn empty_batch_is_noop() {
        let a = cube(&[4, 4]);
        let mut ps = PrefixSumCube::build(&a);
        let before = ps.prefix_array().as_slice().to_vec();
        let regions = apply_batch::<SumOp<i64>>(&mut ps, &[]).unwrap();
        assert_eq!(regions, 0);
        assert_eq!(ps.prefix_array().as_slice(), before.as_slice());
    }
}
