//! The blocked range-sum algorithm (§4): prefix sums kept only at block
//! anchors, trading query time for a `1/b^d` space footprint.

use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{exec, ArrayError, BudgetMeter, DenseArray, Parallelism, Range, Region, Shape};
use olap_query::AccessStats;

/// How a single boundary region was (or must be) evaluated (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryMethod {
    /// Sum the cells of `A` inside the boundary region directly.
    Direct,
    /// Sum the superblock from `P` and subtract the complement's `A` cells.
    Complement,
}

/// Evaluation policy for boundary regions. `Auto` is the paper's rule:
/// take `Direct` when `vol(R) ≤ vol(complement) + 2^d − 1`, else
/// `Complement`. The forced variants exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryPolicy {
    /// The paper's per-region cost rule.
    #[default]
    Auto,
    /// Always sum boundary cells directly (complement trick disabled).
    AlwaysDirect,
    /// Always use the superblock-minus-complement method.
    AlwaysComplement,
}

/// One piece of the `3^d` decomposition of a query (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPart {
    /// The sub-region itself.
    pub region: Region,
    /// Its superblock: the smallest block-aligned region containing it.
    pub superblock: Region,
    /// Whether this is the internal region (block-aligned on every
    /// dimension, answerable from `P` alone).
    pub internal: bool,
}

impl RegionPart {
    /// The complement region `superblock − region`, decomposed into
    /// disjoint boxes.
    pub fn complement(&self) -> Vec<Region> {
        self.superblock.subtract(&self.region)
    }

    /// The method the paper's cost rule selects for this part.
    pub fn preferred_method(&self, d: usize) -> BoundaryMethod {
        let vol = self.region.volume();
        let complement_vol = self.superblock.volume() - vol;
        // "choose the first method when the volume of R is smaller than or
        // equal to the volume of its complement region plus 2^d − 1".
        if vol <= complement_vol + ((1usize << d) - 1) {
            BoundaryMethod::Direct
        } else {
            BoundaryMethod::Complement
        }
    }
}

/// A progressive answer to a range-sum query (§11): bounds computable
/// from the blocked `P` alone, each in at most `2^d − 1` steps per
/// region, returned before the exact sum is worth computing.
///
/// The bounds are valid for **non-negative** measures (checked by the
/// caller or guaranteed by the domain): every boundary region contributes
/// at least nothing and at most its whole superblock.
#[derive(Debug, Clone, PartialEq)]
pub struct SumBounds<V> {
    /// Sum of the internal (block-aligned) region — never overcounts.
    pub lower: V,
    /// Internal region plus every boundary region's full superblock —
    /// never undercounts.
    pub upper: V,
}

/// The blocked prefix-sum array (§4.1): `P` is stored only where every
/// index `i_j` satisfies `(i_j + 1) mod b = 0` or `i_j = n_j − 1`, packed
/// into a dense array of shape `⌈n_1/b⌉ × … × ⌈n_d/b⌉`.
///
/// Unlike the basic algorithm, the original cube `A` cannot be dropped
/// (§4.1); queries take `&A` explicitly.
#[derive(Debug, Clone)]
pub struct BlockedPrefixSum<G: AbelianGroup> {
    op: G,
    b: usize,
    shape: Shape,
    p: DenseArray<G::Value>,
}

/// The blocked array specialised to SUM.
pub type BlockedPrefixCube<T> = BlockedPrefixSum<SumOp<T>>;

impl<T: NumericValue> BlockedPrefixCube<T> {
    /// Builds the SUM blocked prefix array with block size `b`.
    ///
    /// # Examples
    ///
    /// ```
    /// use olap_array::{DenseArray, Region, Shape};
    /// use olap_prefix_sum::BlockedPrefixCube;
    ///
    /// let cube = DenseArray::from_fn(Shape::new(&[20, 20]).unwrap(), |i| {
    ///     (i[0] + i[1]) as i64
    /// });
    /// // 1/b² of the basic array's storage; queries may read some cube cells.
    /// let bp = BlockedPrefixCube::build(&cube, 5).unwrap();
    /// assert_eq!(bp.packed_array().len(), 16);
    /// let q = Region::from_bounds(&[(3, 17), (0, 12)]).unwrap();
    /// let naive = cube.fold_region(&q, 0i64, |s, &x| s + x);
    /// assert_eq!(bp.range_sum(&cube, &q).unwrap(), naive);
    /// ```
    pub fn build(cube: &DenseArray<T>, b: usize) -> Result<Self, ArrayError> {
        BlockedPrefixSum::with_op(cube, SumOp::new(), b)
    }

    /// [`BlockedPrefixCube::build`] under an execution strategy.
    ///
    /// # Errors
    /// [`ArrayError::ZeroBlock`] when `b = 0`.
    pub fn build_with(cube: &DenseArray<T>, b: usize, par: Parallelism) -> Result<Self, ArrayError>
    where
        T: Send + Sync,
    {
        BlockedPrefixSum::with_op_par(cube, SumOp::new(), b, par)
    }
}

impl<G: AbelianGroup> BlockedPrefixSum<G> {
    /// Builds the blocked array under any invertible operator using the
    /// two-phase algorithm of §4.3: contract `A` by `b` (one block → one
    /// cell), then prefix-scan the contracted array. Takes
    /// `N + d·N/b^d` combine steps and no extra buffer.
    pub fn with_op(cube: &DenseArray<G::Value>, op: G, b: usize) -> Result<Self, ArrayError> {
        if b == 0 {
            return Err(ArrayError::ZeroBlock);
        }
        let mut p = cube.contract_blocks(b, op.identity(), |acc, x, _| op.combine(acc, x))?;
        for axis in 0..p.shape().ndim() {
            p.scan_axis(axis, |x, y| op.combine(x, y));
        }
        Ok(BlockedPrefixSum {
            op,
            b,
            shape: cube.shape().clone(),
            p,
        })
    }

    /// [`BlockedPrefixSum::with_op`] under an execution strategy: the
    /// block contraction runs as independent per-output-cell kernels and
    /// the `d` scan phases as per-slab line kernels, each optionally
    /// fanned out across threads. Per-cell fold and combine sequences
    /// match the sequential build exactly, so the packed array is
    /// bit-identical under every [`Parallelism`].
    ///
    /// # Errors
    /// [`ArrayError::ZeroBlock`] when `b = 0`.
    pub fn with_op_par(
        cube: &DenseArray<G::Value>,
        op: G,
        b: usize,
        par: Parallelism,
    ) -> Result<Self, ArrayError>
    where
        G: Sync,
        G::Value: Send + Sync,
    {
        if b == 0 {
            return Err(ArrayError::ZeroBlock);
        }
        let mut p =
            cube.contract_blocks_with(par, b, op.identity(), |acc, x, _| op.combine(acc, x))?;
        for axis in 0..p.shape().ndim() {
            p.scan_axis_with(par, axis, |x, y| op.combine(x, y));
        }
        Ok(BlockedPrefixSum {
            op,
            b,
            shape: cube.shape().clone(),
            p,
        })
    }

    /// Reassembles a blocked array from its parts (persistence support).
    ///
    /// # Errors
    /// Validates that `packed` has exactly the contracted shape of
    /// `shape` under `b`.
    pub fn from_parts(
        shape: Shape,
        b: usize,
        packed: DenseArray<G::Value>,
        op: G,
    ) -> Result<Self, ArrayError> {
        if b == 0 {
            return Err(ArrayError::ZeroBlock);
        }
        let expected = shape.contract(b)?;
        if packed.shape() != &expected {
            return Err(ArrayError::StorageMismatch {
                expected: expected.len(),
                actual: packed.len(),
            });
        }
        Ok(BlockedPrefixSum {
            op,
            b,
            shape,
            p: packed,
        })
    }

    /// The block size `b`.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// The shape of the underlying cube `A`.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The operator.
    pub fn op(&self) -> &G {
        &self.op
    }

    /// The packed blocked prefix array (shape `⌈n_j/b⌉` per dimension).
    pub fn packed_array(&self) -> &DenseArray<G::Value> {
        &self.p
    }

    /// Mutable access to the packed array (for batch updates).
    pub fn packed_array_mut(&mut self) -> &mut DenseArray<G::Value> {
        &mut self.p
    }

    /// The anchor index in `A`'s coordinates for packed coordinate `c` on
    /// dimension `axis`: `min((c+1)·b − 1, n_axis − 1)`.
    pub fn anchor_index(&self, axis: usize, c: usize) -> usize {
        ((c + 1) * self.b - 1).min(self.shape.dim(axis) - 1)
    }

    /// The precomputed prefix `Sum(0:anchor_1, …, 0:anchor_d)` at packed
    /// coordinates.
    pub fn anchor_prefix(&self, packed: &[usize]) -> &G::Value {
        self.p.get(packed)
    }

    /// Decomposes a query into its `≤ 3^d` disjoint parts (§4.2, cases 1
    /// and 2), each with its superblock. Exactly one part is internal when
    /// every dimension has a non-empty block-aligned middle.
    ///
    /// # Errors
    /// Propagates range/region construction failures instead of panicking
    /// — unreachable for a region already validated against this
    /// structure's shape, but query paths must never abort the process.
    pub fn decompose(&self, region: &Region) -> Result<Vec<RegionPart>, ArrayError> {
        let d = region.ndim();
        // Per-dimension subranges, each tagged (range, superblock-range, is_mid).
        let mut per_dim: Vec<Vec<(Range, Range, bool)>> = Vec::with_capacity(d);
        let b = self.b;
        for (axis, r) in region.ranges().iter().enumerate() {
            let n = self.shape.dim(axis);
            let (l, h) = (r.lo(), r.hi());
            let l_outer = b * (l / b); // ℓ″: start of the block containing ℓ
            let l_inner = b * l.div_ceil(b); // ℓ′: first block boundary ≥ ℓ
            let h_inner = b * (h / b); // h′: start of the block containing h
            let h_outer = (b * (h / b + 1)).min(n); // h″: end of that block, clipped
            let mut subs = Vec::with_capacity(3);
            if l_inner < h_inner {
                // Case 1: a non-empty aligned middle exists.
                if l < l_inner {
                    subs.push((
                        Range::new(l, l_inner - 1)?,
                        Range::new(l_outer, l_inner - 1)?,
                        false,
                    ));
                }
                let mid = Range::new(l_inner, h_inner - 1)?;
                subs.push((mid, mid, true));
                subs.push((
                    Range::new(h_inner, h)?,
                    Range::new(h_inner, h_outer - 1)?,
                    false,
                ));
            } else {
                // Case 2: the range does not span a full block boundary.
                subs.push((Range::new(l, h)?, Range::new(l_outer, h_outer - 1)?, false));
            }
            per_dim.push(subs);
        }
        // Cartesian product of the per-dimension subranges.
        let mut parts = Vec::new();
        let mut choice = vec![0usize; d];
        loop {
            let mut ranges = Vec::with_capacity(d);
            let mut super_ranges = Vec::with_capacity(d);
            let mut internal = true;
            for (axis, &c) in choice.iter().enumerate() {
                let (r, sb, mid) = per_dim[axis][c];
                ranges.push(r);
                super_ranges.push(sb);
                internal &= mid;
            }
            parts.push(RegionPart {
                region: Region::new(ranges)?,
                superblock: Region::new(super_ranges)?,
                internal,
            });
            // Odometer over the choices.
            let mut axis = d;
            // analyzer: allow(budget-coverage, reason = "odometer advance: at most ndim steps per emitted part; parts are charged by the caller")
            loop {
                if axis == 0 {
                    return Ok(parts);
                }
                axis -= 1;
                choice[axis] += 1;
                if choice[axis] < per_dim[axis].len() {
                    break;
                }
                choice[axis] = 0;
            }
        }
    }

    /// Theorem-1 query over the blocked `P` for a **block-aligned** region
    /// (every `ℓ_j` a multiple of `b`; every `h_j + 1` a multiple of `b` or
    /// equal to `n_j`).
    fn aligned_sum(&self, region: &Region, stats: &mut AccessStats) -> G::Value {
        let d = region.ndim();
        let mut corner = vec![0usize; d];
        let mut acc = self.op.identity();
        // analyzer: allow(budget-coverage, reason = "Theorem 1 corner gather over superblock P: at most 2^d probes, charged per part by range_sum_with_budget")
        'corners: for mask in 0u64..(1u64 << d) {
            // analyzer: allow(budget-coverage, reason = "corner coordinate selection: trip count = ndim per corner")
            for (j, c) in corner.iter_mut().enumerate() {
                let r = region.range(j);
                if (mask >> j) & 1 == 1 {
                    if r.lo() == 0 {
                        continue 'corners;
                    }
                    debug_assert_eq!(r.lo() % self.b, 0, "unaligned low bound {r}");
                    *c = r.lo() / self.b - 1;
                } else {
                    debug_assert!(
                        (r.hi() + 1).is_multiple_of(self.b) || r.hi() == self.shape.dim(j) - 1,
                        "unaligned high bound {r}"
                    );
                    *c = r.hi() / self.b;
                }
            }
            let term = self.p.get(&corner);
            stats.read_p(1);
            stats.step(1);
            if mask.count_ones() % 2 == 0 {
                acc = self.op.combine(&acc, term);
            } else {
                acc = self.op.uncombine(&acc, term);
            }
        }
        acc
    }

    /// Theorem-1 query over the blocked `P` for a **block-aligned**
    /// region, answered from anchors alone (`2^d` reads of `P`, no access
    /// to `A`). This is the exact-tier primitive of anchor-only
    /// approximate answering: any region whose bounds sit on block
    /// boundaries (or the clipped array edge) has an exact sum without
    /// touching base cells.
    ///
    /// # Errors
    /// [`ArrayError`] when the region's dimensionality does not match, a
    /// bound exceeds the shape, or a bound is not block-aligned (`ℓ_j`
    /// a multiple of `b` and `h_j + 1` a multiple of `b` or `h_j` the
    /// last index of axis `j`).
    pub fn block_aligned_sum(
        &self,
        region: &Region,
        stats: &mut AccessStats,
    ) -> Result<G::Value, ArrayError> {
        if region.ndim() != self.shape.ndim() {
            return Err(ArrayError::DimMismatch {
                expected: self.shape.ndim(),
                actual: region.ndim(),
            });
        }
        for (axis, r) in region.ranges().iter().enumerate() {
            let n = self.shape.dim(axis);
            if r.hi() >= n {
                return Err(ArrayError::OutOfBounds {
                    axis,
                    index: r.hi(),
                    extent: n,
                });
            }
            let aligned = r.lo().is_multiple_of(self.b)
                && ((r.hi() + 1).is_multiple_of(self.b) || r.hi() == n - 1);
            if !aligned {
                return Err(ArrayError::OutOfBounds {
                    axis,
                    index: r.lo(),
                    extent: n,
                });
            }
        }
        Ok(self.aligned_sum(region, stats))
    }

    /// Answers a range query with the blocked algorithm (§4.2).
    ///
    /// # Errors
    /// Validates the region and that `a` has the shape the structure was
    /// built from.
    pub fn range_sum(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
    ) -> Result<G::Value, ArrayError> {
        self.range_sum_with_policy(a, region, BoundaryPolicy::Auto)
            .map(|(v, _)| v)
    }

    /// Like [`BlockedPrefixSum::range_sum`], also reporting access counts.
    pub fn range_sum_with_stats(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        self.range_sum_with_policy(a, region, BoundaryPolicy::Auto)
    }

    /// The §11 progressive-answer primitive: lower and upper bounds on a
    /// range-sum computed **from `P` only** (no access to `A`), so an
    /// interactive user sees bounds immediately and the exact sum later.
    ///
    /// Sound for non-negative measures: `lower` counts only the internal
    /// region, `upper` additionally counts each boundary region's entire
    /// superblock.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_sum_bounds(
        &self,
        region: &Region,
    ) -> Result<(SumBounds<G::Value>, AccessStats), ArrayError> {
        self.shape.check_region(region)?;
        let mut stats = AccessStats::new();
        let mut lower = self.op.identity();
        let mut upper = self.op.identity();
        for part in self.decompose(region)? {
            if part.internal || part.superblock == part.region {
                // Exact from P: the internal region, or a boundary region
                // that happens to fill its whole superblock.
                let v = self.aligned_sum(&part.superblock, &mut stats);
                lower = self.op.combine(&lower, &v);
                upper = self.op.combine(&upper, &v);
            } else {
                let v = self.aligned_sum(&part.superblock, &mut stats);
                upper = self.op.combine(&upper, &v);
            }
            stats.step(2);
        }
        Ok((SumBounds { lower, upper }, stats))
    }

    /// The shared per-part kernel of the §4.2 query: evaluates one piece
    /// of the `3^d` decomposition under `policy`, recording its accesses.
    /// Both the sequential loop and the parallel fan-out run exactly this
    /// kernel per part.
    fn eval_part(
        &self,
        a: &DenseArray<G::Value>,
        part: &RegionPart,
        policy: BoundaryPolicy,
        d: usize,
        stats: &mut AccessStats,
    ) -> G::Value {
        let v = if part.internal {
            self.aligned_sum(&part.region, stats)
        } else {
            let method = match policy {
                BoundaryPolicy::Auto => part.preferred_method(d),
                BoundaryPolicy::AlwaysDirect => BoundaryMethod::Direct,
                BoundaryPolicy::AlwaysComplement => BoundaryMethod::Complement,
            };
            match method {
                BoundaryMethod::Direct => {
                    stats.read_a(part.region.volume() as u64);
                    stats.step(part.region.volume() as u64);
                    a.fold_region(&part.region, self.op.identity(), |s, x| {
                        self.op.combine(&s, x)
                    })
                }
                BoundaryMethod::Complement => {
                    let mut v = self.aligned_sum(&part.superblock, stats);
                    for hole in part.complement() {
                        stats.read_a(hole.volume() as u64);
                        stats.step(hole.volume() as u64);
                        let h =
                            a.fold_region(&hole, self.op.identity(), |s, x| self.op.combine(&s, x));
                        v = self.op.uncombine(&v, &h);
                    }
                    v
                }
            }
        };
        stats.step(1);
        v
    }

    /// Full-control entry point: evaluates the query under a given
    /// boundary policy, reporting access counts.
    pub fn range_sum_with_policy(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
        policy: BoundaryPolicy,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        if a.shape() != &self.shape {
            return Err(ArrayError::DimMismatch {
                expected: self.shape.ndim(),
                actual: a.shape().ndim(),
            });
        }
        self.shape.check_region(region)?;
        let d = region.ndim();
        let mut stats = AccessStats::new();
        let mut acc = self.op.identity();
        for part in self.decompose(region)? {
            let v = self.eval_part(a, &part, policy, d, &mut stats);
            acc = self.op.combine(&acc, &v);
        }
        Ok((acc, stats))
    }

    /// [`BlockedPrefixSum::range_sum_with_policy`] under an execution
    /// strategy: the `≤ 3^d` decomposition parts are evaluated by the
    /// same per-part kernel, optionally fanned out across threads, then
    /// reduced **in part order** — values combined and per-part
    /// [`AccessStats`] merged in the fixed order `decompose` emits. The
    /// answer and the stats are therefore identical to the sequential
    /// evaluation under every [`Parallelism`].
    ///
    /// # Errors
    /// Validates the region and the cube shape.
    pub fn range_sum_with_policy_par(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
        policy: BoundaryPolicy,
        par: Parallelism,
    ) -> Result<(G::Value, AccessStats), ArrayError>
    where
        G: Sync,
        G::Value: Send + Sync,
    {
        self.range_sum_with_budget(a, region, policy, par, &BudgetMeter::unlimited())
    }

    /// [`BlockedPrefixSum::range_sum_with_policy_par`] under a
    /// [`BudgetMeter`]: the meter is checked before any kernel work and at
    /// every part boundary, and each part's element accesses are charged
    /// against the budget as they complete. An exhausted budget, elapsed
    /// deadline, or cancelled token surfaces as
    /// [`ArrayError::Interrupted`]; the answer on the `Ok` path is
    /// bit-identical to the unbudgeted evaluation under every
    /// [`Parallelism`].
    ///
    /// # Errors
    /// Validates the region and the cube shape; propagates budget
    /// interrupts.
    pub fn range_sum_with_budget(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
        policy: BoundaryPolicy,
        par: Parallelism,
        meter: &BudgetMeter,
    ) -> Result<(G::Value, AccessStats), ArrayError>
    where
        G: Sync,
        G::Value: Send + Sync,
    {
        if a.shape() != &self.shape {
            return Err(ArrayError::DimMismatch {
                expected: self.shape.ndim(),
                actual: a.shape().ndim(),
            });
        }
        self.shape.check_region(region)?;
        meter.check()?;
        let d = region.ndim();
        let parts = self.decompose(region)?;
        let results: Vec<(G::Value, AccessStats)> =
            exec::run_indexed_fallible(par, parts, |_, part| {
                meter.check()?;
                let mut part_stats = AccessStats::new();
                let v = self.eval_part(a, &part, policy, d, &mut part_stats);
                meter.charge(part_stats.total_accesses())?;
                Ok::<_, ArrayError>((v, part_stats))
            })?;
        let mut acc = self.op.identity();
        let mut stats = AccessStats::new();
        for (v, s) in &results {
            meter.check()?;
            acc = self.op.combine(&acc, v);
            stats.merge(s);
        }
        Ok((acc, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> DenseArray<i64> {
        DenseArray::from_vec(
            Shape::new(&[3, 6]).unwrap(),
            vec![
                3, 5, 1, 2, 2, 3, //
                7, 3, 2, 6, 8, 2, //
                2, 4, 2, 3, 3, 5,
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3_blocked_example() {
        // Figure 3: with b = 2 only P at odd indices (and last indices)
        // remains: rows {1,2} × cols {1,3,5} → 18,29,44 / 24,40,63.
        let a = figure1();
        let bp = BlockedPrefixCube::build(&a, 2).unwrap();
        assert_eq!(bp.packed_array().shape().dims(), &[2, 3]);
        assert_eq!(bp.packed_array().as_slice(), &[18, 29, 44, 24, 40, 63]);
        // Anchors: packed row 0 is original row 1; packed row 1 is the
        // clipped last row 2.
        assert_eq!(bp.anchor_index(0, 0), 1);
        assert_eq!(bp.anchor_index(0, 1), 2);
        assert_eq!(bp.anchor_index(1, 2), 5);
    }

    #[test]
    fn fig5_decomposition() {
        // Figure 5: Sum(50:349, 50:349) on a 400×400 cube with b = 100
        // splits into 3² = 9 regions, A5 = (100:299, 100:299) internal.
        let a = DenseArray::filled(Shape::new(&[400, 400]).unwrap(), 1i64);
        let bp = BlockedPrefixCube::build(&a, 100).unwrap();
        let q = Region::from_bounds(&[(50, 349), (50, 349)]).unwrap();
        let parts = bp.decompose(&q).unwrap();
        assert_eq!(parts.len(), 9);
        let internal: Vec<_> = parts.iter().filter(|p| p.internal).collect();
        assert_eq!(internal.len(), 1);
        assert_eq!(
            internal[0].region,
            Region::from_bounds(&[(100, 299), (100, 299)]).unwrap()
        );
        // Figure 5(c): each boundary superblock is block-aligned; e.g. the
        // top-left boundary A1 = (50:99, 50:99) has superblock (0:99, 0:99).
        let a1 = parts
            .iter()
            .find(|p| p.region == Region::from_bounds(&[(50, 99), (50, 99)]).unwrap())
            .unwrap();
        assert_eq!(
            a1.superblock,
            Region::from_bounds(&[(0, 99), (0, 99)]).unwrap()
        );
        // Figure 5(d): its complement has volume 100² − 50².
        let comp_vol: usize = a1.complement().iter().map(|r| r.volume()).sum();
        assert_eq!(comp_vol, 100 * 100 - 50 * 50);
    }

    #[test]
    fn fig6_method_choices() {
        // Figure 6: Sum(75:374, 100:354) with b = 100. The low-edge strip
        // (75:99 × 100:299) is cheaper directly; the high-edge strip
        // (300:374 × 100:299) is cheaper via its complement.
        let a = DenseArray::filled(Shape::new(&[400, 400]).unwrap(), 1i64);
        let bp = BlockedPrefixCube::build(&a, 100).unwrap();
        let q = Region::from_bounds(&[(75, 374), (100, 354)]).unwrap();
        let parts = bp.decompose(&q).unwrap();
        // Dim 0 has Low/Mid/High; dim 1's low subrange is empty (100 is a
        // block boundary), so 3 × 2 = 6 parts.
        assert_eq!(parts.len(), 6);
        assert_eq!(parts.iter().filter(|p| p.internal).count(), 1);
        let low_strip = parts
            .iter()
            .find(|p| p.region == Region::from_bounds(&[(75, 99), (100, 299)]).unwrap())
            .unwrap();
        assert_eq!(low_strip.preferred_method(2), BoundaryMethod::Direct);
        let high_strip = parts
            .iter()
            .find(|p| p.region == Region::from_bounds(&[(300, 374), (100, 299)]).unwrap())
            .unwrap();
        assert_eq!(high_strip.preferred_method(2), BoundaryMethod::Complement);
    }

    #[test]
    fn case2_unaligned_small_range() {
        // A range entirely inside one block (ℓ′ ≥ h′) takes the case-2
        // single-subrange path.
        let a = DenseArray::from_fn(Shape::new(&[20, 20]).unwrap(), |i| (i[0] + 2 * i[1]) as i64);
        let bp = BlockedPrefixCube::build(&a, 8).unwrap();
        let q = Region::from_bounds(&[(9, 14), (2, 5)]).unwrap();
        let parts = bp.decompose(&q).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(!parts[0].internal);
        assert_eq!(
            parts[0].superblock,
            Region::from_bounds(&[(8, 15), (0, 7)]).unwrap()
        );
        let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
        assert_eq!(bp.range_sum(&a, &q).unwrap(), naive);
    }

    #[test]
    fn budget_cuts_off_blocked_query() {
        use olap_array::{Interrupt, QueryBudget};
        let a = DenseArray::from_fn(Shape::new(&[30, 30]).unwrap(), |i| (i[0] + i[1]) as i64);
        let bp = BlockedPrefixCube::build(&a, 8).unwrap();
        let q = Region::from_bounds(&[(3, 27), (5, 29)]).unwrap();
        let (v0, s0) = bp.range_sum_with_stats(&a, &q).unwrap();
        // One access short: interrupted. Exactly enough: identical answer.
        let tight = QueryBudget::unlimited()
            .max_accesses(s0.total_accesses() - 1)
            .start(None);
        let err = bp
            .range_sum_with_budget(
                &a,
                &q,
                BoundaryPolicy::Auto,
                Parallelism::Sequential,
                &tight,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Interrupted(Interrupt::BudgetExhausted { .. })
        ));
        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let enough = QueryBudget::unlimited()
                .max_accesses(s0.total_accesses())
                .start(None);
            let (v, s) = bp
                .range_sum_with_budget(&a, &q, BoundaryPolicy::Auto, par, &enough)
                .unwrap();
            assert_eq!(v, v0, "{par:?}");
            assert_eq!(s.total_accesses(), s0.total_accesses(), "{par:?}");
        }
    }

    #[test]
    fn zero_deadline_kills_blocked_query_before_work() {
        use olap_array::{Interrupt, QueryBudget};
        let a = DenseArray::from_fn(Shape::new(&[30, 30]).unwrap(), |i| (i[0] + i[1]) as i64);
        let bp = BlockedPrefixCube::build(&a, 8).unwrap();
        let q = Region::from_bounds(&[(3, 27), (5, 29)]).unwrap();
        let meter = QueryBudget::unlimited()
            .deadline(std::time::Duration::ZERO)
            .start(None);
        let err = bp
            .range_sum_with_budget(
                &a,
                &q,
                BoundaryPolicy::Auto,
                Parallelism::Sequential,
                &meter,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Interrupted(Interrupt::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn block_aligned_sum_answers_from_anchors_only() {
        let a = DenseArray::from_fn(Shape::new(&[7, 9]).unwrap(), |i| {
            (i[0] * 13 + i[1] * 31) as i64 % 23 - 11
        });
        for b in [1usize, 2, 3, 4] {
            let bp = BlockedPrefixCube::build(&a, b).unwrap();
            for q in [
                Region::from_bounds(&[(0, 6), (0, 8)]).unwrap(),
                Region::from_bounds(&[(0, b.min(7) - 1), (0, 8)]).unwrap(),
            ] {
                let mut stats = AccessStats::new();
                let v = bp.block_aligned_sum(&q, &mut stats).unwrap();
                assert_eq!(v, a.fold_region(&q, 0i64, |s, &x| s + x), "b={b} {q}");
                assert_eq!(stats.a_cells, 0, "no base-cell reads");
                assert!(stats.p_cells <= 4, "2^d anchor reads at most");
            }
        }
        // Unaligned bounds are rejected, as are out-of-shape regions.
        let bp = BlockedPrefixCube::build(&a, 2).unwrap();
        let mut stats = AccessStats::new();
        let unaligned = Region::from_bounds(&[(1, 6), (0, 8)]).unwrap();
        assert!(bp.block_aligned_sum(&unaligned, &mut stats).is_err());
        let tall = Region::from_bounds(&[(0, 8), (0, 8)]).unwrap();
        assert!(bp.block_aligned_sum(&tall, &mut stats).is_err());
    }

    #[test]
    fn matches_naive_exhaustively_2d() {
        // Every possible query on a small cube, several block sizes,
        // including b larger than a dimension and b = 1.
        let a = DenseArray::from_fn(Shape::new(&[7, 9]).unwrap(), |i| {
            (i[0] * 13 + i[1] * 31) as i64 % 23 - 11
        });
        for b in [1usize, 2, 3, 4, 8, 16] {
            let bp = BlockedPrefixCube::build(&a, b).unwrap();
            for l0 in 0..7 {
                for h0 in l0..7 {
                    for l1 in 0..9 {
                        for h1 in l1..9 {
                            let q = Region::from_bounds(&[(l0, h0), (l1, h1)]).unwrap();
                            let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
                            assert_eq!(bp.range_sum(&a, &q).unwrap(), naive, "b={b} query {q}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn all_policies_agree() {
        let a = DenseArray::from_fn(Shape::new(&[30, 30]).unwrap(), |i| {
            (i[0] * 7 + i[1]) as i64 % 19
        });
        let bp = BlockedPrefixCube::build(&a, 10).unwrap();
        let q = Region::from_bounds(&[(3, 27), (5, 29)]).unwrap();
        let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
        for policy in [
            BoundaryPolicy::Auto,
            BoundaryPolicy::AlwaysDirect,
            BoundaryPolicy::AlwaysComplement,
        ] {
            let (v, _) = bp.range_sum_with_policy(&a, &q, policy).unwrap();
            assert_eq!(v, naive, "{policy:?}");
        }
    }

    #[test]
    fn auto_never_accesses_more_than_forced_policies() {
        let a = DenseArray::from_fn(Shape::new(&[50, 50]).unwrap(), |i| (i[0] + i[1]) as i64);
        let bp = BlockedPrefixCube::build(&a, 10).unwrap();
        let q = Region::from_bounds(&[(2, 48), (11, 39)]).unwrap();
        let (_, auto) = bp
            .range_sum_with_policy(&a, &q, BoundaryPolicy::Auto)
            .unwrap();
        let (_, direct) = bp
            .range_sum_with_policy(&a, &q, BoundaryPolicy::AlwaysDirect)
            .unwrap();
        let (_, comp) = bp
            .range_sum_with_policy(&a, &q, BoundaryPolicy::AlwaysComplement)
            .unwrap();
        assert!(auto.a_cells <= direct.a_cells);
        assert!(auto.total_accesses() <= direct.total_accesses().max(comp.total_accesses()));
    }

    #[test]
    fn aligned_query_touches_no_a_cells() {
        // A fully block-aligned query is the internal region alone.
        let a = DenseArray::from_fn(Shape::new(&[40, 40]).unwrap(), |i| (i[0] * i[1]) as i64);
        let bp = BlockedPrefixCube::build(&a, 10).unwrap();
        let q = Region::from_bounds(&[(10, 29), (20, 39)]).unwrap();
        let (v, stats) = bp.range_sum_with_stats(&a, &q).unwrap();
        assert_eq!(v, a.fold_region(&q, 0i64, |s, &x| s + x));
        // Block-aligned boundary parts have empty complements, so the Auto
        // policy answers every part from P alone: zero A-cells, and at most
        // 2^d P-lookups for each of the ≤ 3^d parts.
        assert_eq!(stats.a_cells, 0);
        assert!(stats.p_cells <= 4 * 9);
    }

    #[test]
    fn rejects_mismatched_cube() {
        let a = DenseArray::filled(Shape::new(&[10, 10]).unwrap(), 1i64);
        let bp = BlockedPrefixCube::build(&a, 4).unwrap();
        let other = DenseArray::filled(Shape::new(&[10]).unwrap(), 1i64);
        let q = Region::from_bounds(&[(0, 9), (0, 9)]).unwrap();
        assert!(bp.range_sum(&other, &q).is_err());
    }

    #[test]
    fn rejects_zero_block() {
        let a = DenseArray::filled(Shape::new(&[4]).unwrap(), 1i64);
        assert!(matches!(
            BlockedPrefixCube::build(&a, 0),
            Err(ArrayError::ZeroBlock)
        ));
    }

    #[test]
    fn progressive_bounds_bracket_the_exact_sum() {
        // §11: bounds from P only, exact later. Non-negative data.
        let a = DenseArray::from_fn(Shape::new(&[60, 60]).unwrap(), |i| {
            ((i[0] * 7 + i[1] * 13) % 50) as i64
        });
        for b in [5usize, 8, 16] {
            let bp = BlockedPrefixCube::build(&a, b).unwrap();
            for (l0, h0, l1, h1) in [
                (3, 47, 11, 59),
                (0, 59, 0, 59),
                (20, 29, 20, 29),
                (7, 8, 0, 59),
            ] {
                let q = Region::from_bounds(&[(l0, h0), (l1, h1)]).unwrap();
                let exact = a.fold_region(&q, 0i64, |s, &x| s + x);
                let (bounds, stats) = bp.range_sum_bounds(&q).unwrap();
                assert!(
                    bounds.lower <= exact && exact <= bounds.upper,
                    "b={b} {q}: {} ≤ {exact} ≤ {} violated",
                    bounds.lower,
                    bounds.upper
                );
                // Bounds never touch A.
                assert_eq!(stats.a_cells, 0);
            }
        }
    }

    #[test]
    fn progressive_bounds_tight_for_aligned_queries() {
        let a = DenseArray::filled(Shape::new(&[40, 40]).unwrap(), 2i64);
        let bp = BlockedPrefixCube::build(&a, 10).unwrap();
        let q = Region::from_bounds(&[(10, 29), (0, 39)]).unwrap();
        let (bounds, _) = bp.range_sum_bounds(&q).unwrap();
        let exact = a.fold_region(&q, 0i64, |s, &x| s + x);
        assert_eq!(bounds.lower, exact);
        assert_eq!(bounds.upper, exact);
    }

    #[test]
    fn three_dimensional_correctness() {
        let a = DenseArray::from_fn(Shape::new(&[9, 8, 7]).unwrap(), |i| {
            (i[0] * 5 + i[1] * 3 + i[2]) as i64 % 13 - 6
        });
        for b in [2usize, 3, 4] {
            let bp = BlockedPrefixCube::build(&a, b).unwrap();
            let queries = [
                [(0, 8), (0, 7), (0, 6)],
                [(1, 7), (2, 6), (1, 5)],
                [(4, 4), (3, 3), (2, 2)],
                [(0, 5), (5, 7), (6, 6)],
                [(2, 3), (0, 7), (1, 2)],
            ];
            for qb in queries {
                let q = Region::from_bounds(&qb).unwrap();
                let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
                assert_eq!(bp.range_sum(&a, &q).unwrap(), naive, "b={b} q={q}");
            }
        }
    }
}
