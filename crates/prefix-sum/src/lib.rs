//! Prefix-sum range-sum algorithms — the paper's primary contribution.
//!
//! - [`PrefixSumArray`] (§3): precompute the d-dimensional prefix-sum array
//!   `P` (same size as the cube); any range-sum is then at most `2^d`
//!   signed lookups into `P` (Theorem 1). The cube `A` may be discarded
//!   because every cell is itself a (degenerate) range-sum (§3.4).
//! - [`BlockedPrefixSum`] (§4): store `P` only at block anchors — `1/b^d`
//!   the space — and answer a query by splitting it into `3^d` disjoint
//!   sub-regions: one block-aligned *internal* region answered from `P`
//!   plus *boundary* regions answered from `A`, either directly or via the
//!   complement trick (superblock minus complement), whichever is cheaper.
//! - [`batch`] (§5): merge `k` queued updates into at most
//!   `∏_{j=0}^{d−1}(k+j)/d!` disjoint rectangular update regions
//!   (Theorem 2) and apply them to `P` in one pass per region; the blocked
//!   variant first contracts update locations to block coordinates.
//!
//! All algorithms are generic over any invertible operator
//! ([`olap_aggregate::AbelianGroup`]): SUM, COUNT, AVERAGE pairs, XOR,
//! PRODUCT on a zero-free domain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed errors; panicking escape
// hatches are denied outside test builds (tests and benches may unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod basic;
mod blocked;
mod partial;

pub mod batch;
pub mod paging;

pub use basic::{PrefixSumArray, PrefixSumCube};
pub use blocked::{
    BlockedPrefixCube, BlockedPrefixSum, BoundaryMethod, BoundaryPolicy, RegionPart, SumBounds,
};
pub use partial::{PartialPrefixCube, PartialPrefixSum};
