//! Page-access simulation for the prefix-sum computation (§3.3).
//!
//! §3.3's implementation note: during each phase, "the order of `P_i`
//! elements visited should follow the natural order in storage as opposed
//! to following the dimension along which the prefix-sum is performed.
//! With such an implementation, each page of `P` will be paged in at most
//! twice for each phase."
//!
//! This module simulates both traversal orders against an LRU page cache
//! and counts the page faults, so the claim can be *measured*
//! (`experiments -- paging`).

use olap_array::Shape;
use std::collections::HashMap;

/// Which order a phase visits the cells in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// Row-major storage order with the scan interleaved (the paper's
    /// recommendation).
    Storage,
    /// Line by line along the scanned dimension (the naive order the
    /// paper warns against).
    Dimension,
}

/// A simple LRU page cache counting faults.
struct LruPages {
    capacity: usize,
    clock: u64,
    /// page id → last-touch clock.
    pages: HashMap<usize, u64>,
    faults: u64,
}

impl LruPages {
    fn new(capacity: usize) -> Self {
        LruPages {
            capacity,
            clock: 0,
            pages: HashMap::new(),
            faults: 0,
        }
    }

    fn touch(&mut self, page: usize) {
        self.clock += 1;
        if let std::collections::hash_map::Entry::Vacant(e) = self.pages.entry(page) {
            self.faults += 1;
            e.insert(self.clock);
            if self.pages.len() > self.capacity {
                // Evict the least recently used page.
                if let Some((&victim, _)) = self.pages.iter().min_by_key(|(_, &t)| t) {
                    self.pages.remove(&victim);
                }
            }
        } else {
            self.pages.insert(page, self.clock);
        }
    }
}

/// Simulates the d-phase prefix-sum computation over `shape`, returning
/// the total page faults under an LRU cache of `cache_pages` pages of
/// `page_size` cells each.
///
/// Only the access *pattern* is simulated (each combine reads the
/// predecessor cell along the phase's axis and reads+writes the current
/// cell); no values are computed.
pub fn simulate_build_faults(
    shape: &Shape,
    order: ScanOrder,
    page_size: usize,
    cache_pages: usize,
) -> u64 {
    assert!(page_size >= 1 && cache_pages >= 2);
    let mut cache = LruPages::new(cache_pages);
    let mut touch = |flat: usize| cache.touch(flat / page_size);
    let d = shape.ndim();
    for axis in 0..d {
        let n = shape.dim(axis);
        let stride = shape.strides()[axis];
        let slab = n * stride;
        match order {
            ScanOrder::Storage => {
                // Identical pattern to `DenseArray::scan_axis`: slabs in
                // order; within a slab, rows k = 1..n in storage order.
                let mut base = 0;
                while base < shape.len() {
                    for k in 1..n {
                        let row = base + k * stride;
                        for inner in 0..stride {
                            touch(row - stride + inner); // predecessor
                            touch(row + inner); // current (read + write)
                        }
                    }
                    base += slab;
                }
            }
            ScanOrder::Dimension => {
                // Whole lines along the axis, one at a time.
                let mut base = 0;
                while base < shape.len() {
                    for inner in 0..stride {
                        for k in 1..n {
                            let cur = base + k * stride + inner;
                            touch(cur - stride);
                            touch(cur);
                        }
                    }
                    base += slab;
                }
            }
        }
    }
    cache.faults
}

/// The §3.3 bound: pages of `P` × 2 page-ins per phase × `d` phases
/// (an upper bound for the storage-order traversal whenever the cache
/// holds at least two pages).
pub fn storage_order_bound(shape: &Shape, page_size: usize) -> u64 {
    let pages = shape.len().div_ceil(page_size) as u64;
    2 * pages * shape.ndim() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_order_meets_paper_bound() {
        for dims in [vec![64usize, 64], vec![16, 16, 16], vec![256, 8]] {
            let shape = Shape::new(&dims).unwrap();
            let faults = simulate_build_faults(&shape, ScanOrder::Storage, 64, 4);
            assert!(
                faults <= storage_order_bound(&shape, 64),
                "{dims:?}: {faults} > bound {}",
                storage_order_bound(&shape, 64)
            );
        }
    }

    #[test]
    fn dimension_order_thrashes_small_caches() {
        // Scanning along the slow axis strides across pages; a small cache
        // must fault far more than the storage order.
        let shape = Shape::new(&[128, 128]).unwrap();
        let storage = simulate_build_faults(&shape, ScanOrder::Storage, 64, 4);
        let dimension = simulate_build_faults(&shape, ScanOrder::Dimension, 64, 4);
        assert!(
            dimension > storage * 10,
            "dimension {dimension} vs storage {storage}"
        );
    }

    #[test]
    fn both_orders_equal_with_unbounded_cache() {
        // With a cache holding everything, both orders fault exactly once
        // per page.
        let shape = Shape::new(&[64, 64]).unwrap();
        let pages = shape.len().div_ceil(64);
        let storage = simulate_build_faults(&shape, ScanOrder::Storage, 64, pages + 1);
        let dimension = simulate_build_faults(&shape, ScanOrder::Dimension, 64, pages + 1);
        assert_eq!(storage, pages as u64);
        assert_eq!(dimension, pages as u64);
    }

    #[test]
    fn one_dimensional_orders_coincide() {
        let shape = Shape::new(&[4096]).unwrap();
        let a = simulate_build_faults(&shape, ScanOrder::Storage, 64, 2);
        let b = simulate_build_faults(&shape, ScanOrder::Dimension, 64, 2);
        assert_eq!(a, b);
    }
}
