//! Prefix sums along a **subset** of the dimensions (§9.1).
//!
//! When queries never (or rarely) range over some attributes, computing
//! prefix sums along them only adds corner terms: a query pays a
//! multiplicative factor of 2 per *chosen* dimension and `r_j` (its range
//! length) per *unchosen* one. §9.1's selection algorithms
//! (`olap-planner`) decide the subset `X′`; this structure executes it.
//!
//! With `X′` = all dimensions this is exactly the basic algorithm; with
//! `X′ = ∅` the array equals the cube and a query degenerates to the
//! naive scan — the two endpoints of the trade-off.

use crate::batch::CellUpdate;
use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{ArrayError, DenseArray, Range, Region, Shape};
use olap_query::AccessStats;

/// A prefix-sum array computed only along the chosen dimensions `X′`.
#[derive(Debug, Clone)]
pub struct PartialPrefixSum<G: AbelianGroup> {
    op: G,
    /// Sorted chosen dimensions.
    dims: Vec<usize>,
    chosen: Vec<bool>,
    p: DenseArray<G::Value>,
}

/// The SUM-specialised partial prefix array.
pub type PartialPrefixCube<T> = PartialPrefixSum<SumOp<T>>;

impl<T: NumericValue> PartialPrefixCube<T> {
    /// Builds the SUM variant with prefix sums along `dims`.
    ///
    /// # Errors
    /// Rejects out-of-range or duplicate dimensions.
    pub fn build(cube: &DenseArray<T>, dims: &[usize]) -> Result<Self, ArrayError> {
        PartialPrefixSum::with_op(cube, SumOp::new(), dims)
    }
}

impl<G: AbelianGroup> PartialPrefixSum<G> {
    /// Builds the array under any invertible operator, scanning only the
    /// chosen axes (`|X′|·N` combine steps).
    ///
    /// # Errors
    /// Rejects out-of-range or duplicate dimensions.
    pub fn with_op(cube: &DenseArray<G::Value>, op: G, dims: &[usize]) -> Result<Self, ArrayError> {
        let d = cube.shape().ndim();
        let mut chosen = vec![false; d];
        for &j in dims {
            if j >= d {
                return Err(ArrayError::OutOfBounds {
                    axis: j,
                    index: j,
                    extent: d,
                });
            }
            if chosen[j] {
                return Err(ArrayError::DimMismatch {
                    expected: d,
                    actual: dims.len(),
                });
            }
            chosen[j] = true;
        }
        let mut p = cube.clone();
        let mut sorted: Vec<usize> = dims.to_vec();
        sorted.sort_unstable();
        for &axis in &sorted {
            p.scan_axis(axis, |a, b| op.combine(a, b));
        }
        Ok(PartialPrefixSum {
            op,
            dims: sorted,
            chosen,
            p,
        })
    }

    /// The chosen dimensions `X′` (sorted).
    pub fn chosen_dims(&self) -> &[usize] {
        &self.dims
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        self.p.shape()
    }

    /// Answers a range-sum query: for every coordinate combination of the
    /// *unchosen* dimensions, one Theorem-1 inclusion–exclusion over the
    /// chosen ones — the §9.1 cost model `∏_{j∉X′} r_j · 2^{|X′|}`.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_sum(&self, region: &Region) -> Result<G::Value, ArrayError> {
        self.range_sum_with_stats(region).map(|(v, _)| v)
    }

    /// Like [`PartialPrefixSum::range_sum`] with access counts.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_sum_with_stats(
        &self,
        region: &Region,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        self.p.shape().check_region(region)?;
        let d = region.ndim();
        let mut stats = AccessStats::new();
        let passive: Vec<usize> = (0..d).filter(|&j| !self.chosen[j]).collect();
        let k = self.dims.len();
        let mut acc = self.op.identity();
        // Odometer over the passive dims' coordinates.
        let mut passive_coord: Vec<usize> = passive.iter().map(|&j| region.range(j).lo()).collect();
        let mut corner = vec![0usize; d];
        'outer: loop {
            // Inclusion–exclusion over the chosen dims with the passive
            // coordinates pinned.
            'corners: for mask in 0u64..(1u64 << k) {
                // analyzer: allow(budget-coverage, reason = "pins passive coordinates: trip count = ndim; stats-only API, budget enforced by the budgeted wrappers")
                for (pi, &j) in passive.iter().enumerate() {
                    corner[j] = passive_coord[pi];
                }
                // analyzer: allow(budget-coverage, reason = "corner selection over chosen dims: trip count = ndim; stats-only API, budget enforced by the budgeted wrappers")
                for (ci, &j) in self.dims.iter().enumerate() {
                    let r = region.range(j);
                    if (mask >> ci) & 1 == 1 {
                        if r.lo() == 0 {
                            continue 'corners;
                        }
                        corner[j] = r.lo() - 1;
                    } else {
                        corner[j] = r.hi();
                    }
                }
                let term = self.p.get(&corner);
                stats.read_p(1);
                stats.step(1);
                if mask.count_ones() % 2 == 0 {
                    acc = self.op.combine(&acc, term);
                } else {
                    acc = self.op.uncombine(&acc, term);
                }
            }
            // Advance the passive odometer.
            let mut axis = passive.len();
            // analyzer: allow(budget-coverage, reason = "odometer advance: at most ndim steps per passive cell; stats-only API, budget enforced by the budgeted wrappers")
            loop {
                if axis == 0 {
                    break 'outer;
                }
                axis -= 1;
                let r = region.range(passive[axis]);
                if passive_coord[axis] < r.hi() {
                    passive_coord[axis] += 1;
                    continue 'outer;
                }
                passive_coord[axis] = r.lo();
            }
        }
        Ok((acc, stats))
    }
}

impl<G: AbelianGroup> PartialPrefixSum<G> {
    /// Applies queued updates with the §5 batch algorithm restricted to
    /// the chosen dimensions: an update of `A[x]` affects exactly the
    /// cells with `y_j ≥ x_j` on chosen dimensions and `y_j = x_j` on
    /// unchosen ones, so the Theorem-2 region partition runs on the
    /// chosen-dimension projection with the unchosen coordinates pinned.
    ///
    /// Returns the number of update regions applied.
    ///
    /// # Errors
    /// Rejects out-of-shape update indices.
    pub fn apply_batch(&mut self, updates: &[CellUpdate<G::Value>]) -> Result<usize, ArrayError> {
        for u in updates {
            self.p.shape().check_index(&u.index)?;
        }
        // Group updates by their unchosen-coordinate signature; each group
        // is an independent Theorem-2 instance on the chosen subspace.
        let passive: Vec<usize> = (0..self.p.shape().ndim())
            .filter(|&j| !self.chosen[j])
            .collect();
        let mut groups: std::collections::BTreeMap<Vec<usize>, Vec<&CellUpdate<G::Value>>> =
            std::collections::BTreeMap::new();
        for u in updates {
            let key: Vec<usize> = passive.iter().map(|&j| u.index[j]).collect();
            groups.entry(key).or_default().push(u);
        }
        let chosen_dims: Vec<usize> = self.dims.iter().map(|&j| self.p.shape().dim(j)).collect();
        let mut regions_applied = 0usize;
        for (passive_coords, group) in groups {
            if self.dims.is_empty() {
                // No chosen dimensions: P == A; apply point-wise.
                for u in group {
                    let cur = self.p.get(&u.index).clone();
                    *self.p.get_mut(&u.index) = self.op.combine(&cur, &u.delta);
                    regions_applied += 1;
                }
                continue;
            }
            let chosen_shape = Shape::new(&chosen_dims)?;
            let projected: Vec<CellUpdate<G::Value>> = group
                .iter()
                .map(|u| {
                    let idx: Vec<usize> = self.dims.iter().map(|&j| u.index[j]).collect();
                    CellUpdate::new(&idx, u.delta.clone())
                })
                .collect();
            let plan = crate::batch::plan_regions(&chosen_shape, &self.op, &projected)?;
            regions_applied += plan.len();
            for (sub_region, delta) in plan {
                // Lift the chosen-subspace region into full coordinates.
                let mut ranges: Vec<Range> = Vec::with_capacity(self.p.shape().ndim());
                let mut ci = 0usize;
                let mut pi = 0usize;
                for j in 0..self.p.shape().ndim() {
                    if self.chosen[j] {
                        ranges.push(sub_region.range(ci));
                        ci += 1;
                    } else {
                        ranges.push(Range::singleton(passive_coords[pi]));
                        pi += 1;
                    }
                }
                let region = Region::new(ranges)?;
                for off in self.p.region_offsets(&region) {
                    let cur = self.p.get_flat(off).clone();
                    *self.p.get_flat_mut(off) = self.op.combine(&cur, &delta);
                }
            }
        }
        Ok(regions_applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> DenseArray<i64> {
        DenseArray::from_fn(Shape::new(&[6, 5, 4]).unwrap(), |i| {
            (i[0] * 11 + i[1] * 5 + i[2] * 3) as i64 % 17 - 8
        })
    }

    fn naive(a: &DenseArray<i64>, q: &Region) -> i64 {
        a.fold_region(q, 0i64, |s, &x| s + x)
    }

    #[test]
    fn matches_naive_for_every_subset() {
        let a = cube();
        let queries = [
            [(0, 5), (0, 4), (0, 3)],
            [(1, 4), (2, 2), (1, 3)],
            [(5, 5), (0, 4), (2, 2)],
            [(0, 2), (3, 4), (0, 0)],
        ];
        for mask in 0u32..8 {
            let dims: Vec<usize> = (0..3).filter(|&j| (mask >> j) & 1 == 1).collect();
            let pp = PartialPrefixCube::build(&a, &dims).unwrap();
            for qb in queries {
                let q = Region::from_bounds(&qb).unwrap();
                assert_eq!(pp.range_sum(&q).unwrap(), naive(&a, &q), "X'={dims:?} {q}");
            }
        }
    }

    #[test]
    fn cost_matches_section_9_1_model() {
        // Factors: 2 per chosen dim (with interior bounds so no corner
        // vanishes), r_j per passive dim.
        let a = cube();
        let pp = PartialPrefixCube::build(&a, &[0, 2]).unwrap();
        let q = Region::from_bounds(&[(1, 4), (1, 3), (1, 2)]).unwrap();
        let (_, stats) = pp.range_sum_with_stats(&q).unwrap();
        // Passive dim 1 has r = 3; chosen dims contribute 2 each.
        assert_eq!(stats.p_cells, (3 * 2 * 2) as u64);
    }

    #[test]
    fn all_dims_equals_basic_algorithm() {
        let a = cube();
        let pp = PartialPrefixCube::build(&a, &[0, 1, 2]).unwrap();
        let basic = crate::PrefixSumCube::build(&a);
        let q = Region::from_bounds(&[(1, 4), (0, 3), (2, 3)]).unwrap();
        let (v1, s1) = pp.range_sum_with_stats(&q).unwrap();
        let (v2, s2) = basic.range_sum_with_stats(&q).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(s1.p_cells, s2.p_cells);
    }

    #[test]
    fn no_dims_is_a_scan() {
        let a = cube();
        let pp = PartialPrefixCube::build(&a, &[]).unwrap();
        let q = Region::from_bounds(&[(1, 2), (1, 2), (1, 2)]).unwrap();
        let (v, stats) = pp.range_sum_with_stats(&q).unwrap();
        assert_eq!(v, naive(&a, &q));
        assert_eq!(stats.p_cells, q.volume() as u64);
    }

    #[test]
    fn batch_update_equals_rebuild_for_every_subset() {
        let a = cube();
        let updates = [
            CellUpdate::new(&[0, 0, 0], 5),
            CellUpdate::new(&[5, 4, 3], -2),
            CellUpdate::new(&[2, 2, 1], 9),
            CellUpdate::new(&[2, 0, 1], 4),
        ];
        for mask in 0u32..8 {
            let dims: Vec<usize> = (0..3).filter(|&j| (mask >> j) & 1 == 1).collect();
            let mut pp = PartialPrefixCube::build(&a, &dims).unwrap();
            pp.apply_batch(&updates).unwrap();
            let mut a2 = a.clone();
            for u in &updates {
                *a2.get_mut(&u.index) += u.delta;
            }
            let rebuilt = PartialPrefixCube::build(&a2, &dims).unwrap();
            let q = a2.shape().full_region();
            assert_eq!(
                pp.range_sum(&q).unwrap(),
                rebuilt.range_sum(&q).unwrap(),
                "X'={dims:?}"
            );
            // Spot-check sub-queries too.
            let q = Region::from_bounds(&[(1, 4), (0, 3), (1, 2)]).unwrap();
            assert_eq!(pp.range_sum(&q).unwrap(), rebuilt.range_sum(&q).unwrap());
        }
    }

    #[test]
    fn rejects_bad_dims() {
        let a = cube();
        assert!(PartialPrefixCube::build(&a, &[3]).is_err());
        assert!(PartialPrefixCube::build(&a, &[1, 1]).is_err());
    }

    #[test]
    fn unsorted_dims_accepted() {
        let a = cube();
        let pp = PartialPrefixCube::build(&a, &[2, 0]).unwrap();
        assert_eq!(pp.chosen_dims(), &[0, 2]);
        let q = Region::from_bounds(&[(0, 5), (1, 3), (0, 3)]).unwrap();
        assert_eq!(pp.range_sum(&q).unwrap(), naive(&a, &q));
    }
}
