//! Property-based tests for the prefix-sum algorithms: Theorem 1 and the
//! blocked algorithm agree with a naive scan on arbitrary cubes, and the
//! Theorem-2 batch update is equivalent to rebuilding from scratch.

use olap_array::{DenseArray, Region, Shape};
use olap_prefix_sum::batch::{self, CellUpdate};
use olap_prefix_sum::{BlockedPrefixCube, BoundaryPolicy, PrefixSumCube};
use proptest::prelude::*;

/// A random cube of 1–4 dimensions with small extents, plus its contents.
fn arb_cube() -> impl Strategy<Value = DenseArray<i64>> {
    prop::collection::vec(2usize..7, 1..=4).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-100i64..100, len)
            .prop_map(move |data| DenseArray::from_vec(Shape::new(&dims).unwrap(), data).unwrap())
    })
}

/// A random region inside the cube's shape (two draws per dimension).
fn arb_region(shape: &Shape) -> impl Strategy<Value = Region> {
    let dims = shape.dims().to_vec();
    let per_dim: Vec<_> = dims
        .iter()
        .map(|&n| (0..n, 0..n).prop_map(|(a, b)| (a.min(b), a.max(b))))
        .collect();
    per_dim.prop_map(|bounds| Region::from_bounds(&bounds).unwrap())
}

fn naive(a: &DenseArray<i64>, q: &Region) -> i64 {
    a.fold_region(q, 0i64, |s, &x| s + x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn theorem1_matches_naive(
        (a, q) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q)
        })
    ) {
        let ps = PrefixSumCube::build(&a);
        prop_assert_eq!(ps.range_sum(&q).unwrap(), naive(&a, &q));
    }

    #[test]
    fn blocked_matches_naive_under_every_policy(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 1usize..6)
        })
    ) {
        let bp = BlockedPrefixCube::build(&a, b).unwrap();
        let expected = naive(&a, &q);
        for policy in [
            BoundaryPolicy::Auto,
            BoundaryPolicy::AlwaysDirect,
            BoundaryPolicy::AlwaysComplement,
        ] {
            let (v, _) = bp.range_sum_with_policy(&a, &q, policy).unwrap();
            prop_assert_eq!(v, expected, "b={} policy={:?}", b, policy);
        }
    }

    #[test]
    fn decomposition_partitions_the_query(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 1usize..6)
        })
    ) {
        let bp = BlockedPrefixCube::build(&a, b).unwrap();
        let parts = bp.decompose(&q).unwrap();
        // Disjoint…
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                prop_assert!(!parts[i].region.overlaps(&parts[j].region));
            }
        }
        // …and covering: volumes add to the query volume, every part inside.
        let vol: usize = parts.iter().map(|p| p.region.volume()).sum();
        prop_assert_eq!(vol, q.volume());
        for p in &parts {
            prop_assert!(q.contains_region(&p.region));
            prop_assert!(p.superblock.contains_region(&p.region));
        }
        let d = q.ndim();
        prop_assert!(parts.len() <= 3usize.pow(d as u32));
    }

    #[test]
    fn cell_reconstruction_is_exact(a in arb_cube()) {
        let ps = PrefixSumCube::build(&a);
        // §3.4: A can be discarded. Check a sample of cells.
        for (i, idx) in a.shape().full_region().iter_indices().enumerate() {
            if i % 7 == 0 {
                prop_assert_eq!(ps.cell(&idx).unwrap(), *a.get(&idx));
            }
        }
    }

    #[test]
    fn batch_update_equals_rebuild(
        (a, raw_updates) in arb_cube().prop_flat_map(|a| {
            let dims = a.shape().dims().to_vec();
            let upd = prop::collection::vec(
                (
                    dims.iter()
                        .map(|&n| 0..n)
                        .collect::<Vec<_>>(),
                    -50i64..50,
                ),
                0..8,
            );
            (Just(a), upd)
        })
    ) {
        let updates: Vec<CellUpdate<i64>> = raw_updates
            .iter()
            .map(|(idx, v)| CellUpdate::new(idx, *v))
            .collect();
        let mut ps = PrefixSumCube::build(&a);
        let regions = batch::apply_batch(&mut ps, &updates).unwrap();
        // Theorem 2 bound (duplicates only reduce the count).
        prop_assert!(
            regions as f64 <= batch::max_regions(updates.len(), a.shape().ndim()),
            "{} regions for k={} d={}", regions, updates.len(), a.shape().ndim()
        );
        let mut a2 = a.clone();
        for u in &updates {
            *a2.get_mut(&u.index) += u.delta;
        }
        let rebuilt = PrefixSumCube::build(&a2);
        prop_assert_eq!(ps.prefix_array().as_slice(), rebuilt.prefix_array().as_slice());
    }

    #[test]
    fn blocked_batch_update_equals_rebuild(
        (a, raw_updates, b) in arb_cube().prop_flat_map(|a| {
            let dims = a.shape().dims().to_vec();
            let upd = prop::collection::vec(
                (
                    dims.iter()
                        .map(|&n| 0..n)
                        .collect::<Vec<_>>(),
                    -50i64..50,
                ),
                0..8,
            );
            (Just(a), upd, 1usize..5)
        })
    ) {
        let updates: Vec<CellUpdate<i64>> = raw_updates
            .iter()
            .map(|(idx, v)| CellUpdate::new(idx, *v))
            .collect();
        let mut bp = BlockedPrefixCube::build(&a, b).unwrap();
        batch::apply_batch_blocked(&mut bp, &updates).unwrap();
        let mut a2 = a.clone();
        for u in &updates {
            *a2.get_mut(&u.index) += u.delta;
        }
        let rebuilt = BlockedPrefixCube::build(&a2, b).unwrap();
        prop_assert_eq!(bp.packed_array().as_slice(), rebuilt.packed_array().as_slice());
        // And queries against the updated cube are consistent.
        let q = a2.shape().full_region();
        prop_assert_eq!(bp.range_sum(&a2, &q).unwrap(), naive(&a2, &q));
    }

    #[test]
    fn update_plans_are_disjoint_and_complete(
        (dims, raw_updates) in prop::collection::vec(2usize..6, 1..=3).prop_flat_map(|dims| {
            let upd = prop::collection::vec(
                (
                    dims.iter().map(|&n| 0..n).collect::<Vec<_>>(),
                    -50i64..50,
                ),
                1..6,
            );
            (Just(dims), upd)
        })
    ) {
        let shape = Shape::new(&dims).unwrap();
        let op = olap_aggregate::SumOp::<i64>::new();
        let updates: Vec<CellUpdate<i64>> = raw_updates
            .iter()
            .map(|(idx, v)| CellUpdate::new(idx, *v))
            .collect();
        let plan = batch::plan_regions(&shape, &op, &updates).unwrap();
        // Disjoint regions…
        for i in 0..plan.len() {
            for j in (i + 1)..plan.len() {
                prop_assert!(!plan[i].0.overlaps(&plan[j].0));
            }
        }
        // …whose combined deltas equal, at each P element, the sum of the
        // deltas of the updates dominating it (Property 1 of §5.1).
        for y in shape.full_region().iter_indices() {
            let expected: i64 = updates
                .iter()
                .filter(|u| u.index.iter().zip(&y).all(|(&x, &yy)| x <= yy))
                .map(|u| u.delta)
                .sum();
            let got: i64 = plan
                .iter()
                .filter(|(r, _)| r.contains(&y))
                .map(|(_, v)| *v)
                .sum();
            prop_assert_eq!(got, expected);
        }
    }
}
