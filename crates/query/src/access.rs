use std::ops::{Add, AddAssign};

/// Counts of the cells and nodes an algorithm touched while answering a
/// query — the paper's cost proxy ("we use the number of elements required
/// to answer the query as a proxy for response time", §8).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Cells of the original cube `A` read.
    pub a_cells: u64,
    /// Cells of precomputed structures (`P`, blocked `P`) read.
    pub p_cells: u64,
    /// Tree nodes visited (range-max and tree-sum structures).
    pub tree_nodes: u64,
    /// Binary combine/compare steps performed.
    pub combine_steps: u64,
}

impl AccessStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Total elements accessed — the §8 cost metric (`A` cells +
    /// precomputed cells + tree nodes).
    pub fn total_accesses(&self) -> u64 {
        self.a_cells + self.p_cells + self.tree_nodes
    }

    /// Records reads of `n` cells of `A`.
    pub fn read_a(&mut self, n: u64) {
        self.a_cells += n;
    }

    /// Records reads of `n` precomputed cells.
    pub fn read_p(&mut self, n: u64) {
        self.p_cells += n;
    }

    /// Records visits to `n` tree nodes.
    pub fn visit_nodes(&mut self, n: u64) {
        self.tree_nodes += n;
    }

    /// Records `n` combine/compare steps.
    pub fn step(&mut self, n: u64) {
        self.combine_steps += n;
    }
}

impl Add for AccessStats {
    type Output = AccessStats;

    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            a_cells: self.a_cells + rhs.a_cells,
            p_cells: self.p_cells + rhs.p_cells,
            tree_nodes: self.tree_nodes + rhs.tree_nodes,
            combine_steps: self.combine_steps + rhs.combine_steps,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let mut s = AccessStats::new();
        s.read_a(3);
        s.read_p(4);
        s.visit_nodes(5);
        s.step(100);
        assert_eq!(s.total_accesses(), 12);
        assert_eq!(s.combine_steps, 100);
    }

    #[test]
    fn add_combines_counters() {
        let a = AccessStats {
            a_cells: 1,
            p_cells: 2,
            tree_nodes: 3,
            combine_steps: 4,
        };
        let mut b = AccessStats {
            a_cells: 10,
            p_cells: 20,
            tree_nodes: 30,
            combine_steps: 40,
        };
        b += a;
        assert_eq!(
            b,
            AccessStats {
                a_cells: 11,
                p_cells: 22,
                tree_nodes: 33,
                combine_steps: 44
            }
        );
    }
}
