use std::ops::{Add, AddAssign};

/// Counts of the cells and nodes an algorithm touched while answering a
/// query — the paper's cost proxy ("we use the number of elements required
/// to answer the query as a proxy for response time", §8).
///
/// Counters saturate at `u64::MAX` instead of wrapping, so long-running
/// accumulations degrade to a pinned ceiling rather than a nonsense value.
/// Per-chunk counters produced by parallel execution reduce with
/// [`AccessStats::merge`]; merging is commutative and associative, so the
/// totals are independent of how work was chunked.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Cells of the original cube `A` read.
    pub a_cells: u64,
    /// Cells of precomputed structures (`P`, blocked `P`) read.
    pub p_cells: u64,
    /// Tree nodes visited (range-max and tree-sum structures).
    pub tree_nodes: u64,
    /// Binary combine/compare steps performed.
    pub combine_steps: u64,
}

impl AccessStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Total elements accessed — the §8 cost metric (`A` cells +
    /// precomputed cells + tree nodes).
    pub fn total_accesses(&self) -> u64 {
        self.a_cells
            .saturating_add(self.p_cells)
            .saturating_add(self.tree_nodes)
    }

    /// Records reads of `n` cells of `A`.
    pub fn read_a(&mut self, n: u64) {
        self.a_cells = self.a_cells.saturating_add(n);
    }

    /// Records reads of `n` precomputed cells.
    pub fn read_p(&mut self, n: u64) {
        self.p_cells = self.p_cells.saturating_add(n);
    }

    /// Records visits to `n` tree nodes.
    pub fn visit_nodes(&mut self, n: u64) {
        self.tree_nodes = self.tree_nodes.saturating_add(n);
    }

    /// Records `n` combine/compare steps.
    pub fn step(&mut self, n: u64) {
        self.combine_steps = self.combine_steps.saturating_add(n);
    }

    /// Folds another counter into this one (saturating per field).
    ///
    /// This is the reduction used to combine per-chunk counters after a
    /// parallel fan-out: start from `AccessStats::default()` and merge each
    /// chunk's stats in chunk order. Because merge is commutative and
    /// associative, the result equals the single-counter sequential run no
    /// matter how the work was chunked.
    pub fn merge(&mut self, other: &AccessStats) {
        self.a_cells = self.a_cells.saturating_add(other.a_cells);
        self.p_cells = self.p_cells.saturating_add(other.p_cells);
        self.tree_nodes = self.tree_nodes.saturating_add(other.tree_nodes);
        self.combine_steps = self.combine_steps.saturating_add(other.combine_steps);
    }
}

impl Add for AccessStats {
    type Output = AccessStats;

    fn add(self, rhs: AccessStats) -> AccessStats {
        let mut out = self;
        out.merge(&rhs);
        out
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let mut s = AccessStats::new();
        s.read_a(3);
        s.read_p(4);
        s.visit_nodes(5);
        s.step(100);
        assert_eq!(s.total_accesses(), 12);
        assert_eq!(s.combine_steps, 100);
    }

    #[test]
    fn merge_sums_all_fields() {
        let mut a = AccessStats {
            a_cells: 1,
            p_cells: 2,
            tree_nodes: 3,
            combine_steps: 4,
        };
        let b = AccessStats {
            a_cells: 100,
            p_cells: 200,
            tree_nodes: 300,
            combine_steps: 400,
        };
        a.merge(&b);
        assert_eq!(
            a,
            AccessStats {
                a_cells: 101,
                p_cells: 202,
                tree_nodes: 303,
                combine_steps: 404
            }
        );
        // Merging a default is a no-op: default is the merge identity.
        let before = a;
        a.merge(&AccessStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let parts = [
            AccessStats {
                a_cells: 5,
                p_cells: 1,
                tree_nodes: 0,
                combine_steps: 9,
            },
            AccessStats {
                a_cells: 0,
                p_cells: 7,
                tree_nodes: 2,
                combine_steps: 1,
            },
            AccessStats {
                a_cells: 3,
                p_cells: 0,
                tree_nodes: 8,
                combine_steps: 0,
            },
        ];
        let mut forward = AccessStats::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = AccessStats::default();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = AccessStats::new();
        s.read_a(u64::MAX - 1);
        s.read_a(5);
        assert_eq!(s.a_cells, u64::MAX);
        s.read_p(u64::MAX);
        s.step(u64::MAX);
        s.visit_nodes(1);
        s.visit_nodes(u64::MAX);
        assert_eq!(s.p_cells, u64::MAX);
        assert_eq!(s.tree_nodes, u64::MAX);
        assert_eq!(s.combine_steps, u64::MAX);
        // total_accesses and merge saturate too.
        assert_eq!(s.total_accesses(), u64::MAX);
        let mut t = s;
        t.merge(&s);
        assert_eq!(t.a_cells, u64::MAX);
    }

    #[test]
    fn add_combines_counters() {
        let a = AccessStats {
            a_cells: 1,
            p_cells: 2,
            tree_nodes: 3,
            combine_steps: 4,
        };
        let mut b = AccessStats {
            a_cells: 10,
            p_cells: 20,
            tree_nodes: 30,
            combine_steps: 40,
        };
        b += a;
        assert_eq!(
            b,
            AccessStats {
                a_cells: 11,
                p_cells: 22,
                tree_nodes: 33,
                combine_steps: 44
            }
        );
    }
}
