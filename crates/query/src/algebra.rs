//! Region algebra: the containment/overlap/difference vocabulary a
//! subsumption-aware cache needs.
//!
//! The paper's §3 corner identity makes range sums **±-combinable**: any
//! range sum can be assembled from signed combinations of other range
//! sums. Vassiliadis' cube algebra with comparative operations formalizes
//! the tests a semantic cache runs between an incoming query and its
//! stored results — *does a cached region contain this one? overlap it?
//! what is left over?* — and this module is that algebra over
//! [`Region`]: predicates ([`contains`], [`overlaps`], [`intersect`]),
//! the [`difference`] decomposition `A \ B` into at most `2d` disjoint
//! boxes, and [`subsume`], which turns a containing cached region into a
//! [`SubsumptionPlan`] — the signed term list
//! `sum(target) = +sum(cached) − Σ sum(residual_i)`.
//!
//! Everything here is pure geometry on inclusive integer boxes; the
//! engine layer's `SemanticCache` evaluates the plans.

use olap_array::Region;
use std::fmt;

/// Whether `outer` contains `inner` entirely (componentwise `⊇`).
///
/// Regions of different dimensionality never contain one another.
pub fn contains(outer: &Region, inner: &Region) -> bool {
    outer.contains_region(inner)
}

/// Whether the two regions share at least one point.
pub fn overlaps(a: &Region, b: &Region) -> bool {
    a.overlaps(b)
}

/// The common box of two regions, or `None` when they are disjoint (or
/// of different dimensionality).
pub fn intersect(a: &Region, b: &Region) -> Option<Region> {
    a.intersect(b)
}

/// The set difference `a \ b`, decomposed into **at most `2d` pairwise
/// disjoint** boxes by axis-ordered slab peeling.
///
/// Properties (property-tested against a point-membership oracle in
/// `tests/algebra.rs`):
///
/// - every returned box is contained in `a` and disjoint from `b`,
/// - the boxes are pairwise disjoint,
/// - their union is exactly the set of points in `a` but not in `b`,
/// - at most two boxes are produced per axis.
///
/// When `a` and `b` are disjoint the result is `[a]`; when `b ⊇ a` it is
/// empty.
pub fn difference(a: &Region, b: &Region) -> Vec<Region> {
    let parts = a.subtract(b);
    debug_assert!(parts.len() <= 2 * a.ndim(), "difference exceeded 2d boxes");
    parts
}

/// The smallest box containing every input region, or `None` for an
/// empty (or dimensionally inconsistent) input.
///
/// This is the super-region a multi-query batch planner executes once so
/// that each member can be assembled from it by ±-combination.
pub fn bounding_union(regions: &[Region]) -> Option<Region> {
    let (first, rest) = regions.split_first()?;
    let mut out = first.clone();
    for r in rest {
        if r.ndim() != out.ndim() {
            return None;
        }
        out = out.bounding_union(r);
    }
    Some(out)
}

/// The sign of one term in a ±-combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The term's sum is added.
    Plus,
    /// The term's sum is subtracted.
    Minus,
}

impl Sign {
    /// `+1` / `−1`, for folding terms numerically.
    pub fn factor(self) -> i64 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Plus => "+",
            Sign::Minus => "−",
        })
    }
}

/// One signed term of a ±-combination: a region whose sum enters the
/// assembled answer with the given sign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedRegion {
    /// Whether the term's sum is added or subtracted.
    pub sign: Sign,
    /// The region to sum over.
    pub region: Region,
}

impl fmt::Display for SignedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sign, self.region)
    }
}

/// How to assemble `sum(target)` from a cached containing region:
/// `sum(target) = +sum(cached) − Σ_i sum(residual_i)`.
///
/// Built by [`subsume`]; the residual boxes are the [`difference`]
/// `cached \ target` — pairwise disjoint, at most `2d` of them — so
/// every cell of `cached` is counted exactly once on the right-hand
/// side and the identity is exact for any additive aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsumptionPlan {
    cached: Region,
    residual: Vec<Region>,
}

impl SubsumptionPlan {
    /// The cached containing region (its sum enters with `+`).
    pub fn cached(&self) -> &Region {
        &self.cached
    }

    /// The residual boxes `cached \ target` (their sums enter with `−`).
    pub fn residual(&self) -> &[Region] {
        &self.residual
    }

    /// Total points in the residual boxes — the work the assembly still
    /// has to pay an engine for. A cost model compares this against the
    /// target's own volume to decide cache-assemble vs. direct execution.
    pub fn residual_volume(&self) -> usize {
        self.residual
            .iter()
            .map(Region::volume)
            .fold(0usize, usize::saturating_add)
    }

    /// Whether the cached region *is* the target (no residual work).
    pub fn is_exact(&self) -> bool {
        self.residual.is_empty()
    }

    /// The plan as an explicit signed term list, cached term first.
    pub fn terms(&self) -> Vec<SignedRegion> {
        let mut out = Vec::with_capacity(1 + self.residual.len());
        out.push(SignedRegion {
            sign: Sign::Plus,
            region: self.cached.clone(),
        });
        for r in &self.residual {
            out.push(SignedRegion {
                sign: Sign::Minus,
                region: r.clone(),
            });
        }
        out
    }
}

impl fmt::Display for SubsumptionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}", self.cached)?;
        for r in &self.residual {
            write!(f, " −{r}")?;
        }
        Ok(())
    }
}

/// Plans the ±-assembly of `target` from a cached region, or `None`
/// when `cached` does not contain `target` (overlap without containment
/// cannot be assembled from one cached sum alone — sums are invertible,
/// but the uncovered part of `target` would still need the engine, which
/// is exactly the direct-execution fallback).
pub fn subsume(target: &Region, cached: &Region) -> Option<SubsumptionPlan> {
    if !cached.contains_region(target) {
        return None;
    }
    Some(SubsumptionPlan {
        cached: cached.clone(),
        residual: difference(cached, target),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(bounds: &[(usize, usize)]) -> Region {
        Region::from_bounds(bounds).unwrap()
    }

    #[test]
    fn predicates_delegate_componentwise() {
        let outer = region(&[(0, 9), (0, 9)]);
        let inner = region(&[(2, 5), (3, 7)]);
        let apart = region(&[(20, 25), (3, 7)]);
        assert!(contains(&outer, &inner));
        assert!(!contains(&inner, &outer));
        assert!(overlaps(&outer, &inner));
        assert!(!overlaps(&inner, &apart));
        assert_eq!(intersect(&outer, &inner), Some(inner.clone()));
        assert_eq!(intersect(&inner, &apart), None);
    }

    #[test]
    fn difference_bounds_and_volume() {
        let a = region(&[(0, 9), (0, 9)]);
        let b = region(&[(3, 6), (2, 8)]);
        let parts = difference(&a, &b);
        assert!(parts.len() <= 4);
        let vol: usize = parts.iter().map(Region::volume).sum();
        assert_eq!(vol, a.volume() - b.volume());
    }

    #[test]
    fn bounding_union_covers_all_inputs() {
        let rs = [
            region(&[(2, 4), (1, 3)]),
            region(&[(0, 1), (2, 9)]),
            region(&[(5, 8), (0, 0)]),
        ];
        let u = bounding_union(&rs).unwrap();
        assert_eq!(u, region(&[(0, 8), (0, 9)]));
        for r in &rs {
            assert!(contains(&u, r));
        }
        assert_eq!(bounding_union(&[]), None);
        // Dimension mismatch is not a union.
        let mixed = [region(&[(0, 1)]), region(&[(0, 1), (0, 1)])];
        assert_eq!(bounding_union(&mixed), None);
    }

    #[test]
    fn subsume_requires_containment() {
        let target = region(&[(2, 5), (3, 7)]);
        let cached = region(&[(0, 9), (0, 9)]);
        let plan = subsume(&target, &cached).unwrap();
        assert_eq!(plan.cached(), &cached);
        assert!(!plan.is_exact());
        assert_eq!(plan.residual_volume(), cached.volume() - target.volume());
        assert!(subsume(&cached, &target).is_none());
        let overlap_only = region(&[(4, 12), (3, 7)]);
        assert!(subsume(&target, &overlap_only).is_none());
    }

    #[test]
    fn exact_subsumption_has_no_residual() {
        let r = region(&[(1, 4), (2, 6)]);
        let plan = subsume(&r, &r).unwrap();
        assert!(plan.is_exact());
        assert_eq!(plan.residual_volume(), 0);
        assert_eq!(plan.terms().len(), 1);
    }

    #[test]
    fn terms_carry_signs_and_evaluate_exactly() {
        // Evaluate the plan against the volume "aggregate" (sum of 1 per
        // cell): +V(cached) − Σ V(residual) must equal V(target).
        let target = region(&[(3, 6), (1, 2)]);
        let cached = region(&[(0, 9), (0, 4)]);
        let plan = subsume(&target, &cached).unwrap();
        let assembled: i64 = plan
            .terms()
            .iter()
            .map(|t| t.sign.factor() * t.region.volume() as i64)
            .sum();
        assert_eq!(assembled, target.volume() as i64);
        assert_eq!(plan.terms()[0].sign, Sign::Plus);
        assert!(plan.terms()[1..].iter().all(|t| t.sign == Sign::Minus));
    }

    #[test]
    fn display_is_readable() {
        let plan = subsume(&region(&[(2, 3)]), &region(&[(0, 9)])).unwrap();
        let text = plan.to_string();
        assert!(text.starts_with("+Region(0:9)"), "{text}");
        assert!(text.contains('−'), "{text}");
        assert_eq!(
            SignedRegion {
                sign: Sign::Minus,
                region: region(&[(4, 9)])
            }
            .to_string(),
            "−Region(4:9)"
        );
        assert_eq!(Sign::Plus.factor(), 1);
        assert_eq!(Sign::Minus.factor(), -1);
    }
}
