use std::fmt;

/// Identifies a **cuboid**: a group-by on a subset of the cube's
/// dimensions (§9). Encoded as a bitmask, so cubes of up to 64 dimensions
/// are supported (the paper notes real cubes have 5–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CuboidId(u64);

impl CuboidId {
    /// The empty cuboid (every dimension `all`) — the grand total.
    pub fn empty() -> Self {
        CuboidId(0)
    }

    /// The cuboid containing every one of `d` dimensions — the cube itself.
    pub fn full(d: usize) -> Self {
        // analyzer: allow(panic-site, reason = "documented constructor precondition: CuboidId packs dimensions into a u64 bitmask")
        assert!(d <= 64, "at most 64 dimensions supported");
        if d == 64 {
            CuboidId(u64::MAX)
        } else {
            CuboidId((1u64 << d) - 1)
        }
    }

    /// Builds from an explicit dimension list.
    pub fn from_dims(dims: &[usize]) -> Self {
        let mut id = CuboidId::empty();
        for &d in dims {
            id = id.with_dim(d);
        }
        id
    }

    /// Builds from a raw bitmask.
    pub fn from_mask(mask: u64) -> Self {
        CuboidId(mask)
    }

    /// The raw bitmask.
    pub fn mask(&self) -> u64 {
        self.0
    }

    /// Adds a dimension.
    pub fn with_dim(self, dim: usize) -> Self {
        // analyzer: allow(panic-site, reason = "documented constructor precondition: CuboidId packs dimensions into a u64 bitmask")
        assert!(dim < 64, "at most 64 dimensions supported");
        CuboidId(self.0 | (1u64 << dim))
    }

    /// Removes a dimension.
    pub fn without_dim(self, dim: usize) -> Self {
        assert!(dim < 64);
        CuboidId(self.0 & !(1u64 << dim))
    }

    /// Whether the cuboid contains a dimension.
    pub fn contains_dim(&self, dim: usize) -> bool {
        dim < 64 && (self.0 >> dim) & 1 == 1
    }

    /// Number of dimensions in the cuboid.
    pub fn ndim(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// The contained dimensions in ascending order.
    pub fn dims(&self) -> Vec<usize> {
        (0..64).filter(|&d| self.contains_dim(d)).collect()
    }

    /// Whether `self` is a **descendant** of `other` (its dimensions are a
    /// subset of `other`'s). §9: "if one cuboid has a subset of the
    /// dimensions of another cuboid, we call the former a descendant of the
    /// latter". A cuboid is its own descendant and ancestor.
    pub fn is_descendant_of(&self, other: &CuboidId) -> bool {
        self.0 & other.0 == self.0
    }

    /// Whether `self` is an **ancestor** of `other` (superset of dims).
    pub fn is_ancestor_of(&self, other: &CuboidId) -> bool {
        other.is_descendant_of(self)
    }

    /// Whether the cuboids differ (strict subset check helper).
    pub fn is_proper_descendant_of(&self, other: &CuboidId) -> bool {
        self != other && self.is_descendant_of(other)
    }

    /// All cuboids over `d` dimensions (the full lattice, `2^d` entries
    /// including the empty cuboid).
    pub fn lattice(d: usize) -> impl Iterator<Item = CuboidId> {
        // analyzer: allow(panic-site, reason = "documented precondition: the lattice has 2^d entries and d >= 64 cannot be enumerated")
        assert!(d < 64, "lattice enumeration limited to < 64 dimensions");
        (0..(1u64 << d)).map(CuboidId)
    }
}

impl fmt::Display for CuboidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{}", d + 1)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let c = CuboidId::from_dims(&[0, 2]);
        assert!(c.contains_dim(0));
        assert!(!c.contains_dim(1));
        assert!(c.contains_dim(2));
        assert_eq!(c.ndim(), 2);
        assert_eq!(c.dims(), vec![0, 2]);
    }

    #[test]
    fn ancestor_descendant_matches_paper() {
        // "⟨d1, d3⟩ is a descendant of ⟨d1, d2, d3⟩ and an ancestor of ⟨d3⟩."
        let d1d3 = CuboidId::from_dims(&[0, 2]);
        let full = CuboidId::from_dims(&[0, 1, 2]);
        let d3 = CuboidId::from_dims(&[2]);
        assert!(d1d3.is_descendant_of(&full));
        assert!(d1d3.is_ancestor_of(&d3));
        assert!(!d3.is_ancestor_of(&d1d3));
        assert!(d1d3.is_proper_descendant_of(&full));
        assert!(!full.is_proper_descendant_of(&full));
    }

    #[test]
    fn lattice_size() {
        // "There are seven possible cuboids (including the cube itself)"
        // for d = 3, plus the empty cuboid we also enumerate.
        let all: Vec<_> = CuboidId::lattice(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all.iter().filter(|c| c.ndim() > 0).count(), 7);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(CuboidId::full(3).dims(), vec![0, 1, 2]);
        assert_eq!(CuboidId::empty().ndim(), 0);
        assert_eq!(CuboidId::full(64).ndim(), 64);
    }

    #[test]
    fn with_without_roundtrip() {
        let c = CuboidId::empty().with_dim(5).with_dim(9);
        assert_eq!(c.without_dim(5), CuboidId::from_dims(&[9]));
    }

    #[test]
    fn display_uses_one_based_names() {
        assert_eq!(CuboidId::from_dims(&[0, 1]).to_string(), "⟨d1, d2⟩");
    }
}
