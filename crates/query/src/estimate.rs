//! Bounded-error approximate answers, statically distinct from exact
//! [`crate::QueryOutcome`]s.
//!
//! An [`Estimate`] is what a degraded serving tier returns when a query's
//! budget is exhausted or no healthy exact engine remains: a point value
//! plus a **guaranteed interval** `[lower, upper]` containing the true
//! answer, derived from precomputed aggregates alone (block anchor sums
//! and cached per-block extrema — see `olap_engine`'s `ApproxEngine`).
//! Because the type is distinct from `QueryOutcome`, an estimate can
//! never be mistaken for (or cached as) an exact answer anywhere in the
//! serving stack — the compiler enforces the degradation boundary.

use std::fmt;
use std::ops::Sub;

/// A bounded-error approximate answer: a point estimate together with a
/// guaranteed enclosing interval and the fraction of the query volume
/// that was answered exactly.
///
/// Invariant (maintained by [`Estimate::new`]): `lower ≤ value ≤ upper`,
/// and the true answer lies in `[lower, upper]`. `error_bound` is the
/// worst-case absolute error, `max(value − lower, upper − value)`; it is
/// zero exactly when the interval is a point, i.e. the answer is in fact
/// exact (every contributing part was anchor-aligned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate<V> {
    /// The point estimate, always inside `[lower, upper]`.
    pub value: V,
    /// Worst-case absolute error: `max(value − lower, upper − value)`.
    pub error_bound: V,
    /// Guaranteed lower bound on the true answer.
    pub lower: V,
    /// Guaranteed upper bound on the true answer.
    pub upper: V,
    /// Fraction of the query volume answered exactly (from aligned
    /// anchors), in `[0, 1]`. `1.0` means the estimate is exact.
    pub fraction_exact: f64,
}

impl<V: Copy + Ord + Sub<Output = V>> Estimate<V> {
    /// Builds an estimate, clamping `value` into `[lower, upper]` and
    /// computing the worst-case `error_bound`. `fraction_exact` is
    /// clamped into `[0, 1]`.
    pub fn new(value: V, lower: V, upper: V, fraction_exact: f64) -> Self {
        let (lower, upper) = (lower.min(upper), lower.max(upper));
        let value = value.clamp(lower, upper);
        let error_bound = (value - lower).max(upper - value);
        Estimate {
            value,
            error_bound,
            lower,
            upper,
            fraction_exact: fraction_exact.clamp(0.0, 1.0),
        }
    }

    /// An exact answer wearing the estimate type: a point interval with
    /// zero error bound and `fraction_exact == 1`.
    pub fn exact(value: V) -> Self {
        Estimate::new(value, value, value, 1.0)
    }

    /// Whether the guaranteed interval contains `truth`.
    pub fn contains(&self, truth: V) -> bool {
        self.lower <= truth && truth <= self.upper
    }

    /// Whether the interval is a single point (the answer is exact).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

impl Estimate<i64> {
    /// The interval half-width relative to the point value,
    /// `error_bound / max(1, |value|)` — the quantity the
    /// `olap_approx_relative_bound` histogram observes (in per-mille).
    pub fn relative_bound(&self) -> f64 {
        self.error_bound as f64 / (self.value.abs().max(1)) as f64
    }
}

impl<V: fmt::Display> fmt::Display for Estimate<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "≈{} ∈ [{}, {}] (±{}, {:.1}% exact)",
            self.value,
            self.lower,
            self.upper,
            self.error_bound,
            self.fraction_exact * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_and_bounds() {
        let e = Estimate::new(10i64, 4, 20, 0.5);
        assert_eq!(e.error_bound, 10, "max distance to either end");
        assert!(e.contains(4) && e.contains(20) && e.contains(10));
        assert!(!e.contains(3) && !e.contains(21));
        assert!(!e.is_exact());
        // Value outside the interval is clamped in; swapped bounds are
        // reordered; fraction is clamped.
        let e = Estimate::new(100i64, 20, 4, 7.0);
        assert_eq!((e.lower, e.upper, e.value), (4, 20, 20));
        assert_eq!(e.fraction_exact, 1.0);
    }

    #[test]
    fn exact_is_a_point_interval() {
        let e = Estimate::exact(-3i64);
        assert!(e.is_exact());
        assert_eq!(e.error_bound, 0);
        assert_eq!(e.fraction_exact, 1.0);
        assert!(e.contains(-3) && !e.contains(-2));
        assert_eq!(e.relative_bound(), 0.0);
    }

    #[test]
    fn displays_interval_and_exact_fraction() {
        let e = Estimate::new(10i64, 4, 20, 0.25);
        let s = e.to_string();
        assert!(s.contains("[4, 20]") && s.contains("25.0% exact"), "{s}");
    }
}
