//! Range-query model, query statistics, and query logs.
//!
//! §2 of the paper defines a range query by an inclusive range `ℓ_j:h_j`
//! per dimension; §9 additionally distinguishes, per attribute, between
//! *active* selections (a genuine range), singletons, and `all`, because
//! the physical-design algorithms assign each query to the **cuboid** of
//! its non-`all` dimensions and consume per-cuboid aggregate statistics
//! (Table 1: volume `V`, side lengths `x_i`, surface area
//! `S = Σ_i 2V/x_i`).
//!
//! This crate provides:
//!
//! - [`DimSelection`] / [`RangeQuery`]: the user-facing query model,
//! - [`algebra`]: the region algebra (containment, overlap, intersection,
//!   the ≤2d-box difference decomposition, and [`SubsumptionPlan`]) that a
//!   subsumption-aware semantic cache plans ±-combinations with,
//! - [`Answer`] / [`QueryOutcome`] / [`EngineKind`]: the unified answer
//!   vocabulary every engine returns (value + access stats + which
//!   structure answered),
//! - [`Estimate`]: the bounded-error approximate answer a degraded
//!   serving tier returns — statically distinct from exact outcomes,
//!   carrying a guaranteed interval around the true value,
//! - [`CuboidId`]: a bitmask identifying a cuboid (a subset of dimensions),
//! - [`QueryStats`] and [`CuboidStats`]: Table-1 statistics for a single
//!   query and averaged over a log,
//! - [`QueryLog`]: a collection of queries with per-cuboid grouping, the
//!   input to the §9 planner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod algebra;
mod cuboid;
mod estimate;
mod log;
mod outcome;
mod query;
mod schema;
mod stats;

pub use access::AccessStats;
pub use algebra::{Sign, SignedRegion, SubsumptionPlan};
pub use cuboid::CuboidId;
pub use estimate::Estimate;
pub use log::{CuboidStats, QueryLog};
pub use outcome::{Answer, EngineKind, QueryOutcome};
pub use query::{DimSelection, RangeQuery};
pub use schema::{AttrDomain, Attribute, CubeSchema, QueryBuilder, SchemaError};
pub use stats::QueryStats;
