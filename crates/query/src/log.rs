use crate::{CuboidId, QueryStats, RangeQuery};
use olap_array::Shape;
use std::collections::BTreeMap;

/// Aggregate statistics for the queries assigned to one cuboid — what §9
/// assumes is "given either a query log, or statistics which capture the
/// average query statistics for each cuboid as well as the number of
/// queries (N_Q)".
#[derive(Debug, Clone, PartialEq)]
pub struct CuboidStats {
    /// The cuboid these statistics describe.
    pub cuboid: CuboidId,
    /// Number of queries assigned to the cuboid, `N_Q`.
    pub num_queries: usize,
    /// Average Table-1 statistics across those queries, with side lengths
    /// ordered by the cuboid's dimensions.
    pub avg: QueryStats,
}

/// A collection of range queries against one cube shape — the OLAP log the
/// §9 planner consumes.
#[derive(Debug, Clone)]
pub struct QueryLog {
    shape: Shape,
    queries: Vec<RangeQuery>,
}

impl QueryLog {
    /// An empty log for a cube shape.
    pub fn new(shape: Shape) -> Self {
        QueryLog {
            shape,
            queries: Vec::new(),
        }
    }

    /// Builds a log from existing queries.
    pub fn from_queries(shape: Shape, queries: Vec<RangeQuery>) -> Self {
        QueryLog { shape, queries }
    }

    /// The cube shape the log targets.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Appends a query.
    pub fn push(&mut self, q: RangeQuery) {
        self.queries.push(q);
    }

    /// The recorded queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Number of recorded queries, `m`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Groups queries by the cuboid they are assigned to (§9) and averages
    /// their Table-1 statistics.
    ///
    /// The side lengths of each average are reported **per cuboid
    /// dimension**, in ascending dimension order; `all` dimensions do not
    /// contribute (the query runs on the cuboid slice, where they have been
    /// aggregated away).
    pub fn cuboid_stats(&self) -> BTreeMap<CuboidId, CuboidStats> {
        let mut acc: BTreeMap<CuboidId, (usize, Vec<f64>)> = BTreeMap::new();
        for q in &self.queries {
            let cuboid = q.cuboid(&self.shape);
            let dims = cuboid.dims();
            let region = q
                .to_region(&self.shape)
                .expect("log queries validated on insertion against shape");
            let sides: Vec<f64> = dims.iter().map(|&d| region.range(d).len() as f64).collect();
            let entry = acc
                .entry(cuboid)
                .or_insert_with(|| (0, vec![0.0; sides.len()]));
            entry.0 += 1;
            for (s, x) in entry.1.iter_mut().zip(sides.iter()) {
                *s += x;
            }
        }
        acc.into_iter()
            .map(|(cuboid, (n, side_sums))| {
                let sides: Vec<f64> = side_sums.iter().map(|s| s / n as f64).collect();
                let avg = if sides.is_empty() {
                    // The empty cuboid (all-`all` queries): a point query.
                    QueryStats {
                        volume: 1.0,
                        side_lengths: vec![],
                        surface: 0.0,
                    }
                } else {
                    QueryStats::from_sides(&sides)
                };
                (
                    cuboid,
                    CuboidStats {
                        cuboid,
                        num_queries: n,
                        avg,
                    },
                )
            })
            .collect()
    }

    /// The `r_ij` matrix of §9.1 (rows = queries, columns = dimensions):
    /// the range length for active attributes, `1` for passive ones.
    pub fn heuristic_lengths(&self) -> Vec<Vec<usize>> {
        self.queries
            .iter()
            .map(|q| {
                q.selections()
                    .iter()
                    .zip(self.shape.dims())
                    .map(|(s, &n)| s.heuristic_length(n))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimSelection;

    fn shape() -> Shape {
        Shape::new(&[1000, 1000, 1000]).unwrap()
    }

    fn q(sels: Vec<DimSelection>) -> RangeQuery {
        RangeQuery::new(sels).unwrap()
    }

    #[test]
    fn groups_by_cuboid() {
        let mut log = QueryLog::new(shape());
        log.push(q(vec![
            DimSelection::span(0, 99).unwrap(),
            DimSelection::span(0, 199).unwrap(),
            DimSelection::All,
        ]));
        log.push(q(vec![
            DimSelection::span(100, 299).unwrap(),
            DimSelection::span(0, 99).unwrap(),
            DimSelection::All,
        ]));
        log.push(q(vec![
            DimSelection::All,
            DimSelection::All,
            DimSelection::Single(5),
        ]));
        let stats = log.cuboid_stats();
        assert_eq!(stats.len(), 2);
        let c01 = &stats[&CuboidId::from_dims(&[0, 1])];
        assert_eq!(c01.num_queries, 2);
        // Average sides: (100+200)/2 = 150 on d0, (200+100)/2 = 150 on d1.
        assert_eq!(c01.avg.side_lengths, vec![150.0, 150.0]);
        assert_eq!(c01.avg.volume, 150.0 * 150.0);
        let c2 = &stats[&CuboidId::from_dims(&[2])];
        assert_eq!(c2.num_queries, 1);
        assert_eq!(c2.avg.side_lengths, vec![1.0]);
    }

    #[test]
    fn heuristic_lengths_match_figure12_semantics() {
        // Build the Figure 12 example: 3 queries over 5 attributes.
        let shape = Shape::new(&[1000, 1000, 1000, 1000, 1000]).unwrap();
        let rows = [
            [1usize, 100, 1, 3, 1],
            [200, 1, 100, 1, 1],
            [500, 500, 1, 1, 1],
        ];
        let mut log = QueryLog::new(shape);
        for row in rows {
            log.push(q(row
                .iter()
                .map(|&len| {
                    if len == 1 {
                        DimSelection::Single(0)
                    } else {
                        DimSelection::span(0, len - 1).unwrap()
                    }
                })
                .collect()));
        }
        let r = log.heuristic_lengths();
        assert_eq!(r[0], vec![1, 100, 1, 3, 1]);
        assert_eq!(r[1], vec![200, 1, 100, 1, 1]);
        assert_eq!(r[2], vec![500, 500, 1, 1, 1]);
    }

    #[test]
    fn empty_cuboid_stats() {
        let mut log = QueryLog::new(shape());
        log.push(RangeQuery::all(3).unwrap());
        let stats = log.cuboid_stats();
        let grand = &stats[&CuboidId::empty()];
        assert_eq!(grand.num_queries, 1);
        assert_eq!(grand.avg.volume, 1.0);
    }
}
