//! The unified answer vocabulary every engine speaks.
//!
//! A query's result is more than a number: the paper's whole argument is
//! about *which structure* answered and *what it cost* (§8's element-access
//! metric). [`QueryOutcome`] carries all three — the [`Answer`], the
//! measured [`AccessStats`], and the [`EngineKind`] that produced them — so
//! heterogeneous backends become comparable and routable.

use crate::AccessStats;
use std::fmt;

/// The structure (paper section) that actually answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The basic §3 prefix-sum array (`2^d` lookups).
    PrefixSum,
    /// The §4 blocked prefix-sum array.
    BlockedPrefix,
    /// The §8 hierarchical tree-sum baseline.
    TreeSum,
    /// The §6 range-max tree.
    MaxTree,
    /// The §6 structure under the reversed order (range-min).
    MinTree,
    /// The \[GBLP96\] extended data cube of §1.
    ExtendedCube,
    /// A §9-planned cuboid structure (blocked prefix sum over a slice).
    PlannedCuboid,
    /// The no-precomputation scan of the base cube.
    NaiveScan,
    /// The §10.2 sparse range-sum engine (dense regions + R*-tree).
    SparseSum,
    /// The §10.3 sparse range-max engine (R-tree with cached maxima).
    SparseMax,
    /// A semantic result cache answering by ±-combination of stored sums.
    SemanticCache,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EngineKind::PrefixSum => "basic prefix sum (§3)",
            EngineKind::BlockedPrefix => "blocked prefix sum (§4)",
            EngineKind::TreeSum => "tree sum (§8)",
            EngineKind::MaxTree => "range-max tree (§6)",
            EngineKind::MinTree => "range-min tree (§6, reversed order)",
            EngineKind::ExtendedCube => "extended cube [GBLP96]",
            EngineKind::PlannedCuboid => "planned cuboid (§9)",
            EngineKind::NaiveScan => "naive scan",
            EngineKind::SparseSum => "sparse range-sum (§10.2)",
            EngineKind::SparseMax => "sparse range-max (§10.3)",
            EngineKind::SemanticCache => "semantic cache (±-combination)",
        };
        f.write_str(name)
    }
}

/// The value part of a query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer<V> {
    /// An aggregate value (SUM, COUNT, any group/monoid combine).
    Aggregate(V),
    /// An extremum with the index where it is attained (MAX/MIN).
    Extremum {
        /// Cell index of the extremal value.
        at: Vec<usize>,
        /// The extremal value itself.
        value: V,
    },
    /// The region holds no data (sparse engines over empty regions).
    Empty,
}

impl<V> Answer<V> {
    /// The carried value, if any.
    pub fn value(&self) -> Option<&V> {
        match self {
            Answer::Aggregate(v) | Answer::Extremum { value: v, .. } => Some(v),
            Answer::Empty => None,
        }
    }
}

impl<V: fmt::Display> fmt::Display for Answer<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Aggregate(v) => write!(f, "{v}"),
            Answer::Extremum { at, value } => write!(f, "{value} at {at:?}"),
            Answer::Empty => f.write_str("(empty)"),
        }
    }
}

/// What a [`crate::RangeQuery`] produced: the answer, the measured access
/// statistics, and the structure that answered — the lingua franca between
/// engines, the adaptive router, and `explain` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome<V> {
    /// The answer value.
    pub answer: Answer<V>,
    /// Elements accessed while answering (the §8 cost proxy).
    pub stats: AccessStats,
    /// Which structure answered.
    pub answered_by: EngineKind,
}

impl<V> QueryOutcome<V> {
    /// An aggregate outcome.
    pub fn aggregate(value: V, stats: AccessStats, answered_by: EngineKind) -> Self {
        QueryOutcome {
            answer: Answer::Aggregate(value),
            stats,
            answered_by,
        }
    }

    /// An extremum outcome.
    pub fn extremum(at: Vec<usize>, value: V, stats: AccessStats, answered_by: EngineKind) -> Self {
        QueryOutcome {
            answer: Answer::Extremum { at, value },
            stats,
            answered_by,
        }
    }

    /// An empty outcome (no data in the region).
    pub fn empty(stats: AccessStats, answered_by: EngineKind) -> Self {
        QueryOutcome {
            answer: Answer::Empty,
            stats,
            answered_by,
        }
    }

    /// The answer value, if any.
    pub fn value(&self) -> Option<&V> {
        self.answer.value()
    }

    /// The §8 cost of this answer: total elements accessed.
    pub fn cost(&self) -> u64 {
        self.stats.total_accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_carries_value_stats_and_kind() {
        let mut stats = AccessStats::new();
        stats.read_p(4);
        let o = QueryOutcome::aggregate(42i64, stats, EngineKind::PrefixSum);
        assert_eq!(o.value(), Some(&42));
        assert_eq!(o.cost(), 4);
        assert_eq!(o.answered_by, EngineKind::PrefixSum);
    }

    #[test]
    fn extremum_and_empty_answers() {
        let o = QueryOutcome::extremum(vec![3, 1], 9i64, AccessStats::new(), EngineKind::MaxTree);
        assert_eq!(o.value(), Some(&9));
        assert_eq!(format!("{}", o.answer), "9 at [3, 1]");
        let e: QueryOutcome<i64> = QueryOutcome::empty(AccessStats::new(), EngineKind::SparseMax);
        assert_eq!(e.value(), None);
        assert_eq!(format!("{}", e.answer), "(empty)");
    }

    #[test]
    fn kinds_display_their_paper_sections() {
        assert_eq!(EngineKind::PrefixSum.to_string(), "basic prefix sum (§3)");
        assert_eq!(
            EngineKind::SparseSum.to_string(),
            "sparse range-sum (§10.2)"
        );
    }
}
