use crate::CuboidId;
use olap_array::{ArrayError, Range, Region, Shape};

/// The selection a query makes on one dimension.
///
/// §9.1: an attribute is **active** w.r.t. a query when its selection is a
/// contiguous range that is neither a singleton nor `all`; otherwise it is
/// **passive**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimSelection {
    /// The whole domain of the attribute (the `all` value of \[GBLP96\]).
    All,
    /// One value of the domain — a singleton query component.
    Single(usize),
    /// A contiguous inclusive range of the domain.
    Span(Range),
}

impl DimSelection {
    /// Builds a span, collapsing `lo == hi` to [`DimSelection::Single`].
    pub fn span(lo: usize, hi: usize) -> Result<Self, ArrayError> {
        let r = Range::new(lo, hi)?;
        Ok(if r.len() == 1 {
            DimSelection::Single(lo)
        } else {
            DimSelection::Span(r)
        })
    }

    /// Resolves the selection against the extent `n` of its dimension.
    ///
    /// `All` becomes `0:n−1`; a span covering the full domain is treated
    /// identically.
    pub fn resolve(&self, n: usize) -> Result<Range, ArrayError> {
        match *self {
            DimSelection::All => Range::new(0, n - 1),
            DimSelection::Single(x) => {
                if x >= n {
                    Err(ArrayError::OutOfBounds {
                        axis: 0,
                        index: x,
                        extent: n,
                    })
                } else {
                    Ok(Range::singleton(x))
                }
            }
            DimSelection::Span(r) => {
                if r.hi() >= n {
                    Err(ArrayError::OutOfBounds {
                        axis: 0,
                        index: r.hi(),
                        extent: n,
                    })
                } else {
                    Ok(r)
                }
            }
        }
    }

    /// Whether the attribute is active (a non-singleton, non-`all` range)
    /// with respect to a domain of extent `n`.
    pub fn is_active(&self, n: usize) -> bool {
        match *self {
            DimSelection::All | DimSelection::Single(_) => false,
            DimSelection::Span(r) => r.len() > 1 && r.len() < n,
        }
    }

    /// The range length `r_ij` the §9.1 heuristic uses: the span length for
    /// an active attribute, `1` for a passive one.
    pub fn heuristic_length(&self, n: usize) -> usize {
        match *self {
            DimSelection::All | DimSelection::Single(_) => 1,
            DimSelection::Span(r) => {
                if r.len() < n {
                    r.len()
                } else {
                    1 // a span covering `all` is passive
                }
            }
        }
    }
}

/// A d-dimensional range query: one [`DimSelection`] per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    sels: Box<[DimSelection]>,
}

impl RangeQuery {
    /// Builds a query from per-dimension selections.
    ///
    /// # Errors
    /// [`ArrayError::EmptyShape`] when no selections are supplied.
    pub fn new(sels: Vec<DimSelection>) -> Result<Self, ArrayError> {
        if sels.is_empty() {
            return Err(ArrayError::EmptyShape);
        }
        Ok(RangeQuery { sels: sels.into() })
    }

    /// A query that is `all` on every dimension of a `d`-dimensional cube.
    pub fn all(d: usize) -> Result<Self, ArrayError> {
        RangeQuery::new(vec![DimSelection::All; d])
    }

    /// Builds the query equivalent to a concrete [`Region`]: one span (or
    /// singleton) per dimension. Spans that happen to cover a whole domain
    /// are classified as `all` later, by [`RangeQuery::cuboid`] against a
    /// shape; the region itself does not know the domain extents.
    pub fn from_region(region: &Region) -> Self {
        let sels: Vec<DimSelection> = region
            .ranges()
            .iter()
            .map(|r| {
                if r.len() == 1 {
                    DimSelection::Single(r.lo())
                } else {
                    DimSelection::Span(*r)
                }
            })
            .collect();
        RangeQuery { sels: sels.into() }
    }

    /// The per-dimension selections.
    pub fn selections(&self) -> &[DimSelection] {
        &self.sels
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.sels.len()
    }

    /// Resolves the query into a concrete [`Region`] of the given shape.
    ///
    /// # Errors
    /// Reports dimension mismatches and out-of-domain selections.
    pub fn to_region(&self, shape: &Shape) -> Result<Region, ArrayError> {
        if self.sels.len() != shape.ndim() {
            return Err(ArrayError::DimMismatch {
                expected: shape.ndim(),
                actual: self.sels.len(),
            });
        }
        let mut ranges = Vec::with_capacity(self.sels.len());
        for (axis, (sel, &n)) in self.sels.iter().zip(shape.dims()).enumerate() {
            let r = sel.resolve(n).map_err(|e| match e {
                ArrayError::OutOfBounds { index, extent, .. } => ArrayError::OutOfBounds {
                    axis,
                    index,
                    extent,
                },
                other => other,
            })?;
            ranges.push(r);
        }
        Region::new(ranges)
    }

    /// Whether this is a singleton query (every dimension `all` or a single
    /// value) — answerable from one cell of the \[GBLP96\] extended cube.
    pub fn is_singleton(&self, shape: &Shape) -> bool {
        self.sels
            .iter()
            .zip(shape.dims())
            .all(|(s, &n)| !s.is_active(n))
    }

    /// The cuboid this query is assigned to: the set of dimensions on which
    /// the query is **not** `all` (§9: "queries with ranges on dimensions
    /// d1 and d2 and `all` on dimension d3 will be assigned to the cuboid
    /// ⟨d1, d2⟩").
    pub fn cuboid(&self, shape: &Shape) -> CuboidId {
        let mut id = CuboidId::empty();
        // analyzer: allow(budget-coverage, reason = "cuboid assignment: trip count = ndim, not data volume")
        for (axis, (sel, &n)) in self.sels.iter().zip(shape.dims()).enumerate() {
            let covers_all = match *sel {
                DimSelection::All => true,
                DimSelection::Single(_) => false,
                DimSelection::Span(r) => r.len() == n,
            };
            if !covers_all {
                id = id.with_dim(axis);
            }
        }
        id
    }

    /// The set of active dimensions with respect to the cube shape.
    pub fn active_dims(&self, shape: &Shape) -> Vec<usize> {
        self.sels
            .iter()
            .zip(shape.dims())
            .enumerate()
            .filter_map(|(axis, (s, &n))| s.is_active(n).then_some(axis))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape4() -> Shape {
        // The paper's insurance cube: age × year × state × type.
        Shape::new(&[100, 10, 50, 3]).unwrap()
    }

    #[test]
    fn insurance_query_resolves() {
        // "age 37 to 52, year 1988–1996 (ranks 1:9), all of U.S., auto".
        let q = RangeQuery::new(vec![
            DimSelection::span(37, 52).unwrap(),
            DimSelection::span(1, 9).unwrap(),
            DimSelection::All,
            DimSelection::Single(1),
        ])
        .unwrap();
        let region = q.to_region(&shape4()).unwrap();
        assert_eq!(region.volume(), (16 * 9 * 50));
    }

    #[test]
    fn active_and_passive_dims() {
        let shape = shape4();
        let q = RangeQuery::new(vec![
            DimSelection::span(37, 52).unwrap(),
            DimSelection::span(1, 9).unwrap(),
            DimSelection::All,
            DimSelection::Single(1),
        ])
        .unwrap();
        assert_eq!(q.active_dims(&shape), vec![0, 1]);
        assert!(!q.is_singleton(&shape));
    }

    #[test]
    fn span_covering_domain_is_passive() {
        let shape = Shape::new(&[10, 10]).unwrap();
        let q = RangeQuery::new(vec![
            DimSelection::span(0, 9).unwrap(),
            DimSelection::Single(3),
        ])
        .unwrap();
        assert!(q.active_dims(&shape).is_empty());
        assert!(q.is_singleton(&shape));
    }

    #[test]
    fn cuboid_assignment_ignores_all() {
        let shape = Shape::new(&[10, 10, 10]).unwrap();
        let q = RangeQuery::new(vec![
            DimSelection::span(2, 5).unwrap(),
            DimSelection::All,
            DimSelection::Single(7),
        ])
        .unwrap();
        // Ranges on d0, all on d1, singleton on d2 → cuboid {d0, d2}.
        assert_eq!(q.cuboid(&shape), CuboidId::from_dims(&[0, 2]));
    }

    #[test]
    fn full_span_assigned_like_all() {
        let shape = Shape::new(&[10, 10]).unwrap();
        let q = RangeQuery::new(vec![
            DimSelection::Span(Range::new(0, 9).unwrap()),
            DimSelection::Single(0),
        ])
        .unwrap();
        assert_eq!(q.cuboid(&shape), CuboidId::from_dims(&[1]));
    }

    #[test]
    fn to_region_rejects_out_of_domain() {
        let shape = Shape::new(&[10, 10]).unwrap();
        let q =
            RangeQuery::new(vec![DimSelection::span(5, 12).unwrap(), DimSelection::All]).unwrap();
        assert_eq!(
            q.to_region(&shape),
            Err(ArrayError::OutOfBounds {
                axis: 0,
                index: 12,
                extent: 10
            })
        );
    }

    #[test]
    fn dim_mismatch_detected() {
        let q = RangeQuery::all(3).unwrap();
        let shape = Shape::new(&[10, 10]).unwrap();
        assert_eq!(
            q.to_region(&shape),
            Err(ArrayError::DimMismatch {
                expected: 2,
                actual: 3
            })
        );
    }

    #[test]
    fn span_collapses_singleton() {
        assert_eq!(DimSelection::span(4, 4).unwrap(), DimSelection::Single(4));
    }

    #[test]
    fn from_region_round_trips() {
        let shape = Shape::new(&[10, 10, 10]).unwrap();
        let region = Region::from_bounds(&[(2, 5), (7, 7), (0, 9)]).unwrap();
        let q = RangeQuery::from_region(&region);
        assert_eq!(q.to_region(&shape).unwrap(), region);
        assert_eq!(q.selections()[1], DimSelection::Single(7));
        // The full-domain span is classified as `all` for cuboid purposes.
        assert_eq!(q.cuboid(&shape), CuboidId::from_dims(&[0, 1]));
    }

    #[test]
    fn heuristic_length_rules() {
        // Active attribute contributes its range length; passive contributes 1.
        assert_eq!(
            DimSelection::span(0, 99).unwrap().heuristic_length(1000),
            100
        );
        assert_eq!(DimSelection::Single(5).heuristic_length(1000), 1);
        assert_eq!(DimSelection::All.heuristic_length(1000), 1);
        assert_eq!(DimSelection::span(0, 9).unwrap().heuristic_length(10), 1);
    }
}
