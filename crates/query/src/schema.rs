//! Attribute schemas: mapping attribute domains to rank domains (§2).
//!
//! "In practice, each dimension of `A` is the rank domain of a
//! corresponding attribute of the data cube. … it is desirable that there
//! exists a simple function mapping the attribute domain to the rank
//! domain. If such function does not exist, then additional storage and
//! time overhead for lookup tables or hash tables may be required."
//!
//! [`AttrDomain`] provides both cases: linear integer domains (constant
//! time, no storage) and categorical domains (a lookup table). A
//! [`CubeSchema`] names each dimension and offers a builder that turns
//! attribute-level predicates into a [`RangeQuery`] over rank indices.

use crate::{DimSelection, RangeQuery};
use olap_array::{ArrayError, Shape};
use std::collections::HashMap;

/// The domain of one functional attribute and its rank mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrDomain {
    /// A contiguous integer domain `[min, max]`; rank = value − min.
    Integer {
        /// Smallest attribute value.
        min: i64,
        /// Largest attribute value.
        max: i64,
    },
    /// An enumerated domain; rank = position in the list. Lookup is by
    /// hash table, the overhead the paper warns about.
    Categorical(Vec<String>),
}

impl AttrDomain {
    /// Number of rank values.
    pub fn cardinality(&self) -> usize {
        match self {
            AttrDomain::Integer { min, max } => (max - min + 1) as usize,
            AttrDomain::Categorical(values) => values.len(),
        }
    }
}

/// One named attribute of a cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The attribute name (e.g. `"age"`).
    pub name: String,
    /// Its domain and rank mapping.
    pub domain: AttrDomain,
}

/// Errors from schema construction and attribute-level queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// No attribute with the given name.
    UnknownAttribute(String),
    /// A value outside the attribute's domain.
    ValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A categorical attribute was queried with an integer range (or an
    /// integer attribute with a category).
    WrongKind {
        /// Attribute name.
        attr: String,
    },
    /// An inverted range (`lo > hi`).
    InvertedRange {
        /// Attribute name.
        attr: String,
    },
    /// Underlying shape error.
    Array(ArrayError),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            SchemaError::ValueOutOfDomain { attr, value } => {
                write!(f, "value {value} outside the domain of {attr:?}")
            }
            SchemaError::WrongKind { attr } => {
                write!(f, "predicate kind does not match the domain of {attr:?}")
            }
            SchemaError::InvertedRange { attr } => {
                write!(f, "inverted range on {attr:?}")
            }
            SchemaError::Array(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<ArrayError> for SchemaError {
    fn from(e: ArrayError) -> Self {
        SchemaError::Array(e)
    }
}

/// A cube schema: an ordered list of named attributes whose cardinalities
/// define the cube shape.
///
/// # Examples
///
/// ```
/// use olap_query::CubeSchema;
///
/// // The §1 insurance schema.
/// let schema = CubeSchema::new(vec![
///     CubeSchema::integer("age", 1, 100),
///     CubeSchema::integer("year", 1987, 1996),
///     CubeSchema::categorical("type", &["home", "auto", "health"]),
/// ]);
/// let q = schema
///     .query()
///     .range("age", 37, 52).unwrap()
///     .eq("type", "auto").unwrap()
///     .build().unwrap();
/// let region = q.to_region(&schema.shape().unwrap()).unwrap();
/// assert_eq!(region.volume(), 16 * 10 * 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSchema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, usize>,
    /// Lookup tables for categorical attributes (the paper's "hash tables
    /// may be required" overhead), built once.
    lookups: Vec<Option<HashMap<String, usize>>>,
}

impl CubeSchema {
    /// Builds a schema from attributes (order = dimension order).
    pub fn new(attrs: Vec<Attribute>) -> Self {
        let by_name = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        let lookups = attrs
            .iter()
            .map(|a| match &a.domain {
                AttrDomain::Integer { .. } => None,
                AttrDomain::Categorical(values) => Some(
                    values
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (v.clone(), i))
                        .collect(),
                ),
            })
            .collect();
        CubeSchema {
            attrs,
            by_name,
            lookups,
        }
    }

    /// Convenience constructor for an integer attribute.
    pub fn integer(name: &str, min: i64, max: i64) -> Attribute {
        Attribute {
            name: name.into(),
            domain: AttrDomain::Integer { min, max },
        }
    }

    /// Convenience constructor for a categorical attribute.
    pub fn categorical(name: &str, values: &[&str]) -> Attribute {
        Attribute {
            name: name.into(),
            domain: AttrDomain::Categorical(values.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// The attributes in dimension order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The cube shape implied by the attribute cardinalities.
    ///
    /// # Errors
    /// Propagates shape validation (e.g. an empty categorical domain).
    pub fn shape(&self) -> Result<Shape, ArrayError> {
        let dims: Vec<usize> = self.attrs.iter().map(|a| a.domain.cardinality()).collect();
        Shape::new(&dims)
    }

    /// Index of an attribute by name.
    pub fn dim_of(&self, name: &str) -> Result<usize, SchemaError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::UnknownAttribute(name.into()))
    }

    /// Rank of an integer attribute value.
    pub fn rank_int(&self, name: &str, value: i64) -> Result<usize, SchemaError> {
        let dim = self.dim_of(name)?;
        // analyzer: allow(panic-site, reason = "dim_of returns a position within attrs by construction")
        match self.attrs[dim].domain {
            AttrDomain::Integer { min, max } => {
                if value < min || value > max {
                    Err(SchemaError::ValueOutOfDomain {
                        attr: name.into(),
                        value: value.to_string(),
                    })
                } else {
                    Ok((value - min) as usize)
                }
            }
            AttrDomain::Categorical(_) => Err(SchemaError::WrongKind { attr: name.into() }),
        }
    }

    /// Rank of a categorical attribute value (hash-table lookup).
    pub fn rank_category(&self, name: &str, value: &str) -> Result<usize, SchemaError> {
        let dim = self.dim_of(name)?;
        match &self.lookups[dim] {
            Some(table) => table
                .get(value)
                .copied()
                .ok_or_else(|| SchemaError::ValueOutOfDomain {
                    attr: name.into(),
                    value: value.into(),
                }),
            None => Err(SchemaError::WrongKind { attr: name.into() }),
        }
    }

    /// Starts building an attribute-level query; unmentioned attributes
    /// default to `all`.
    pub fn query(&self) -> QueryBuilder<'_> {
        QueryBuilder {
            schema: self,
            sels: vec![DimSelection::All; self.attrs.len()],
        }
    }
}

/// Fluent builder translating attribute predicates into rank selections.
#[derive(Debug, Clone)]
pub struct QueryBuilder<'s> {
    schema: &'s CubeSchema,
    sels: Vec<DimSelection>,
}

impl QueryBuilder<'_> {
    /// Range predicate on an integer attribute: `lo ≤ attr ≤ hi`.
    ///
    /// # Errors
    /// Unknown attribute, wrong kind, out-of-domain, inverted range.
    pub fn range(mut self, attr: &str, lo: i64, hi: i64) -> Result<Self, SchemaError> {
        if lo > hi {
            return Err(SchemaError::InvertedRange { attr: attr.into() });
        }
        let dim = self.schema.dim_of(attr)?;
        let rl = self.schema.rank_int(attr, lo)?;
        let rh = self.schema.rank_int(attr, hi)?;
        // analyzer: allow(panic-site, reason = "dim_of returns a position within attrs, and sels is sized to attrs.len() at construction")
        self.sels[dim] = DimSelection::span(rl, rh)?;
        Ok(self)
    }

    /// Equality predicate on an integer attribute.
    ///
    /// # Errors
    /// Unknown attribute, wrong kind, out-of-domain.
    pub fn eq_int(mut self, attr: &str, value: i64) -> Result<Self, SchemaError> {
        let dim = self.schema.dim_of(attr)?;
        let r = self.schema.rank_int(attr, value)?;
        self.sels[dim] = DimSelection::Single(r);
        Ok(self)
    }

    /// Equality predicate on a categorical attribute.
    ///
    /// # Errors
    /// Unknown attribute, wrong kind, unknown category.
    pub fn eq(mut self, attr: &str, value: &str) -> Result<Self, SchemaError> {
        let dim = self.schema.dim_of(attr)?;
        let r = self.schema.rank_category(attr, value)?;
        self.sels[dim] = DimSelection::Single(r);
        Ok(self)
    }

    /// Explicit `all` on an attribute (the default; useful for clarity).
    ///
    /// # Errors
    /// Unknown attribute.
    pub fn all(mut self, attr: &str) -> Result<Self, SchemaError> {
        let dim = self.schema.dim_of(attr)?;
        // analyzer: allow(panic-site, reason = "dim_of returns a position within attrs, and sels is sized to attrs.len() at construction")
        self.sels[dim] = DimSelection::All;
        Ok(self)
    }

    /// Finalizes into a rank-domain [`RangeQuery`].
    ///
    /// # Errors
    /// Propagates query validation.
    pub fn build(self) -> Result<RangeQuery, SchemaError> {
        Ok(RangeQuery::new(self.sels)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §1 insurance schema.
    fn insurance() -> CubeSchema {
        CubeSchema::new(vec![
            CubeSchema::integer("age", 1, 100),
            CubeSchema::integer("year", 1987, 1996),
            CubeSchema::categorical("state", &["CA", "NY", "TX", "WA"]),
            CubeSchema::categorical("type", &["home", "auto", "health"]),
        ])
    }

    #[test]
    fn shape_from_cardinalities() {
        let s = insurance();
        assert_eq!(s.shape().unwrap().dims(), &[100, 10, 4, 3]);
    }

    #[test]
    fn paper_query_via_builder() {
        // "age from 37 to 52, year from 1988 to 1996, all of U.S., auto".
        let s = insurance();
        let q = s
            .query()
            .range("age", 37, 52)
            .unwrap()
            .range("year", 1988, 1996)
            .unwrap()
            .eq("type", "auto")
            .unwrap()
            .build()
            .unwrap();
        let region = q.to_region(&s.shape().unwrap()).unwrap();
        assert_eq!(region.range(0).lo(), 36);
        assert_eq!(region.range(0).hi(), 51);
        assert_eq!(region.range(1).lo(), 1);
        assert_eq!(region.range(1).hi(), 9);
        assert_eq!(region.range(2).len(), 4); // all states
        assert_eq!(region.range(3).lo(), 1); // auto
        assert_eq!(region.volume(), 16 * 9 * 4);
    }

    #[test]
    fn rank_mappings() {
        let s = insurance();
        assert_eq!(s.rank_int("age", 1).unwrap(), 0);
        assert_eq!(s.rank_int("year", 1996).unwrap(), 9);
        assert_eq!(s.rank_category("state", "TX").unwrap(), 2);
    }

    #[test]
    fn errors_are_specific() {
        let s = insurance();
        assert!(matches!(
            s.rank_int("height", 3),
            Err(SchemaError::UnknownAttribute(_))
        ));
        assert!(matches!(
            s.rank_int("age", 0),
            Err(SchemaError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            s.rank_int("state", 3),
            Err(SchemaError::WrongKind { .. })
        ));
        assert!(matches!(
            s.rank_category("state", "ZZ"),
            Err(SchemaError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            s.query().range("age", 52, 37),
            Err(SchemaError::InvertedRange { .. })
        ));
    }

    #[test]
    fn singleton_collapse_in_builder() {
        let s = insurance();
        let q = s.query().range("age", 40, 40).unwrap().build().unwrap();
        assert_eq!(q.selections()[0], DimSelection::Single(39));
    }

    #[test]
    fn eq_int_predicate() {
        let s = insurance();
        let q = s.query().eq_int("year", 1995).unwrap().build().unwrap();
        assert_eq!(q.selections()[1], DimSelection::Single(8));
    }
}
