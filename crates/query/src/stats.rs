use olap_array::Region;

/// The per-query statistics of Table 1: volume `V`, side lengths `x_i`,
/// and total surface area `S = Σ_i 2V/x_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Volume of the query region, `V = ∏ x_i`.
    pub volume: f64,
    /// Length of the query in each dimension, `x_i`.
    pub side_lengths: Vec<f64>,
    /// Total surface area, `S = Σ_i 2V/x_i`.
    pub surface: f64,
}

impl QueryStats {
    /// Statistics of a concrete region.
    pub fn of_region(region: &Region) -> Self {
        let sides: Vec<f64> = region.side_lengths().iter().map(|&x| x as f64).collect();
        QueryStats::from_sides(&sides)
    }

    /// Statistics from raw (possibly average, hence fractional) side
    /// lengths.
    pub fn from_sides(sides: &[f64]) -> Self {
        let volume: f64 = sides.iter().product();
        let surface: f64 = sides.iter().map(|&x| 2.0 * volume / x).sum();
        QueryStats {
            volume,
            side_lengths: sides.to_vec(),
            surface,
        }
    }

    /// Number of dimensions of the query.
    pub fn ndim(&self) -> usize {
        self.side_lengths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_query_stats() {
        // A 10×10×10 query: V = 1000, S = 3 · 2 · 100 = 600.
        let s = QueryStats::from_sides(&[10.0, 10.0, 10.0]);
        assert_eq!(s.volume, 1000.0);
        assert_eq!(s.surface, 600.0);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn from_region_matches_integer_stats() {
        let r = Region::from_bounds(&[(0, 3), (0, 9)]).unwrap();
        let s = QueryStats::of_region(&r);
        assert_eq!(s.volume, 40.0);
        assert_eq!(s.surface, (2 * 10 + 2 * 4) as f64);
    }

    #[test]
    fn one_dimensional_surface_is_two() {
        let s = QueryStats::from_sides(&[17.0]);
        assert_eq!(s.surface, 2.0);
    }
}
