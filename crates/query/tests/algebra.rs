//! Property tests for the region algebra against a point-membership
//! oracle: the `difference` decomposition must be pairwise disjoint,
//! cover exactly `A \ B`, and stay within `2d` boxes, and every
//! `SubsumptionPlan` must satisfy the ±-combination identity when its
//! terms are evaluated by brute-force point enumeration.

use olap_array::Region;
use olap_query::algebra::{bounding_union, contains, difference, intersect, overlaps, subsume};
use proptest::prelude::*;

/// A random d-dimensional box with per-axis bounds in `0..limit`.
fn region_strategy(ndim: usize, limit: usize) -> impl Strategy<Value = Region> {
    prop::collection::vec((0..limit, 0..limit), ndim).prop_map(|axes| {
        let bounds: Vec<(usize, usize)> = axes
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        Region::from_bounds(&bounds).expect("ordered bounds")
    })
}

/// Pair of same-dimension boxes (dimension drawn 1..=3).
fn region_pair() -> impl Strategy<Value = (Region, Region)> {
    (1usize..=3).prop_flat_map(|d| (region_strategy(d, 12), region_strategy(d, 12)))
}

/// Brute-force membership oracle: every point of `space` classified by
/// direct coordinate comparison.
fn points_in(r: &Region) -> Vec<Vec<usize>> {
    r.iter_indices().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// `difference(a, b)` covers exactly the points in `a` but not `b`,
    /// with pairwise disjoint boxes, each inside `a` and outside `b`,
    /// and at most `2d` of them.
    #[test]
    fn difference_matches_point_membership_oracle((a, b) in region_pair()) {
        let parts = difference(&a, &b);
        prop_assert!(parts.len() <= 2 * a.ndim(), "got {} boxes", parts.len());
        for p in &parts {
            prop_assert!(contains(&a, p), "part {p} escapes {a}");
            prop_assert!(!overlaps(p, &b), "part {p} overlaps {b}");
        }
        for (i, p) in parts.iter().enumerate() {
            for q in &parts[i + 1..] {
                prop_assert!(!overlaps(p, q), "parts {p} and {q} overlap");
            }
        }
        // Exact coverage: each point of `a` is in exactly one part iff it
        // is outside `b`.
        for pt in points_in(&a) {
            let in_b = b.contains(&pt);
            let covering = parts.iter().filter(|p| p.contains(&pt)).count();
            prop_assert_eq!(covering, usize::from(!in_b), "point {:?}", pt);
        }
        // And no part invents points outside `a` (already checked via
        // containment, but volume accounting catches degenerate overlap).
        let vol: usize = parts.iter().map(Region::volume).sum();
        let b_in_a = intersect(&a, &b).map_or(0, |i| i.volume());
        prop_assert_eq!(vol, a.volume() - b_in_a);
    }

    /// Predicates agree with the oracle.
    #[test]
    fn predicates_match_point_membership_oracle((a, b) in region_pair()) {
        let a_pts = points_in(&a);
        // contains(b, a): every point of a lies in b (a is never empty —
        // inclusive ranges always hold at least one point).
        let oracle_contains = a_pts.iter().all(|p| b.contains(p));
        prop_assert_eq!(contains(&b, &a), oracle_contains);
        let oracle_overlap = a_pts.iter().any(|p| b.contains(p));
        prop_assert_eq!(overlaps(&a, &b), oracle_overlap);
        match intersect(&a, &b) {
            Some(i) => {
                for pt in points_in(&i) {
                    prop_assert!(a.contains(&pt) && b.contains(&pt));
                }
                prop_assert_eq!(
                    i.volume(),
                    a_pts.iter().filter(|p| b.contains(p)).count()
                );
            }
            None => prop_assert!(!oracle_overlap),
        }
    }

    /// The subsumption plan's ±-identity holds under brute-force
    /// evaluation: summing +1 per cell of the cached region and −1 per
    /// cell of each residual counts each target cell exactly once.
    #[test]
    fn subsumption_plan_is_exact((a, b) in region_pair()) {
        // Force containment by intersecting: target = a ∩ b (if any),
        // cached = a.
        let Some(target) = intersect(&a, &b) else { return Ok(()); };
        let plan = subsume(&target, &a).expect("a contains a ∩ b");
        prop_assert_eq!(
            plan.residual_volume(),
            a.volume() - target.volume()
        );
        // Per-point signed count: must be 1 inside target, 0 elsewhere.
        for pt in points_in(&a) {
            let mut signed: i64 = 1; // +cached, and pt ∈ cached by construction
            for r in plan.residual() {
                if r.contains(&pt) {
                    signed -= 1;
                }
            }
            prop_assert_eq!(signed, i64::from(target.contains(&pt)), "point {:?}", pt);
        }
        let assembled: i64 = plan
            .terms()
            .iter()
            .map(|t| t.sign.factor() * t.region.volume() as i64)
            .sum();
        prop_assert_eq!(assembled, target.volume() as i64);
    }

    /// `bounding_union` is the minimal enclosing box: it contains every
    /// input and shrinking any side by one loses some input point.
    #[test]
    fn bounding_union_is_tight(
        rs in (1usize..=3).prop_flat_map(|d| prop::collection::vec(region_strategy(d, 12), 1..5))
    ) {
        let u = bounding_union(&rs).expect("non-empty same-dim input");
        for r in &rs {
            prop_assert!(contains(&u, r));
        }
        for axis in 0..u.ndim() {
            let lo = u.range(axis).lo();
            let hi = u.range(axis).hi();
            prop_assert!(rs.iter().any(|r| r.range(axis).lo() == lo));
            prop_assert!(rs.iter().any(|r| r.range(axis).hi() == hi));
        }
    }
}
