//! Property tests for the query model: cuboid lattice laws, query→region
//! resolution, cuboid assignment, and schema rank mappings.

use olap_array::Shape;
use olap_query::{CubeSchema, CuboidId, DimSelection, QueryLog, RangeQuery};
use proptest::prelude::*;

fn arb_cuboid(d: usize) -> impl Strategy<Value = CuboidId> {
    (0u64..(1 << d)).prop_map(CuboidId::from_mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn lattice_is_a_partial_order(
        (a, b, c) in (arb_cuboid(8), arb_cuboid(8), arb_cuboid(8))
    ) {
        // Reflexive.
        prop_assert!(a.is_descendant_of(&a));
        // Antisymmetric.
        if a.is_descendant_of(&b) && b.is_descendant_of(&a) {
            prop_assert_eq!(a, b);
        }
        // Transitive.
        if a.is_descendant_of(&b) && b.is_descendant_of(&c) {
            prop_assert!(a.is_descendant_of(&c));
        }
        // Ancestor is the converse relation.
        prop_assert_eq!(a.is_ancestor_of(&b), b.is_descendant_of(&a));
    }

    #[test]
    fn dims_roundtrip(mask in 0u64..(1 << 16)) {
        let c = CuboidId::from_mask(mask);
        prop_assert_eq!(CuboidId::from_dims(&c.dims()), c);
        prop_assert_eq!(c.dims().len(), c.ndim());
    }

    #[test]
    fn query_resolution_and_cuboid_assignment(
        (dims, raw) in prop::collection::vec(2usize..20, 1..=4).prop_flat_map(|dims| {
            let sels: Vec<_> = dims
                .iter()
                .map(|&n| {
                    prop_oneof![
                        Just((0usize, 0usize, 0u8)),            // all
                        (0..n).prop_map(|x| (x, x, 1u8)),       // single
                        (0..n, 0..n).prop_map(|(a, b)| (a.min(b), a.max(b), 2u8)), // span
                    ]
                })
                .collect();
            (Just(dims), sels)
        })
    ) {
        let shape = Shape::new(&dims).unwrap();
        let sels: Vec<DimSelection> = raw
            .iter()
            .map(|&(lo, hi, kind)| match kind {
                0 => DimSelection::All,
                1 => DimSelection::Single(lo),
                _ => DimSelection::span(lo, hi).unwrap(),
            })
            .collect();
        let q = RangeQuery::new(sels).unwrap();
        let region = q.to_region(&shape).unwrap();
        // Resolution respects the shape and the selections.
        prop_assert!(shape.check_region(&region).is_ok());
        let cuboid = q.cuboid(&shape);
        for (j, sel) in q.selections().iter().enumerate() {
            match sel {
                DimSelection::All => {
                    prop_assert_eq!(region.range(j).len(), shape.dim(j));
                    prop_assert!(!cuboid.contains_dim(j));
                }
                DimSelection::Single(x) => {
                    prop_assert_eq!(region.range(j).lo(), *x);
                    prop_assert_eq!(region.range(j).len(), 1);
                    prop_assert!(cuboid.contains_dim(j));
                }
                DimSelection::Span(r) => {
                    prop_assert_eq!(region.range(j), *r);
                    // Full-domain spans are assigned like `all`.
                    prop_assert_eq!(
                        cuboid.contains_dim(j),
                        r.len() < shape.dim(j)
                    );
                }
            }
        }
    }

    #[test]
    fn cuboid_stats_counts_are_conserved(
        queries in prop::collection::vec(
            (0usize..10, 0usize..10, prop::bool::ANY, prop::bool::ANY),
            1..30,
        )
    ) {
        let shape = Shape::new(&[10, 10]).unwrap();
        let mut log = QueryLog::new(shape);
        for (a, b, use_range0, use_range1) in queries {
            let s0 = if use_range0 {
                DimSelection::span(a.min(b), a.max(b)).unwrap()
            } else {
                DimSelection::All
            };
            let s1 = if use_range1 {
                DimSelection::Single(a)
            } else {
                DimSelection::All
            };
            log.push(RangeQuery::new(vec![s0, s1]).unwrap());
        }
        let stats = log.cuboid_stats();
        let total: usize = stats.values().map(|s| s.num_queries).sum();
        prop_assert_eq!(total, log.len());
        for s in stats.values() {
            prop_assert_eq!(s.avg.side_lengths.len(), s.cuboid.ndim());
            prop_assert!(s.avg.volume >= 1.0);
        }
    }

    #[test]
    fn schema_integer_ranks_roundtrip(min in -1000i64..1000, span in 1i64..500, probe in 0i64..500) {
        let max = min + span;
        let schema = CubeSchema::new(vec![CubeSchema::integer("x", min, max)]);
        let value = min + (probe % (span + 1));
        let rank = schema.rank_int("x", value).unwrap();
        prop_assert!(rank < schema.shape().unwrap().dim(0));
        prop_assert_eq!(rank as i64, value - min);
        // Out-of-domain values are rejected.
        prop_assert!(schema.rank_int("x", max + 1).is_err());
        prop_assert!(schema.rank_int("x", min - 1).is_err());
    }
}
