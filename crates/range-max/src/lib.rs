//! Branch-and-bound range-max queries over data cubes (§6–§7).
//!
//! The data structure is a generalized quad-tree: a balanced tree of
//! fanout `b^d` built bottom-up over the cube, where every node stores the
//! **index of the maximum value** in the region it covers. Queries walk
//! from the lowest-level node covering the query region and use a
//! branch-and-bound rule — a subtree whose precomputed max cannot beat the
//! best value found so far is pruned — exploiting the MAX property that
//! `max(S2) = max(S2 − S1)` whenever some `i ∈ S2` has `i ≥ max(S1)`.
//!
//! The worst case visits `O(b log_b r)` nodes in one dimension (`r` the
//! range size); the average case is bounded by `b + 7 + 1/b` (Theorem 3).
//!
//! [`MaxTree::batch_update`] implements the §7 tag protocol: updates are
//! scanned once per level; a node rescans its children only when its
//! current maximum was decreased and no later increase recovered it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod search;
mod tree;
mod update;

pub use search::SearchOptions;
pub use tree::{MaxTree, MaxTreeError, NaturalMaxTree, NaturalMinTree};
pub use update::PointUpdate;
