//! The branch-and-bound range-max search (§6.1.2–§6.1.3, generalized to d
//! dimensions in §6.2).

use crate::tree::{MaxTree, MaxTreeError};
use olap_aggregate::TotalOrder;
use olap_array::{DenseArray, Region};
use olap_query::AccessStats;

/// Knobs for the search — the defaults are the paper's algorithm; the
/// alternatives exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOptions {
    /// Start at the lowest-level node covering the query (§6.1.2). When
    /// `false` the search starts from the root, degrading the bound from
    /// `O(b log_b r)` to `O(b log_b n)` as the paper remarks.
    pub lowest_covering_start: bool,
    /// Prune `Bout` subtrees whose precomputed max cannot beat the current
    /// best (the branch-and-bound rule of lines (4)–(6)).
    pub branch_and_bound: bool,
    /// Visit `Bout` children in decreasing order of their precomputed max
    /// (an extra heuristic on top of the paper's arbitrary order).
    pub sort_boundary: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            lowest_covering_start: true,
            branch_and_bound: true,
            sort_boundary: false,
        }
    }
}

/// How a child relates to the query region (§6.1.3): internal
/// (`C(y) ⊆ R`), boundary (partial overlap), or external (disjoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildClasses {
    /// Children wholly inside the region.
    pub internal: Vec<Vec<usize>>,
    /// Children partially overlapping the region.
    pub boundary: Vec<Vec<usize>>,
    /// Children disjoint from the region.
    pub external: Vec<Vec<usize>>,
}

impl<O: TotalOrder> MaxTree<O> {
    /// Finds the maximum value and one of its indices in `region`
    /// (`Max_index` of §2, ties broken arbitrarily).
    ///
    /// # Errors
    /// Validates the region against the cube shape.
    pub fn range_max(
        &self,
        a: &DenseArray<O::Value>,
        region: &Region,
    ) -> Result<(Vec<usize>, O::Value), MaxTreeError> {
        self.range_max_with_options(a, region, SearchOptions::default())
            .map(|(idx, v, _)| (idx, v))
    }

    /// Like [`MaxTree::range_max`], also reporting access statistics.
    pub fn range_max_with_stats(
        &self,
        a: &DenseArray<O::Value>,
        region: &Region,
    ) -> Result<(Vec<usize>, O::Value, AccessStats), MaxTreeError> {
        self.range_max_with_options(a, region, SearchOptions::default())
    }

    /// Full-control entry point (used by the ablation benches).
    ///
    /// # Errors
    /// Validates the region against the cube shape.
    pub fn range_max_with_options(
        &self,
        a: &DenseArray<O::Value>,
        region: &Region,
        opts: SearchOptions,
    ) -> Result<(Vec<usize>, O::Value, AccessStats), MaxTreeError> {
        self.shape.check_region(region)?;
        let mut stats = AccessStats::new();
        // A singleton region is the cell itself.
        if region.volume() == 1 {
            let idx = region.lower_corner();
            stats.read_a(1);
            return Ok((idx.clone(), a.get(&idx).clone(), stats));
        }
        // Line (3) of Max_index: the lowest-level node x with R ⊆ C(x).
        let level = if opts.lowest_covering_start {
            self.lowest_covering_level(region)
        } else {
            self.height()
        };
        let side = self.side_at(level);
        let coords: Vec<usize> = region.lower_corner().iter().map(|&l| l / side).collect();
        stats.visit_nodes(1);
        let stored = self.node_max_index(level, &coords);
        let stored_idx = self.shape.unflatten(stored);
        // Lines (4)–(5): the covering node's max might already be inside R.
        if region.contains(&stored_idx) {
            stats.read_a(1);
            return Ok((stored_idx, a.get_flat(stored).clone(), stats));
        }
        // Line (2): current_max_index starts at ℓ (any index inside R).
        let mut cur = self.shape.flatten(&region.lower_corner());
        stats.read_a(1);
        self.get_max_index(a, level, &coords, region, &mut cur, opts, &mut stats);
        let idx = self.shape.unflatten(cur);
        let val = a.get_flat(cur).clone();
        Ok((idx, val, stats))
    }

    /// The smallest level `i ≥ 1` whose node containing `ℓ` also contains
    /// `h` on every dimension (the addressing scheme of §6.1.2: the common
    /// prefix of the base-`b` representations).
    pub(crate) fn lowest_covering_level(&self, region: &Region) -> usize {
        let mut level = 1;
        loop {
            let side = self.side_at(level);
            let covered = region
                .ranges()
                .iter()
                .all(|r| r.lo() / side == r.hi() / side);
            if covered || level >= self.height() {
                return level;
            }
            level += 1;
        }
    }

    /// Classifies the children of a node with respect to a region — used
    /// by the search and exposed for the Figure-10 tests.
    pub fn classify_children(
        &self,
        level: usize,
        coords: &[usize],
        region: &Region,
    ) -> ChildClasses {
        let mut out = ChildClasses {
            internal: Vec::new(),
            boundary: Vec::new(),
            external: Vec::new(),
        };
        self.for_each_child(level, coords, |child| {
            let c = self.child_region(level - 1, &child);
            match c.intersect(region) {
                None => out.external.push(child),
                Some(i) if i == c => out.internal.push(child),
                Some(_) => out.boundary.push(child),
            }
        });
        out
    }

    /// The region covered by a node at `level` (level 0 = a single cell).
    fn child_region(&self, level: usize, coords: &[usize]) -> Region {
        if level == 0 {
            Region::point(coords).expect("d ≥ 1")
        } else {
            self.node_region(level, coords)
        }
    }

    /// Iterates the child coordinates of a node (children live at
    /// `level − 1`; level 0 children are cube cells).
    fn for_each_child(&self, level: usize, coords: &[usize], mut f: impl FnMut(Vec<usize>)) {
        let child_dims: Vec<usize> = if level == 1 {
            self.shape.dims().to_vec()
        } else {
            self.levels[level - 2].shape.dims().to_vec()
        };
        let lo: Vec<usize> = coords.iter().map(|&c| c * self.b).collect();
        let hi: Vec<usize> = coords
            .iter()
            .zip(&child_dims)
            .map(|(&c, &n)| ((c + 1) * self.b - 1).min(n - 1))
            .collect();
        let mut cur = lo.clone();
        // analyzer: allow(budget-coverage, reason = "child enumeration bounded by the tree arity b^d; callers charge per node visited")
        loop {
            f(cur.clone());
            let mut axis = cur.len();
            // analyzer: allow(budget-coverage, reason = "odometer advance: at most ndim steps per child")
            loop {
                if axis == 0 {
                    return;
                }
                axis -= 1;
                if cur[axis] < hi[axis] {
                    cur[axis] += 1;
                    break;
                }
                cur[axis] = lo[axis];
            }
        }
    }

    /// `get_max_index` of §6.1.3: scans internal and `B_in` children
    /// directly, recurses into `B_out` children unless pruned.
    #[allow(clippy::too_many_arguments)]
    fn get_max_index(
        &self,
        a: &DenseArray<O::Value>,
        level: usize,
        coords: &[usize],
        region: &Region,
        cur: &mut usize,
        opts: SearchOptions,
        stats: &mut AccessStats,
    ) {
        debug_assert!(level >= 1);
        // (candidate region ∩ child, child coords, stored max index)
        let mut bout: Vec<(Region, Vec<usize>, usize)> = Vec::new();
        self.for_each_child(level, coords, |child| {
            let c = self.child_region(level - 1, &child);
            let inter = match c.intersect(region) {
                None => return, // external: never accessed
                Some(i) => i,
            };
            if level == 1 {
                // Children are cells of A.
                if inter == c {
                    let flat = self.shape.flatten(&child);
                    stats.read_a(1);
                    stats.step(1);
                    if self.order.gt(a.get_flat(flat), a.get_flat(*cur)) {
                        *cur = flat;
                    }
                }
                return;
            }
            let child_level = level - 1;
            let l = &self.levels[child_level - 1];
            let stored = l.max_index[l.shape.flatten(&child)];
            stats.visit_nodes(1);
            let stored_in_r = region.contains(&self.shape.unflatten(stored));
            if inter == c || stored_in_r {
                // Internal or B_in: the stored argmax is usable directly.
                stats.step(1);
                if self.order.gt(a.get_flat(stored), a.get_flat(*cur)) {
                    *cur = stored;
                }
            } else {
                bout.push((inter, child, stored));
            }
        });
        if opts.sort_boundary {
            bout.sort_by(|x, y| self.order.cmp_values(a.get_flat(y.2), a.get_flat(x.2)));
        }
        for (inter, child, stored) in bout {
            stats.step(1);
            // Branch-and-bound (lines (4)–(6)): if the subtree's
            // precomputed max cannot beat the running max, skip it.
            if opts.branch_and_bound && !self.order.gt(a.get_flat(stored), a.get_flat(*cur)) {
                continue;
            }
            self.get_max_index(a, level - 1, &child, &inter, cur, opts, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaturalMaxTree;
    use olap_array::Shape;

    fn arr14() -> DenseArray<i64> {
        DenseArray::from_vec(
            Shape::new(&[14]).unwrap(),
            vec![4, 1, 7, 2, 9, 3, 8, 5, 0, 6, 11, 2, 13, 10],
        )
        .unwrap()
    }

    fn naive_max(a: &DenseArray<i64>, q: &Region) -> i64 {
        a.fold_region(q, i64::MIN, |m, &x| m.max(x))
    }

    #[test]
    fn fig10_node_classes() {
        // Figure 10: R = (2:5); children of x2 (level 2 node 0, which
        // covers 0:8) are level-1 nodes x4, x5, x6 with x5 internal
        // (covers 3:5), x4 boundary (covers 0:2), x6 external (6:8).
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        let r = Region::from_bounds(&[(2, 5)]).unwrap();
        let classes = t.classify_children(2, &[0], &r);
        assert_eq!(classes.internal, vec![vec![1]]);
        assert_eq!(classes.boundary, vec![vec![0]]);
        assert_eq!(classes.external, vec![vec![2]]);
    }

    #[test]
    fn lowest_covering_level_examples() {
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        // 3:5 lives inside one level-1 node; 2:5 needs level 2; 2:10 level 3.
        assert_eq!(
            t.lowest_covering_level(&Region::from_bounds(&[(3, 5)]).unwrap()),
            1
        );
        assert_eq!(
            t.lowest_covering_level(&Region::from_bounds(&[(2, 5)]).unwrap()),
            2
        );
        assert_eq!(
            t.lowest_covering_level(&Region::from_bounds(&[(2, 10)]).unwrap()),
            3
        );
    }

    #[test]
    fn exhaustive_one_dim() {
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        for l in 0..14 {
            for h in l..14 {
                let q = Region::from_bounds(&[(l, h)]).unwrap();
                let (idx, v) = t.range_max(&a, &q).unwrap();
                assert_eq!(v, naive_max(&a, &q), "{q}");
                assert!(q.contains(&idx));
                assert_eq!(*a.get(&idx), v);
            }
        }
    }

    #[test]
    fn exhaustive_two_dim() {
        let a = DenseArray::from_fn(Shape::new(&[9, 7]).unwrap(), |i| {
            ((i[0] * 29 + i[1] * 13) % 31) as i64 - 15
        });
        for b in [2usize, 3] {
            let t = NaturalMaxTree::for_values(&a, b).unwrap();
            for l0 in 0..9 {
                for h0 in l0..9 {
                    for l1 in 0..7 {
                        for h1 in l1..7 {
                            let q = Region::from_bounds(&[(l0, h0), (l1, h1)]).unwrap();
                            let (idx, v) = t.range_max(&a, &q).unwrap();
                            assert_eq!(v, naive_max(&a, &q), "b={b} {q}");
                            assert!(q.contains(&idx));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn all_option_combinations_agree() {
        let a = DenseArray::from_fn(Shape::new(&[16, 16]).unwrap(), |i| {
            ((i[0] * 7 + i[1] * 11) % 37) as i64
        });
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        let queries = [
            [(1, 14), (2, 13)],
            [(0, 15), (0, 15)],
            [(5, 6), (7, 10)],
            [(3, 3), (0, 15)],
        ];
        for qb in queries {
            let q = Region::from_bounds(&qb).unwrap();
            let expected = naive_max(&a, &q);
            for lcs in [true, false] {
                for bb in [true, false] {
                    for sort in [true, false] {
                        let opts = SearchOptions {
                            lowest_covering_start: lcs,
                            branch_and_bound: bb,
                            sort_boundary: sort,
                        };
                        let (_, v, _) = t.range_max_with_options(&a, &q, opts).unwrap();
                        assert_eq!(v, expected, "{q} {opts:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn branch_and_bound_reduces_accesses() {
        // A random-ish cube where pruning must pay off on average.
        let a = DenseArray::from_fn(Shape::new(&[81]).unwrap(), |i| {
            ((i[0] * 2654435761usize) % 1000) as i64
        });
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        let mut with_bb = 0u64;
        let mut without = 0u64;
        for l in (0..70).step_by(7) {
            let q = Region::from_bounds(&[(l, l + 10)]).unwrap();
            let (_, _, s1) = t
                .range_max_with_options(&a, &q, SearchOptions::default())
                .unwrap();
            let (_, _, s2) = t
                .range_max_with_options(
                    &a,
                    &q,
                    SearchOptions {
                        branch_and_bound: false,
                        ..Default::default()
                    },
                )
                .unwrap();
            with_bb += s1.total_accesses();
            without += s2.total_accesses();
        }
        assert!(with_bb <= without, "bb {with_bb} vs plain {without}");
    }

    #[test]
    fn worst_case_scenario_from_paper() {
        // §6.1.3: the region covers all leaves of a complete subtree except
        // the first and last, which hold the two largest values.
        let mut data = vec![0i64; 27];
        data[0] = 100;
        data[26] = 99;
        for (i, v) in data.iter_mut().enumerate().skip(1).take(25) {
            *v = (i % 10) as i64;
        }
        let a = DenseArray::from_vec(Shape::new(&[27]).unwrap(), data).unwrap();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        let q = Region::from_bounds(&[(1, 25)]).unwrap();
        let (_, v, stats) = t.range_max_with_stats(&a, &q).unwrap();
        assert_eq!(v, 9);
        // Worst case is O(b log_b r) ≈ 3·3 node groups, far below volume 25.
        assert!(stats.total_accesses() < 25);
    }

    #[test]
    fn covering_node_shortcut() {
        // When the covering node's stored max lies inside R, the query is
        // answered with a single node access (lines (4)–(5)).
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        // Query 3:5 — node x5 covers exactly 3:5 and its max (index 4) ∈ R.
        let q = Region::from_bounds(&[(3, 5)]).unwrap();
        let (idx, v, stats) = t.range_max_with_stats(&a, &q).unwrap();
        assert_eq!((idx.as_slice(), v), (&[4usize][..], 9));
        assert_eq!(stats.tree_nodes, 1);
    }

    #[test]
    fn singleton_region_reads_one_cell() {
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        let q = Region::from_bounds(&[(7, 7)]).unwrap();
        let (idx, v, stats) = t.range_max_with_stats(&a, &q).unwrap();
        assert_eq!((idx.as_slice(), v), (&[7usize][..], 5));
        assert_eq!(stats.total_accesses(), 1);
    }

    #[test]
    fn rejects_bad_region() {
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        assert!(t
            .range_max(&a, &Region::from_bounds(&[(0, 14)]).unwrap())
            .is_err());
    }
}
