//! The block max-tree structure and its bottom-up construction (§6.1.1,
//! §6.2).

use olap_aggregate::{NaturalOrder, ReverseOrder, TotalOrder};
use olap_array::{exec, ArrayError, DenseArray, FlatRegionIter, Parallelism, Range, Region, Shape};
use std::fmt;

/// Errors from building or querying a [`MaxTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaxTreeError {
    /// The fanout `b` must be at least 2 for the tree to shrink per level.
    FanoutTooSmall {
        /// The rejected fanout.
        b: usize,
    },
    /// An underlying shape/region error.
    Array(ArrayError),
}

impl fmt::Display for MaxTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxTreeError::FanoutTooSmall { b } => {
                write!(f, "max-tree fanout must be ≥ 2, got {b}")
            }
            MaxTreeError::Array(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MaxTreeError {}

impl From<ArrayError> for MaxTreeError {
    fn from(e: ArrayError) -> Self {
        MaxTreeError::Array(e)
    }
}

/// One level of the tree. Level `i` (1-based) is a contracted array of
/// shape `⌈n_1/b^i⌉ × … × ⌈n_d/b^i⌉`; each node stores the flat index (into
/// the cube `A`) of the maximum over the region it covers.
#[derive(Debug, Clone)]
pub(crate) struct Level {
    pub(crate) shape: Shape,
    pub(crate) max_index: Box<[usize]>,
}

/// The precomputed max tree over a data cube (§6).
///
/// Generic over any [`TotalOrder`], so MIN is the same structure under
/// [`olap_aggregate::ReverseOrder`]. The cube itself is **not** stored;
/// queries take `&A` (level 0 *is* the cube).
#[derive(Debug, Clone)]
pub struct MaxTree<O: TotalOrder> {
    pub(crate) order: O,
    pub(crate) shape: Shape,
    pub(crate) b: usize,
    pub(crate) levels: Vec<Level>,
}

/// The common case: a max tree under the natural ascending order of `T`.
pub type NaturalMaxTree<T> = MaxTree<NaturalOrder<T>>;

impl<T> NaturalMaxTree<T>
where
    NaturalOrder<T>: TotalOrder<Value = T>,
{
    /// Builds a max tree under the natural order of the value type.
    ///
    /// # Examples
    ///
    /// ```
    /// use olap_array::{DenseArray, Region, Shape};
    /// use olap_range_max::NaturalMaxTree;
    ///
    /// let cube = DenseArray::from_vec(
    ///     Shape::new(&[9]).unwrap(),
    ///     vec![4i64, 1, 7, 2, 9, 3, 8, 5, 0],
    /// )
    /// .unwrap();
    /// let tree = NaturalMaxTree::for_values(&cube, 3).unwrap();
    /// let q = Region::from_bounds(&[(2, 6)]).unwrap();
    /// let (at, max) = tree.range_max(&cube, &q).unwrap();
    /// assert_eq!((at, max), (vec![4], 9));
    /// ```
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] when `b < 2`.
    pub fn for_values(a: &DenseArray<T>, b: usize) -> Result<Self, MaxTreeError> {
        MaxTree::build(a, b, NaturalOrder::new())
    }

    /// [`NaturalMaxTree::for_values`] under an execution strategy.
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] when `b < 2`.
    pub fn for_values_with(
        a: &DenseArray<T>,
        b: usize,
        par: Parallelism,
    ) -> Result<Self, MaxTreeError>
    where
        NaturalOrder<T>: Sync,
        T: Sync,
    {
        MaxTree::build_with(a, b, NaturalOrder::new(), par)
    }
}

/// A range-**min** tree: the §6 structure under the reversed natural
/// order (the paper: "techniques for MAX straightforwardly apply to MIN").
pub type NaturalMinTree<T> = MaxTree<ReverseOrder<NaturalOrder<T>>>;

impl<T> NaturalMinTree<T>
where
    NaturalOrder<T>: TotalOrder<Value = T>,
{
    /// Builds a min tree under the natural order of the value type.
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] when `b < 2`.
    pub fn for_min_values(a: &DenseArray<T>, b: usize) -> Result<Self, MaxTreeError> {
        MaxTree::build(a, b, ReverseOrder::new(NaturalOrder::new()))
    }
}

impl<O: TotalOrder> MaxTree<O> {
    /// Builds the tree bottom-up with per-dimension fanout `b` (§6.1.1 and
    /// its d-dimensional generalization in §6.2).
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] when `b < 2`.
    pub fn build(a: &DenseArray<O::Value>, b: usize, order: O) -> Result<Self, MaxTreeError> {
        if b < 2 {
            return Err(MaxTreeError::FanoutTooSmall { b });
        }
        let shape = a.shape().clone();
        let levels = build_levels(&shape, b, |child_shape, child, parent_shape| {
            let child_of = child.map(|l| &*l.max_index);
            (0..parent_shape.len())
                .map(|p| node_max(a, &order, child_shape, child_of, parent_shape, b, p))
                .collect()
        })?;
        Ok(MaxTree {
            order,
            shape,
            b,
            levels,
        })
    }

    /// [`MaxTree::build`] under an execution strategy: each level's nodes
    /// are independent gathers over disjoint child regions, so a level is
    /// filled by fanning contiguous runs of parent nodes across workers.
    /// Every node runs the same first-max-wins comparison sequence as the
    /// sequential build (its children in row-major order), so the tree is
    /// bit-identical under every [`Parallelism`].
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] when `b < 2`.
    pub fn build_with(
        a: &DenseArray<O::Value>,
        b: usize,
        order: O,
        par: Parallelism,
    ) -> Result<Self, MaxTreeError>
    where
        O: Sync,
        O::Value: Sync,
    {
        if b < 2 {
            return Err(MaxTreeError::FanoutTooSmall { b });
        }
        let shape = a.shape().clone();
        let levels = build_levels(&shape, b, |child_shape, child, parent_shape| {
            let child_of = child.map(|l| &*l.max_index);
            let n_out = parent_shape.len();
            let workers = par.workers_for(n_out);
            if workers <= 1 {
                return (0..n_out)
                    .map(|p| node_max(a, &order, child_shape, child_of, parent_shape, b, p))
                    .collect();
            }
            let piece = n_out.div_ceil(workers);
            let chunks: Vec<core::ops::Range<usize>> = (0..n_out)
                .step_by(piece)
                .map(|lo| lo..(lo + piece).min(n_out))
                .collect();
            let parts = exec::run_indexed(par, chunks, |_, nodes| {
                nodes
                    .map(|p| node_max(a, &order, child_shape, child_of, parent_shape, b, p))
                    .collect::<Vec<usize>>()
            });
            parts.into_iter().flatten().collect()
        })?;
        Ok(MaxTree {
            order,
            shape,
            b,
            levels,
        })
    }

    /// The cube shape the tree was built over.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The per-dimension fanout `b` (total fanout `b^d`).
    pub fn fanout(&self) -> usize {
        self.b
    }

    /// Height `H` of the tree: the number of levels above the leaves
    /// (`⌈log_b max_j n_j⌉`); 0 for a single-cell cube.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Number of precomputed nodes across all levels — the structure's
    /// space overhead (about `N/(b^d − 1)` cells).
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.max_index.len()).sum()
    }

    /// The order used by the tree.
    pub fn order(&self) -> &O {
        &self.order
    }

    /// `b^level`, the side of the region a node at `level` covers.
    pub(crate) fn side_at(&self, level: usize) -> usize {
        self.b.pow(level as u32)
    }

    /// The region of `A` covered by the node with coordinates `coords` at
    /// `level` (clipped at the cube boundary).
    pub fn node_region(&self, level: usize, coords: &[usize]) -> Region {
        let side = self.side_at(level);
        let ranges: Vec<Range> = coords
            .iter()
            .zip(self.shape.dims())
            .map(|(&c, &n)| {
                Range::new(c * side, ((c + 1) * side - 1).min(n - 1))
                    .expect("node region within bounds")
            })
            .collect();
        Region::new(ranges).expect("d ≥ 1")
    }

    /// The stored arg-max (flat index into `A`) of a node.
    pub fn node_max_index(&self, level: usize, coords: &[usize]) -> usize {
        let l = &self.levels[level - 1];
        l.max_index[l.shape.flatten(coords)]
    }

    /// Exports the per-level node tables (shape dims + stored arg-max
    /// indices) for persistence.
    pub fn export_levels(&self) -> Vec<(Vec<usize>, Vec<usize>)> {
        self.levels
            .iter()
            .map(|l| (l.shape.dims().to_vec(), l.max_index.to_vec()))
            .collect()
    }

    /// Reassembles a tree from exported levels (persistence support).
    /// Structural consistency is validated; value-correctness against a
    /// cube can be audited afterwards with [`MaxTree::check_invariants`].
    ///
    /// # Errors
    /// [`MaxTreeError::FanoutTooSmall`] for `b < 2`, or an
    /// [`ArrayError`](olap_array::ArrayError) when the level shapes do not
    /// form the contraction chain of `shape` under `b`.
    pub fn from_levels(
        shape: Shape,
        b: usize,
        order: O,
        levels: Vec<(Vec<usize>, Vec<usize>)>,
    ) -> Result<Self, MaxTreeError> {
        if b < 2 {
            return Err(MaxTreeError::FanoutTooSmall { b });
        }
        let mut rebuilt = Vec::with_capacity(levels.len());
        let mut expected = shape.clone();
        for (dims, max_index) in levels {
            expected = expected.contract(b)?;
            let level_shape = Shape::new(&dims)?;
            if level_shape != expected {
                return Err(MaxTreeError::Array(ArrayError::DimMismatch {
                    expected: expected.ndim(),
                    actual: level_shape.ndim(),
                }));
            }
            if max_index.len() != level_shape.len() {
                return Err(MaxTreeError::Array(ArrayError::StorageMismatch {
                    expected: level_shape.len(),
                    actual: max_index.len(),
                }));
            }
            if let Some(&bad) = max_index.iter().find(|&&i| i >= shape.len()) {
                return Err(MaxTreeError::Array(ArrayError::OutOfBounds {
                    axis: 0,
                    index: bad,
                    extent: shape.len(),
                }));
            }
            rebuilt.push(Level {
                shape: level_shape,
                max_index: max_index.into(),
            });
        }
        if !expected.dims().iter().all(|&n| n == 1) {
            return Err(MaxTreeError::Array(ArrayError::StorageMismatch {
                expected: 1,
                actual: expected.len(),
            }));
        }
        Ok(MaxTree {
            order,
            shape,
            b,
            levels: rebuilt,
        })
    }

    /// The §6.1.1 addressing scheme, generalized per dimension: a node at
    /// `level` is encoded, on each dimension, as a `λ_j`-digit base-`b`
    /// string (`λ_j = ⌈log_b n_j⌉`) whose trailing `level` digits are `*`
    /// — the common prefix of all leaves it covers. Figure 9's labels
    /// (`01*`, `1**`, `***`, …) come out verbatim for `d = 1`.
    pub fn node_address(&self, level: usize, coords: &[usize]) -> Vec<String> {
        self.shape
            .dims()
            .iter()
            .zip(coords)
            .map(|(&n, &c)| {
                // λ digits for this dimension.
                let mut lambda = 0usize;
                let mut cover = 1usize;
                while cover < n {
                    cover *= self.b;
                    lambda += 1;
                }
                let stars = level.min(lambda);
                let mut digits = vec![b'*'; lambda];
                let mut rest = c;
                for slot in (0..lambda - stars).rev() {
                    digits[slot] = b'0' + (rest % self.b) as u8;
                    rest /= self.b;
                }
                String::from_utf8(digits).expect("ASCII digits")
            })
            .collect()
    }

    /// Validates every node invariant against the cube: the stored index
    /// lies in the node's region and carries its true maximum value.
    /// Intended for tests and for auditing after batch updates.
    pub fn check_invariants(&self, a: &DenseArray<O::Value>) -> Result<(), String> {
        if a.shape() != &self.shape {
            return Err("cube shape mismatch".into());
        }
        for (li, level) in self.levels.iter().enumerate() {
            let lvl = li + 1;
            for coords in level.shape.full_region().iter_indices() {
                let stored = level.max_index[level.shape.flatten(&coords)];
                let region = self.node_region(lvl, &coords);
                let stored_idx = self.shape.unflatten(stored);
                if !region.contains(&stored_idx) {
                    return Err(format!(
                        "level {lvl} node {coords:?}: stored index {stored_idx:?} outside {region}"
                    ));
                }
                let stored_val = a.get_flat(stored);
                for off in a.region_offsets(&region) {
                    if self.order.gt(a.get_flat(off), stored_val) {
                        return Err(format!(
                            "level {lvl} node {coords:?}: cell {off} beats stored max"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs the bottom-up level loop: level 1 is contracted from `A` (children
/// are cells); level `i + 1` from level `i` (children are nodes carrying
/// argmax indices). `make` fills one level's node table given
/// `(child_shape, previous level if any, parent_shape)` — the sequential
/// and threaded builds differ only in that callback.
fn build_levels(
    shape: &Shape,
    b: usize,
    mut make: impl FnMut(&Shape, Option<&Level>, &Shape) -> Box<[usize]>,
) -> Result<Vec<Level>, MaxTreeError> {
    let mut levels: Vec<Level> = Vec::new();
    loop {
        let child_shape = levels
            .last()
            .map(|l| l.shape.clone())
            .unwrap_or_else(|| shape.clone());
        if child_shape.dims().iter().all(|&n| n == 1) {
            break;
        }
        let parent_shape = child_shape.contract(b)?;
        let max_index = make(&child_shape, levels.last(), &parent_shape);
        levels.push(Level {
            shape: parent_shape,
            max_index,
        });
    }
    Ok(levels)
}

/// The per-node kernel shared by both builds: gathers the argmax (as a flat
/// `A` index) over one parent node's children, visiting them in row-major
/// order of the child region with strict first-max-wins comparisons —
/// exactly the per-parent subsequence of the original whole-level scatter
/// walk, so both formulations pick identical indices even among ties.
fn node_max<O: TotalOrder>(
    a: &DenseArray<O::Value>,
    order: &O,
    child_shape: &Shape,
    child_of: Option<&[usize]>,
    parent_shape: &Shape,
    b: usize,
    pflat: usize,
) -> usize {
    let pidx = parent_shape.unflatten(pflat);
    let ranges: Vec<Range> = pidx
        .iter()
        .zip(child_shape.dims())
        .map(|(&c, &n)| {
            Range::new(c * b, ((c + 1) * b - 1).min(n - 1)).expect("child region within bounds")
        })
        .collect();
    let children = Region::new(ranges).expect("d ≥ 1");
    let mut best = usize::MAX;
    for cflat in FlatRegionIter::new(child_shape, &children) {
        // The candidate A-index this child contributes.
        let cand = match child_of {
            None => cflat, // children are cells of A
            Some(m) => m[cflat],
        };
        if best == usize::MAX || order.gt(a.get_flat(cand), a.get_flat(best)) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr14() -> DenseArray<i64> {
        // n = 14, b = 3 — the running example of Figures 9–10.
        DenseArray::from_vec(
            Shape::new(&[14]).unwrap(),
            vec![4, 1, 7, 2, 9, 3, 8, 5, 0, 6, 11, 2, 13, 10],
        )
        .unwrap()
    }

    #[test]
    fn fig9_tree_shape() {
        // Figure 9: n = 14, b = 3 ⇒ levels of 5, 2, 1 nodes; height 3.
        let t = NaturalMaxTree::for_values(&arr14(), 3).unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.levels[0].shape.dims(), &[5]);
        assert_eq!(t.levels[1].shape.dims(), &[2]);
        assert_eq!(t.levels[2].shape.dims(), &[1]);
        assert_eq!(t.node_count(), 8);
    }

    #[test]
    fn node_regions_clip_at_boundary() {
        let t = NaturalMaxTree::for_values(&arr14(), 3).unwrap();
        assert_eq!(
            t.node_region(1, &[4]),
            Region::from_bounds(&[(12, 13)]).unwrap()
        );
        assert_eq!(
            t.node_region(2, &[1]),
            Region::from_bounds(&[(9, 13)]).unwrap()
        );
        assert_eq!(
            t.node_region(3, &[0]),
            Region::from_bounds(&[(0, 13)]).unwrap()
        );
    }

    #[test]
    fn fig9_addressing_scheme() {
        // Figure 9's labels: leaves 000…, level-1 nodes 00*, 01*, …, 10*,
        // level-2 nodes 0**, 1**, root ***.
        let t = NaturalMaxTree::for_values(&arr14(), 3).unwrap();
        assert_eq!(t.node_address(1, &[0]), vec!["00*".to_string()]);
        assert_eq!(t.node_address(1, &[1]), vec!["01*".to_string()]);
        assert_eq!(t.node_address(1, &[3]), vec!["10*".to_string()]);
        assert_eq!(t.node_address(2, &[0]), vec!["0**".to_string()]);
        assert_eq!(t.node_address(2, &[1]), vec!["1**".to_string()]);
        assert_eq!(t.node_address(3, &[0]), vec!["***".to_string()]);
    }

    #[test]
    fn addressing_multi_dimensional() {
        let a = DenseArray::from_fn(Shape::new(&[8, 4]).unwrap(), |i| (i[0] + i[1]) as i64);
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        // λ = (3, 2); a level-1 node at (2, 1) covers rows 4:5, cols 2:3.
        assert_eq!(
            t.node_address(1, &[2, 1]),
            vec!["10*".to_string(), "1*".to_string()]
        );
        // At level 3 the second dimension has collapsed (λ_2 = 2 < 3).
        assert_eq!(
            t.node_address(3, &[0, 0]),
            vec!["***".to_string(), "**".to_string()]
        );
    }

    #[test]
    fn stored_maxima_are_correct() {
        let a = arr14();
        let t = NaturalMaxTree::for_values(&a, 3).unwrap();
        t.check_invariants(&a).unwrap();
        // Root holds the global argmax (value 13 at index 12).
        assert_eq!(t.node_max_index(3, &[0]), 12);
        // Level-1 node 1 covers 3:5 → max 9 at index 4.
        assert_eq!(t.node_max_index(1, &[1]), 4);
    }

    #[test]
    fn two_dimensional_build() {
        let a = DenseArray::from_fn(Shape::new(&[7, 5]).unwrap(), |i| {
            ((i[0] * 31 + i[1] * 17) % 23) as i64
        });
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        t.check_invariants(&a).unwrap();
        // Heights: ceil(log2 7) = 3.
        assert_eq!(t.height(), 3);
        assert_eq!(t.levels[0].shape.dims(), &[4, 3]);
        assert_eq!(t.levels[1].shape.dims(), &[2, 2]);
        assert_eq!(t.levels[2].shape.dims(), &[1, 1]);
    }

    #[test]
    fn degenerate_dimensions_collapse_first() {
        // §6.2: "the tree may degenerate into a lower dimension when it
        // grows higher" — a 16×2 cube with b = 2.
        let a = DenseArray::from_fn(Shape::new(&[16, 2]).unwrap(), |i| (i[0] + i[1]) as i64);
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        assert_eq!(t.height(), 4);
        assert_eq!(t.levels[0].shape.dims(), &[8, 1]);
        assert_eq!(t.levels[3].shape.dims(), &[1, 1]);
        t.check_invariants(&a).unwrap();
    }

    #[test]
    fn build_with_matches_build_bit_identically() {
        // Duplicated values force argmax tie-breaks; both paths must pick
        // the same (first-in-row-major-order) index at every node.
        let a = DenseArray::from_fn(Shape::new(&[9, 6]).unwrap(), |i| {
            ((i[0] * 7 + i[1] * 5) % 4) as i64
        });
        for b in [2usize, 3] {
            let seq = NaturalMaxTree::for_values(&a, b).unwrap();
            for par in [
                Parallelism::Sequential,
                Parallelism::Threads(2),
                Parallelism::Threads(5),
            ] {
                let t = NaturalMaxTree::for_values_with(&a, b, par).unwrap();
                assert_eq!(t.height(), seq.height());
                for (lp, ls) in t.levels.iter().zip(&seq.levels) {
                    assert_eq!(lp.shape, ls.shape, "b = {b}, {par:?}");
                    assert_eq!(lp.max_index, ls.max_index, "b = {b}, {par:?}");
                }
            }
        }
    }

    #[test]
    fn rejects_small_fanout() {
        let a = arr14();
        assert_eq!(
            NaturalMaxTree::for_values(&a, 1).unwrap_err(),
            MaxTreeError::FanoutTooSmall { b: 1 }
        );
    }

    #[test]
    fn single_cell_cube_has_no_levels() {
        let a = DenseArray::filled(Shape::new(&[1, 1]).unwrap(), 5i64);
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        assert_eq!(t.height(), 0);
        t.check_invariants(&a).unwrap();
    }

    #[test]
    fn min_tree_via_reverse_order() {
        let a = arr14();
        let t = NaturalMinTree::for_min_values(&a, 3).unwrap();
        // Under the reversed order the "max" is the minimum (value 0 at 8).
        assert_eq!(t.node_max_index(3, &[0]), 8);
        t.check_invariants(&a).unwrap();
    }

    #[test]
    fn float_values_total_order() {
        let a = DenseArray::from_vec(
            Shape::new(&[6]).unwrap(),
            vec![0.5f64, -2.0, 9.25, 9.25, 3.0, -0.0],
        )
        .unwrap();
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        t.check_invariants(&a).unwrap();
        let root = t.node_max_index(t.height(), &[0]);
        assert_eq!(*a.get_flat(root), 9.25);
    }
}
