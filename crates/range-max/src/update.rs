//! Batch updates for the range-max tree (§7).
//!
//! The algorithm runs up to `H` phases. Phase `i` scans the update list
//! for level `i` once, maintaining per-parent auxiliary state
//! (`tag`, `new_max_index`, `max_value`): `tag = 0` means the parent is
//! untouched, `tag = 1` means its new maximum is already known
//! (`new_max_index`), and `tag = −1` means its maximum was decreased and
//! only a full rescan of the sibling set can recover it. Passive updates
//! are ignored; a decrease is *active* only when it hits the cell holding
//! the parent's current maximum, and any later active increase cancels the
//! pending rescan.
//!
//! One extension beyond the paper's presentation: when a child's maximum
//! *index* moves while its *value* stays equal, we still propagate a
//! "repoint" record so ancestors never hold a stale index (the paper's
//! update list, which carries only new values, would silently skip this).

use crate::tree::{MaxTree, MaxTreeError};
use olap_aggregate::TotalOrder;
use olap_array::DenseArray;
use olap_query::AccessStats;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// One update point: `⟨index, value⟩` — the cell at `index` is assigned
/// `value` (an absolute value, not a delta: MAX has no inverse).
#[derive(Debug, Clone, PartialEq)]
pub struct PointUpdate<V> {
    /// The updated cell of `A`.
    pub index: Vec<usize>,
    /// The new value.
    pub value: V,
}

impl<V> PointUpdate<V> {
    /// Convenience constructor.
    pub fn new(index: &[usize], value: V) -> Self {
        PointUpdate {
            index: index.to_vec(),
            value,
        }
    }
}

/// A change that one level reports to the next: the child's maximum moved
/// from `(old_max, old_val)` to `(new_max, new_val)` (indices are flat
/// indices into `A`).
#[derive(Debug, Clone)]
struct Change<V> {
    /// Flat coordinate of the child in its own level's index space.
    child_flat: usize,
    old_max: usize,
    old_val: V,
    new_max: usize,
    new_val: V,
}

impl<O: TotalOrder> MaxTree<O> {
    /// Applies a batch of point updates to the cube **and** the tree,
    /// phase by phase (§7). The paper assumes distinct indices; duplicate
    /// indices are coalesced here by keeping the last value.
    ///
    /// Returns access statistics (rescans dominate the cost).
    ///
    /// # Errors
    /// Validates every index against the cube shape.
    pub fn batch_update(
        &mut self,
        a: &mut DenseArray<O::Value>,
        updates: &[PointUpdate<O::Value>],
    ) -> Result<AccessStats, MaxTreeError> {
        for u in updates {
            self.shape.check_index(&u.index)?;
        }
        let mut stats = AccessStats::new();
        // Coalesce duplicates, keeping the last value for each index.
        let mut dedup: BTreeMap<usize, O::Value> = BTreeMap::new();
        for u in updates {
            dedup.insert(self.shape.flatten(&u.index), u.value.clone());
        }
        // Phase 0: apply to A, recording old → new for the first tree level.
        let mut changes: Vec<Change<O::Value>> = Vec::new();
        for (flat, value) in dedup {
            let old = a.get_flat(flat).clone();
            stats.read_a(1);
            if self.order.cmp_values(&old, &value) == Ordering::Equal {
                continue; // "we ignore an update that does not change the value"
            }
            *a.get_flat_mut(flat) = value.clone();
            changes.push(Change {
                child_flat: flat,
                old_max: flat,
                old_val: old,
                new_max: flat,
                new_val: value,
            });
        }
        // Phases 1..=H: propagate, terminating early when a level absorbs
        // every change.
        for parent_level in 1..=self.height() {
            if changes.is_empty() {
                break;
            }
            changes = self.propagate(a, parent_level, changes, &mut stats);
        }
        Ok(stats)
    }

    /// Runs one phase: applies the level-`parent_level − 1` changes to the
    /// `parent_level` nodes and returns the changes to report upward.
    fn propagate(
        &mut self,
        a: &DenseArray<O::Value>,
        parent_level: usize,
        changes: Vec<Change<O::Value>>,
        stats: &mut AccessStats,
    ) -> Vec<Change<O::Value>> {
        let b = self.b;
        let child_shape = if parent_level == 1 {
            self.shape.clone()
        } else {
            self.levels[parent_level - 2].shape.clone()
        };
        let parent_shape = self.levels[parent_level - 1].shape.clone();
        // Group the changes by parent node, preserving list order.
        let mut groups: BTreeMap<usize, Vec<Change<O::Value>>> = BTreeMap::new();
        let mut child_idx = vec![0usize; child_shape.ndim()];
        let mut parent_idx = vec![0usize; parent_shape.ndim()];
        for ch in changes {
            child_shape.unflatten_into(ch.child_flat, &mut child_idx);
            for (p, &c) in parent_idx.iter_mut().zip(child_idx.iter()) {
                *p = c / b;
            }
            groups
                .entry(parent_shape.flatten(&parent_idx))
                .or_default()
                .push(ch);
        }
        let mut out = Vec::new();
        for (pflat, group) in groups {
            let stored = self.levels[parent_level - 1].max_index[pflat];
            stats.visit_nodes(1);
            // v0: the parent's pre-batch max value. If the cell holding it
            // was touched this batch, exactly one change records its old
            // value; otherwise A still holds it.
            let orig_val = group
                .iter()
                .find(|c| c.old_max == stored)
                .map(|c| c.old_val.clone())
                .unwrap_or_else(|| a.get_flat(stored).clone());
            let mut tag: i8 = 0;
            let mut nmi = stored;
            let mut max_val = orig_val.clone();
            for ch in &group {
                match self.order.cmp_values(&ch.new_val, &ch.old_val) {
                    Ordering::Greater => {
                        // Rules 1(b)/1(c): an active increase beats the
                        // best known, or recovers an equal value after a
                        // pending rescan.
                        match self.order.cmp_values(&ch.new_val, &max_val) {
                            Ordering::Greater => {
                                tag = 1;
                                nmi = ch.new_max;
                                max_val = ch.new_val.clone();
                            }
                            Ordering::Equal if tag == -1 => {
                                tag = 1;
                                nmi = ch.new_max;
                            }
                            _ => {}
                        }
                    }
                    Ordering::Less => {
                        // Rule 2(b): active only against the tracked max.
                        if ch.old_max == nmi && tag == 0 {
                            tag = -1;
                        }
                    }
                    Ordering::Equal => {
                        // Repoint: same value, new index (see module docs).
                        if ch.old_max == nmi {
                            nmi = ch.new_max;
                        }
                    }
                }
            }
            let (new_y, new_val) = if tag == -1 {
                // Rescan the whole sibling set S covered by this parent.
                self.rescan(a, parent_level, pflat, &parent_shape, &child_shape, stats)
            } else {
                (nmi, max_val)
            };
            let index_changed = new_y != stored;
            let value_changed = self.order.cmp_values(&new_val, &orig_val) != Ordering::Equal;
            if index_changed || value_changed {
                self.levels[parent_level - 1].max_index[pflat] = new_y;
                // Even an equal-value index move must propagate: an
                // ancestor may point at the abandoned index (see module
                // docs on repointing).
                out.push(Change {
                    child_flat: pflat,
                    old_max: stored,
                    old_val: orig_val,
                    new_max: new_y,
                    new_val,
                });
            }
        }
        out
    }

    /// Searches all children of a parent for the new argmax (`tag = −1`).
    fn rescan(
        &self,
        a: &DenseArray<O::Value>,
        parent_level: usize,
        pflat: usize,
        parent_shape: &olap_array::Shape,
        child_shape: &olap_array::Shape,
        stats: &mut AccessStats,
    ) -> (usize, O::Value) {
        let b = self.b;
        let pcoords = parent_shape.unflatten(pflat);
        let lo: Vec<usize> = pcoords.iter().map(|&c| c * b).collect();
        let hi: Vec<usize> = pcoords
            .iter()
            .zip(child_shape.dims())
            .map(|(&c, &n)| ((c + 1) * b - 1).min(n - 1))
            .collect();
        let mut best: Option<usize> = None;
        let mut cur = lo.clone();
        loop {
            let child_flat = child_shape.flatten(&cur);
            let cand = if parent_level == 1 {
                stats.read_a(1);
                child_flat
            } else {
                stats.visit_nodes(1);
                self.levels[parent_level - 2].max_index[child_flat]
            };
            match best {
                None => best = Some(cand),
                Some(cb) => {
                    if self.order.gt(a.get_flat(cand), a.get_flat(cb)) {
                        best = Some(cand);
                    }
                }
            }
            // Odometer.
            let mut axis = cur.len();
            loop {
                if axis == 0 {
                    let y = best.expect("parent has at least one child");
                    return (y, a.get_flat(y).clone());
                }
                axis -= 1;
                if cur[axis] < hi[axis] {
                    cur[axis] += 1;
                    break;
                }
                cur[axis] = lo[axis];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaturalMaxTree;
    use olap_array::{Region, Shape};

    fn build(data: Vec<i64>, n: usize, b: usize) -> (DenseArray<i64>, NaturalMaxTree<i64>) {
        let a = DenseArray::from_vec(Shape::new(&[n]).unwrap(), data).unwrap();
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        (a, t)
    }

    #[test]
    fn increase_propagates_to_root() {
        let (mut a, mut t) = build(vec![4, 1, 7, 2, 9, 3, 8, 5, 0, 6, 11, 2, 13, 10], 14, 3);
        t.batch_update(&mut a, &[PointUpdate::new(&[1], 99)])
            .unwrap();
        t.check_invariants(&a).unwrap();
        assert_eq!(t.node_max_index(3, &[0]), 1);
        assert_eq!(*a.get(&[1]), 99);
    }

    #[test]
    fn decrease_of_global_max_triggers_rescan() {
        let (mut a, mut t) = build(vec![4, 1, 7, 2, 9, 3, 8, 5, 0, 6, 11, 2, 13, 10], 14, 3);
        // 13 at index 12 is the global max; drop it below everything.
        let stats = t
            .batch_update(&mut a, &[PointUpdate::new(&[12], -1)])
            .unwrap();
        t.check_invariants(&a).unwrap();
        // New global max is 11 at index 10.
        assert_eq!(t.node_max_index(3, &[0]), 10);
        // The rescans actually touched nodes.
        assert!(stats.total_accesses() > 1);
    }

    #[test]
    fn passive_updates_do_not_propagate() {
        let (mut a, mut t) = build(vec![4, 1, 7, 2, 9, 3, 8, 5, 0, 6, 11, 2, 13, 10], 14, 3);
        let snapshot: Vec<usize> = (1..=3).map(|l| t.node_max_index(l, &[0; 1])).collect();
        // Increase a non-max cell to a still-passive value.
        t.batch_update(&mut a, &[PointUpdate::new(&[1], 2)])
            .unwrap();
        t.check_invariants(&a).unwrap();
        let after: Vec<usize> = (1..=3).map(|l| t.node_max_index(l, &[0; 1])).collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn increase_then_decrease_cancels_rescan() {
        // Rule 2(b): the decrease of the old max is ignored when an active
        // increase came first.
        let (mut a, mut t) = build(vec![1, 2, 3, 4, 5, 6, 7, 8, 9], 9, 3);
        let updates = [PointUpdate::new(&[0], 100), PointUpdate::new(&[8], 0)];
        t.batch_update(&mut a, &updates).unwrap();
        t.check_invariants(&a).unwrap();
        assert_eq!(t.node_max_index(2, &[0]), 0);
    }

    #[test]
    fn decrease_then_equal_increase_recovers() {
        // Rule 1(c): after the max is decreased (tag = −1), a later
        // increase reaching the same tracked value recovers without rescan.
        let (mut a, mut t) = build(vec![5, 1, 1, 1, 1, 1, 1, 1, 1], 9, 3);
        let updates = [PointUpdate::new(&[0], 2), PointUpdate::new(&[1], 5)];
        t.batch_update(&mut a, &updates).unwrap();
        t.check_invariants(&a).unwrap();
    }

    #[test]
    fn equal_value_repoint_keeps_ancestors_fresh() {
        // Two cells share the max value; the stored one is decreased while
        // an equal holder exists. Ancestors must repoint, not dangle.
        let (mut a, mut t) = build(vec![9, 1, 1, 1, 1, 1, 1, 1, 9], 9, 3);
        let root_before = t.node_max_index(2, &[0]);
        let dropped = root_before; // whichever copy of 9 the root points at
        t.batch_update(&mut a, &[PointUpdate::new(&[dropped], 0)])
            .unwrap();
        t.check_invariants(&a).unwrap();
        let root_after = t.node_max_index(2, &[0]);
        assert_eq!(*a.get_flat(root_after), 9);
        assert_ne!(root_after, dropped);
    }

    #[test]
    fn duplicate_indices_keep_last() {
        let (mut a, mut t) = build(vec![1, 1, 1, 1], 4, 2);
        let updates = [PointUpdate::new(&[2], 50), PointUpdate::new(&[2], 7)];
        t.batch_update(&mut a, &updates).unwrap();
        assert_eq!(*a.get(&[2]), 7);
        t.check_invariants(&a).unwrap();
    }

    #[test]
    fn two_dimensional_batch() {
        let shape = Shape::new(&[6, 6]).unwrap();
        let mut a = DenseArray::from_fn(shape, |i| ((i[0] * 7 + i[1] * 5) % 11) as i64);
        let mut t = NaturalMaxTree::for_values(&a, 2).unwrap();
        let updates = [
            PointUpdate::new(&[0, 0], 40),
            PointUpdate::new(&[5, 5], -3),
            PointUpdate::new(&[3, 2], 41),
            PointUpdate::new(&[0, 0], 1), // duplicate; keeps 1
        ];
        t.batch_update(&mut a, &updates).unwrap();
        t.check_invariants(&a).unwrap();
        let q = Region::from_bounds(&[(0, 5), (0, 5)]).unwrap();
        let (idx, v) = t.range_max(&a, &q).unwrap();
        assert_eq!((idx, v), (vec![3, 2], 41));
    }

    #[test]
    fn rejects_out_of_bounds_update() {
        let (mut a, mut t) = build(vec![1, 2, 3, 4], 4, 2);
        assert!(t
            .batch_update(&mut a, &[PointUpdate::new(&[4], 9)])
            .is_err());
    }

    #[test]
    fn queries_after_many_batches_stay_correct() {
        let (mut a, mut t) = build((0..27).map(|x| (x * 17 % 23) as i64).collect(), 27, 3);
        for round in 0..10 {
            let updates: Vec<PointUpdate<i64>> = (0..5)
                .map(|k| {
                    let idx = (round * 11 + k * 7) % 27;
                    PointUpdate::new(&[idx], ((round * k) as i64 % 13) - 6)
                })
                .collect();
            t.batch_update(&mut a, &updates).unwrap();
            t.check_invariants(&a).unwrap();
        }
        for l in 0..27 {
            for h in l..27 {
                let q = Region::from_bounds(&[(l, h)]).unwrap();
                let naive = a.fold_region(&q, i64::MIN, |m, &x| m.max(x));
                assert_eq!(t.range_max(&a, &q).unwrap().1, naive);
            }
        }
    }
}
