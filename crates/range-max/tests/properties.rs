//! Property-based tests: the branch-and-bound search equals a naive scan
//! under every option combination, and batch updates preserve every node
//! invariant.

use olap_array::{DenseArray, Region, Shape};
use olap_range_max::{NaturalMaxTree, PointUpdate, SearchOptions};
use proptest::prelude::*;

fn arb_cube() -> impl Strategy<Value = DenseArray<i64>> {
    prop::collection::vec(2usize..8, 1..=3).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1000i64..1000, len)
            .prop_map(move |data| DenseArray::from_vec(Shape::new(&dims).unwrap(), data).unwrap())
    })
}

fn arb_region(shape: &Shape) -> impl Strategy<Value = Region> {
    let dims = shape.dims().to_vec();
    let per_dim: Vec<_> = dims
        .iter()
        .map(|&n| (0..n, 0..n).prop_map(|(a, b)| (a.min(b), a.max(b))))
        .collect();
    per_dim.prop_map(|bounds| Region::from_bounds(&bounds).unwrap())
}

fn naive_max(a: &DenseArray<i64>, q: &Region) -> i64 {
    a.fold_region(q, i64::MIN, |m, &x| m.max(x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn search_matches_naive(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 2usize..5)
        })
    ) {
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        let expected = naive_max(&a, &q);
        for bb in [true, false] {
            for lcs in [true, false] {
                for sort in [true, false] {
                    let opts = SearchOptions {
                        lowest_covering_start: lcs,
                        branch_and_bound: bb,
                        sort_boundary: sort,
                    };
                    let (idx, v, _) = t.range_max_with_options(&a, &q, opts).unwrap();
                    prop_assert_eq!(v, expected);
                    prop_assert!(q.contains(&idx));
                    prop_assert_eq!(*a.get(&idx), expected);
                }
            }
        }
    }

    #[test]
    fn search_never_beats_volume(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 2usize..5)
        })
    ) {
        // Sanity on the cost model: the search touches at most a constant
        // factor of the query volume plus the path down the tree.
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        let (_, _, stats) = t.range_max_with_stats(&a, &q).unwrap();
        let budget = (q.volume() as u64 + 2) * 4 + 8 * (t.height() as u64 + 1);
        prop_assert!(
            stats.total_accesses() <= budget,
            "{} accesses for volume {}", stats.total_accesses(), q.volume()
        );
    }

    #[test]
    fn one_dim_worst_case_is_logarithmic_in_r(
        seed in 0u64..50,
    ) {
        // §6.1.3: the 1-d search accesses O(b·log_b r) nodes. Check the
        // concrete bound 3·b·(log_b r + 2) over random data and ranges.
        let b = 3usize;
        let n = 2187; // 3^7
        let a = DenseArray::from_fn(Shape::new(&[n]).unwrap(), |i| {
            ((i[0] as u64).wrapping_mul(2654435761).wrapping_add(seed) % 100_000) as i64
        });
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        for k in 0..20u64 {
            let r = 2usize + ((seed * 31 + k * 97) as usize % (n / 2));
            let lo = ((seed * 13 + k * 41) as usize) % (n - r);
            let q = Region::from_bounds(&[(lo, lo + r - 1)]).unwrap();
            let (_, _, stats) = t.range_max_with_stats(&a, &q).unwrap();
            let budget = 3.0 * b as f64 * ((r as f64).log(b as f64) + 2.0);
            prop_assert!(
                (stats.total_accesses() as f64) <= budget,
                "r={} accesses={} budget={:.0}",
                r,
                stats.total_accesses(),
                budget
            );
        }
    }

    #[test]
    fn batch_update_preserves_invariants(
        (a, b, updates) in arb_cube().prop_flat_map(|a| {
            let dims = a.shape().dims().to_vec();
            let upd = prop::collection::vec(
                (
                    dims.iter().map(|&n| 0..n).collect::<Vec<_>>(),
                    -2000i64..2000,
                ),
                0..10,
            );
            (Just(a), 2usize..4, upd)
        })
    ) {
        let mut a = a;
        let mut t = NaturalMaxTree::for_values(&a, b).unwrap();
        let updates: Vec<PointUpdate<i64>> = updates
            .iter()
            .map(|(idx, v)| PointUpdate::new(idx, *v))
            .collect();
        t.batch_update(&mut a, &updates).unwrap();
        prop_assert!(t.check_invariants(&a).is_ok(), "{:?}", t.check_invariants(&a));
        // And a full-cube query returns the global maximum.
        let q = a.shape().full_region();
        let (_, v) = t.range_max(&a, &q).unwrap();
        prop_assert_eq!(v, naive_max(&a, &q));
    }

    #[test]
    fn incremental_equals_rebuild_semantics(
        (a, b, updates) in arb_cube().prop_flat_map(|a| {
            let dims = a.shape().dims().to_vec();
            let upd = prop::collection::vec(
                (
                    dims.iter().map(|&n| 0..n).collect::<Vec<_>>(),
                    -2000i64..2000,
                ),
                1..6,
            );
            (Just(a), 2usize..4, upd)
        })
    ) {
        // The incrementally-updated tree answers every query like a tree
        // rebuilt from scratch (indices may differ on ties; values match).
        let mut a = a;
        let mut t = NaturalMaxTree::for_values(&a, b).unwrap();
        let updates: Vec<PointUpdate<i64>> = updates
            .iter()
            .map(|(idx, v)| PointUpdate::new(idx, *v))
            .collect();
        t.batch_update(&mut a, &updates).unwrap();
        let fresh = NaturalMaxTree::for_values(&a, b).unwrap();
        for level in 1..=t.height() {
            let dims: Vec<usize> = a
                .shape()
                .dims()
                .iter()
                .map(|&n| n.div_ceil(b.pow(level as u32)))
                .collect();
            for coords in Shape::new(&dims).unwrap().full_region().iter_indices() {
                let vi = *a.get_flat(t.node_max_index(level, &coords));
                let vf = *a.get_flat(fresh.node_max_index(level, &coords));
                prop_assert_eq!(vi, vf, "level {} node {:?}", level, coords);
            }
        }
    }
}
