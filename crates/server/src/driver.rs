//! The seeded mixed-workload load driver behind `olap-cli serve`.
//!
//! [`drive_load`] runs `phases` rounds against a [`CubeServer`]. Each
//! phase pins the pre-update cube state, launches `readers` concurrent
//! reader threads over a seeded mix of sum/max/min range queries, and —
//! while those readers are in flight — installs one seeded single-shard
//! update batch through [`CubeServer::apply_updates`]. Because a
//! single-shard batch installs globally atomically (one snapshot swap),
//! every reader answer must be bit-identical to the **pre-** or
//! **post-update sequential oracle** — a naive fold over a shadow copy
//! of the cube. Any third value is a torn read and is counted as a
//! mismatch.
//!
//! The driver never blocks readers on the install: writers derive
//! copy-on-write successors off the serving path, which is the property
//! the whole snapshot refactor exists to provide.
//!
//! With the per-shard semantic caches in the serving path, the same
//! oracle pair also proves every cached and ±-assembled answer
//! bit-identical across installs: a cache entry only survives an install
//! when its region misses the update batch, in which case pre and post
//! oracles agree on it. Setting [`LoadSpec::zipf_pool`] switches the
//! query stream from uniform to Zipf-skewed repeats, the locality the
//! cache exists to exploit; the final [`LoadReport::cache`] counters
//! record what it did.

use crate::{CubeServer, ServerAnswer, ServerError};
use olap_array::{DenseArray, Region};
use olap_engine::CacheStats;
use olap_query::RangeQuery;
use olap_workload::{uniform_regions, zipf_regions};
use std::sync::atomic::{AtomicU64, Ordering};

/// Workload parameters for [`drive_load`].
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Rounds of (concurrent readers + one update install).
    pub phases: usize,
    /// Queries per phase, split across the reader threads.
    pub queries_per_phase: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Cells per update batch (all within one shard's slab).
    pub batch: usize,
    /// Seeds queries, update sites, and values.
    pub seed: u64,
    /// When nonzero, draw each phase's queries Zipf-skewed from a pool of
    /// this many distinct regions (exponent 1.1) instead of uniformly —
    /// the repeat-heavy locality workload the semantic cache exploits.
    pub zipf_pool: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            phases: 8,
            queries_per_phase: 48,
            readers: 4,
            batch: 3,
            seed: 7,
            zipf_pool: 0,
        }
    }
}

/// What a [`drive_load`] run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Answers returned by the server.
    pub answers: u64,
    /// Answers equal to neither the pre- nor the post-update oracle.
    pub mismatches: u64,
    /// Update batches installed.
    pub updates: u64,
    /// Phases driven.
    pub phases: usize,
    /// Reader threads per phase.
    pub readers: usize,
    /// Answers served from a degradation tier (a bounded-error
    /// [`crate::ServedEstimate`] whose interval was checked against the
    /// oracle pair instead of bit-identity).
    pub degraded: u64,
    /// Aggregated semantic-cache counters at the end of the run.
    pub cache: CacheStats,
}

impl LoadReport {
    /// Whether every answer matched an oracle state: exact answers
    /// bit-identical, degraded answers' intervals containing an oracle.
    pub fn passed(&self) -> bool {
        self.mismatches == 0 && self.answers > 0
    }
}

/// SplitMix64: the workspace's seeded-stream idiom.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The sequential oracle for one query on one cube state.
fn oracle(cube: &DenseArray<i64>, region: &Region, op: u64) -> i64 {
    match op {
        0 => cube.fold_region(region, i64::MIN, |m, &x| m.max(x)),
        1 => cube.fold_region(region, i64::MAX, |m, &x| m.min(x)),
        _ => cube.fold_region(region, 0i64, |s, &x| s + x),
    }
}

/// The answer the server gives for the same query.
fn served(server: &CubeServer, q: &RangeQuery, op: u64) -> Result<ServerAnswer, ServerError> {
    match op {
        0 => server.range_max(q),
        1 => server.range_min(q),
        _ => server.range_sum(q),
    }
}

/// One phase's seeded single-shard update batch, in global coordinates.
fn phase_batch(server: &CubeServer, spec: &LoadSpec, phase: usize) -> Vec<(Vec<usize>, i64)> {
    let stats = server.shard_stats();
    let Some(shard) = stats.get(phase % stats.len().max(1)) else {
        return Vec::new();
    };
    let (row_lo, row_hi) = shard.rows;
    let shape = server.shape();
    let mut batch = Vec::with_capacity(spec.batch);
    for j in 0..spec.batch {
        let r = mix(spec.seed ^ ((phase as u64) << 24) ^ ((j as u64) << 8));
        let mut idx = Vec::with_capacity(shape.ndim());
        for (d, &n) in shape.dims().iter().enumerate() {
            let v = mix(r ^ (d as u64)) as usize;
            if d == 0 {
                idx.push(row_lo + v % (row_hi - row_lo + 1));
            } else {
                idx.push(v % n);
            }
        }
        batch.push((idx, (r % 2001) as i64 - 1000));
    }
    batch
}

/// Drives the seeded concurrent workload and tallies oracle agreement.
///
/// `cube` must be the exact array the server was built from; the driver
/// maintains its own sequential shadow from it.
///
/// # Errors
/// Build/validation/engine failures from the server. Oracle
/// *disagreement* is not an error — it is counted in
/// [`LoadReport::mismatches`] so callers can report it.
pub fn drive_load(
    server: &CubeServer,
    cube: &DenseArray<i64>,
    spec: &LoadSpec,
) -> Result<LoadReport, ServerError> {
    let mut shadow = cube.clone();
    let answers = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let mut updates = 0u64;
    let readers = spec.readers.max(1);
    let first_error: std::sync::Mutex<Option<ServerError>> = std::sync::Mutex::new(None);

    for phase in 0..spec.phases {
        let phase_seed = mix(spec.seed ^ ((phase as u64) << 40));
        let regions = if spec.zipf_pool > 0 {
            // Seeded off `seed` alone so the pool — and the hot head of
            // the distribution — is the same in every phase; what varies
            // across phases is the op mix and the update batch.
            zipf_regions(
                server.shape(),
                spec.queries_per_phase,
                spec.zipf_pool,
                1.1,
                mix(spec.seed),
            )
        } else {
            uniform_regions(server.shape(), spec.queries_per_phase, phase_seed)
        };
        let batch = phase_batch(server, spec, phase);
        let mut post = shadow.clone();
        for (idx, v) in &batch {
            *post.get_mut(idx) = *v;
        }
        // Per-query oracle pair: the answer must be one of these two.
        let cases: Vec<(RangeQuery, u64, i64, i64)> = regions
            .iter()
            .enumerate()
            .map(|(i, region)| {
                let op = mix(spec.seed ^ ((phase as u64) << 16) ^ (i as u64)) % 4;
                let pre = oracle(&shadow, region, op);
                let after = oracle(&post, region, op);
                (RangeQuery::from_region(region), op, pre, after)
            })
            .collect();

        // Readers re-enter the driving thread's telemetry scope, so the
        // per-shard latency histograms the server feeds during fan-out
        // land in the caller's registry, not nowhere.
        let telemetry = crate::server::capture_scope();
        std::thread::scope(|scope| {
            for r in 0..readers {
                let cases = &cases;
                let answers = &answers;
                let mismatches = &mismatches;
                let degraded = &degraded;
                let first_error = &first_error;
                let telemetry = telemetry.clone();
                scope.spawn(move || {
                    crate::server::enter_scope(telemetry, move || {
                        for (q, op, pre, after) in cases.iter().skip(r).step_by(readers) {
                            match served(server, q, *op) {
                                Ok(got) => {
                                    // ordering: Relaxed — monotonic tallies read
                                    // only after the scope joins every reader.
                                    answers.fetch_add(1, Ordering::Relaxed);
                                    if got.is_degraded() {
                                        // ordering: Relaxed — same tally contract.
                                        degraded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    // Exact answers must be bit-identical
                                    // to an oracle state; degraded answers
                                    // must bracket one with their
                                    // guaranteed interval.
                                    if !got.contains(*pre) && !got.contains(*after) {
                                        // ordering: Relaxed — same tally contract.
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(e) => {
                                    let mut slot =
                                        first_error.lock().unwrap_or_else(|p| p.into_inner());
                                    slot.get_or_insert(e);
                                }
                            }
                        }
                    })
                });
            }
            // Install the batch while the readers are mid-flight: the
            // whole point is that nothing blocks and nothing tears.
            if !batch.is_empty() {
                match server.apply_updates(&batch) {
                    Ok(_) => updates += 1,
                    Err(e) => {
                        let mut slot = first_error.lock().unwrap_or_else(|p| p.into_inner());
                        slot.get_or_insert(e);
                    }
                }
            }
        });
        if let Some(e) = first_error.lock().unwrap_or_else(|p| p.into_inner()).take() {
            return Err(e);
        }
        shadow = post;
    }

    Ok(LoadReport {
        // ordering: Relaxed — every writer thread joined at the end of
        // its scope, so these reads are already synchronized.
        answers: answers.load(Ordering::Relaxed),
        // ordering: Relaxed — same post-join read as `answers` above.
        mismatches: mismatches.load(Ordering::Relaxed),
        updates,
        phases: spec.phases,
        readers,
        // ordering: Relaxed — same post-join read as `answers` above.
        degraded: degraded.load(Ordering::Relaxed),
        cache: server.cache_stats(),
    })
}
