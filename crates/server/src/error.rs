//! The serving layer's error surface.

use olap_array::ArrayError;
use olap_engine::EngineError;
use std::fmt;

/// Everything that can go wrong building or querying a
/// [`crate::CubeServer`].
#[derive(Debug)]
pub enum ServerError {
    /// The server could not be assembled as configured.
    Config(String),
    /// A query or update batch failed validation against the served
    /// cube's shape, before touching any shard.
    Validation(ArrayError),
    /// A shard's router reported a failure (all failover candidates
    /// exhausted, a budget interrupt, or an update derive error).
    Engine(EngineError),
    /// A shard's worker thread is gone; the server can no longer answer
    /// for that slab.
    ShardUnavailable {
        /// Index of the dead shard.
        shard: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(msg) => write!(f, "server configuration: {msg}"),
            ServerError::Validation(e) => write!(f, "validation: {e}"),
            ServerError::Engine(e) => write!(f, "engine: {e}"),
            ServerError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} worker is unavailable")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Validation(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<ArrayError> for ServerError {
    fn from(e: ArrayError) -> Self {
        ServerError::Validation(e)
    }
}
