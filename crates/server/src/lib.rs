//! The sharded, snapshot-isolated serving layer over the engine crate.
//!
//! [`CubeServer`] partitions a dense cube into contiguous slabs along the
//! leading dimension and gives each slab to a worker thread with its own
//! [`olap_engine::AdaptiveRouter`] — the PR-4 failover/circuit-breaker
//! machinery, now shareable because every router method takes `&self`.
//! Queries fan out to the shards their region overlaps and the partial
//! answers recombine (sums add; argmax/argmin map back to global
//! coordinates). Batched updates derive copy-on-write successor snapshots
//! per shard and install them atomically, so in-flight queries finish on
//! the snapshot they pinned — readers are never blocked by a writer.
//!
//! Each worker answers sums through a per-shard
//! [`olap_engine::SemanticCache`] (repeat regions hit, contained regions
//! assemble by ±-combination, installs invalidate region-wise) and
//! batch-plans its queue so overlapping queries share one super-region
//! execution; see the `server` module docs.
//!
//! [`drive_load`] is the seeded mixed-workload driver behind
//! `olap-cli serve`: phases of concurrent readers racing one single-shard
//! update batch, every answer asserted bit-identical to the pre- or
//! post-update sequential oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed errors; panicking escape
// hatches are denied outside test builds (tests may unwrap). See the
// matching attribute in olap-engine.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod driver;
mod error;
#[cfg(feature = "telemetry")]
mod metrics_http;
mod server;

pub use driver::{drive_load, LoadReport, LoadSpec};
pub use error::ServerError;
#[cfg(feature = "telemetry")]
pub use metrics_http::{
    degraded_fraction_report, publish_latency_quantiles, slo_report, DegradedFractionViolation,
    MetricsServer, SloViolation,
};
pub use olap_engine::CacheStats;
pub use server::{CubeServer, ServeConfig, ServedEstimate, ServerAnswer, ShardStats, SloSpec};
