//! A live scrape endpoint and SLO evaluation over the telemetry registry.
//!
//! [`MetricsServer`] is a deliberately tiny HTTP/1.0 responder on a
//! std-`TcpListener` — no framework, one thread, connection-per-request —
//! because a scrape endpoint's whole job is "render the registry and
//! hang up". It serves:
//!
//! - `GET /metrics` — Prometheus text exposition (with `# HELP`/`# TYPE`
//!   per family). Each scrape first refreshes the derived per-shard
//!   quantile gauges via [`publish_latency_quantiles`], so
//!   `olap_serve_latency_p99_ns{shard="shard-0"}` is live at read time.
//! - `GET /metrics.json` — the same registry as JSON.
//!
//! [`slo_report`] evaluates a declarative [`SloSpec`] against the
//! per-shard latency histograms and returns the violations — the check
//! `olap-cli serve --slo-p99-ms` prints and exits nonzero on.

use crate::server::SloSpec;
use olap_telemetry::{MetricValue, Registry, Telemetry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-shard serve-latency histogram family fed by `CubeServer`'s
/// fan-out collector.
const LATENCY_FAMILY: &str = "olap_serve_latency_ns";

/// Derives the per-shard latency quantile gauges
/// (`olap_serve_latency_p{50,95,99}_ns{shard=…}`) from the current
/// contents of the `olap_serve_latency_ns` histograms. Quantiles are
/// log2-bucket upper bounds — the resolution the registry's histograms
/// carry. Called on every `/metrics` scrape; harmless to call anytime.
pub fn publish_latency_quantiles(registry: &Registry) {
    for m in registry.snapshot() {
        if m.name != LATENCY_FAMILY {
            continue;
        }
        let MetricValue::Histogram(h) = &m.value else {
            continue;
        };
        let shard = m.label("shard").unwrap_or("all");
        for (name, q, _) in quantile_points() {
            registry
                .gauge(
                    &format!("olap_serve_latency_{name}_ns"),
                    &[("shard", shard)],
                )
                .set(h.quantile(q) as f64);
        }
    }
}

/// The quantiles the scrape layer derives, as `(name, q, _)` triples
/// (the third slot mirrors [`SloSpec::bounds`] so the two stay zippable).
fn quantile_points() -> [(&'static str, f64, ()); 3] {
    [("p50", 0.50, ()), ("p95", 0.95, ()), ("p99", 0.99, ())]
}

/// One quantile bound a shard is currently violating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloViolation {
    /// The shard label (`shard-0`, …).
    pub shard: String,
    /// Which bound (`p50`, `p95`, `p99`).
    pub quantile: &'static str,
    /// The observed quantile, nanoseconds (log2-bucket resolution).
    pub observed_ns: u64,
    /// The configured limit, nanoseconds.
    pub limit_ns: u64,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {}ns exceeds SLO {}ns",
            self.shard, self.quantile, self.observed_ns, self.limit_ns
        )
    }
}

/// Checks every shard's serve-latency quantiles against `slo` and
/// returns the violations (empty means the objective holds). Shards with
/// no recorded samples pass vacuously.
pub fn slo_report(registry: &Registry, slo: &SloSpec) -> Vec<SloViolation> {
    let bounds = slo.bounds();
    let mut violations = Vec::new();
    for m in registry.snapshot() {
        if m.name != LATENCY_FAMILY {
            continue;
        }
        let MetricValue::Histogram(h) = &m.value else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        let shard = m.label("shard").unwrap_or("all");
        for &(name, q, limit_ns) in &bounds {
            let observed_ns = h.quantile(q);
            if observed_ns > limit_ns {
                violations.push(SloViolation {
                    shard: shard.to_string(),
                    quantile: name,
                    observed_ns,
                    limit_ns,
                });
            }
        }
    }
    violations
}

/// The serve-level answer counters behind the degraded-fraction check.
const ANSWERS_TOTAL: &str = "olap_serve_answers_total";
const DEGRADED_TOTAL: &str = "olap_serve_degraded_total";

/// The server is degrading more of its answers than the SLO tolerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedFractionViolation {
    /// Degraded answers observed since the registry was created.
    pub degraded: u64,
    /// Total answers observed.
    pub total: u64,
    /// The observed degraded fraction, permille.
    pub observed_per_mille: u64,
    /// The configured [`SloSpec::max_degraded_per_mille`] bound.
    pub limit_per_mille: u64,
}

impl std::fmt::Display for DegradedFractionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded answers {}/{} = {}‰ exceeds SLO {}‰",
            self.degraded, self.total, self.observed_per_mille, self.limit_per_mille
        )
    }
}

/// Checks the degraded-answer fraction (`olap_serve_degraded_total` over
/// `olap_serve_answers_total`) against
/// [`SloSpec::max_degraded_per_mille`]. `None` when the bound holds, the
/// spec sets no bound, or no answers have been recorded (vacuous pass,
/// matching [`slo_report`]'s empty-histogram convention).
pub fn degraded_fraction_report(
    registry: &Registry,
    slo: &SloSpec,
) -> Option<DegradedFractionViolation> {
    let limit_per_mille = slo.max_degraded_per_mille?;
    let mut total = 0u64;
    let mut degraded = 0u64;
    for m in registry.snapshot() {
        if let MetricValue::Counter(c) = m.value {
            match &*m.name {
                ANSWERS_TOTAL => total += c,
                DEGRADED_TOTAL => degraded += c,
                _ => {}
            }
        }
    }
    if total == 0 {
        return None;
    }
    let observed_per_mille = degraded.saturating_mul(1000) / total;
    (observed_per_mille > limit_per_mille).then_some(DegradedFractionViolation {
        degraded,
        total,
        observed_per_mille,
        limit_per_mille,
    })
}

/// A one-thread HTTP scrape endpoint over a telemetry context's
/// registry. Bound with [`MetricsServer::bind`], stopped on drop (or
/// explicitly via [`MetricsServer::stop`]).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// starts the responder thread serving `ctx`'s registry.
    ///
    /// # Errors
    /// Propagates bind/spawn failures.
    pub fn bind(addr: &str, ctx: Arc<Telemetry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = std::thread::Builder::new()
            .name("olap-metrics".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || serve_loop(&listener, &ctx, &stop)
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder: flags shutdown, wakes the blocking accept
    /// with a self-connection, and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        // ordering: Release — the responder's Acquire load after accept
        // must see the flag before it decides to serve another request.
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept; if the connect fails the listener is
        // already gone and the thread is exiting anyway.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("running", &self.thread.is_some())
            .finish()
    }
}

fn serve_loop(listener: &TcpListener, ctx: &Arc<Telemetry>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        // ordering: Acquire — pairs with `stop`'s Release store; a woken
        // accept must observe the shutdown flag.
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Per-connection errors (including the wake-up self-connection
        // hanging up) are dropped: a scraper that misbehaves should not
        // take the endpoint down.
        if let Ok(stream) = conn {
            let _ = handle(stream, ctx);
        }
    }
}

/// Reads one request line, answers, closes. HTTP/1.0 semantics
/// (`Connection: close`) keep the loop connection-per-request.
fn handle(stream: TcpStream, ctx: &Arc<Telemetry>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    let path = request.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            publish_latency_quantiles(ctx.registry());
            (
                "200 OK",
                "text/plain; version=0.0.4",
                ctx.registry().render_prometheus(),
            )
        }
        "/metrics.json" => ("200 OK", "application/json", ctx.registry().render_json()),
        _ => (
            "404 Not Found",
            "text/plain; version=0.0.4",
            "not found; try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )
        .as_bytes(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    fn seeded_ctx() -> Arc<Telemetry> {
        let ctx = Arc::new(Telemetry::new());
        let h = ctx
            .registry()
            .histogram(LATENCY_FAMILY, &[("shard", "shard-0")]);
        for _ in 0..99 {
            h.observe(1_000);
        }
        h.observe(1_000_000);
        ctx
    }

    #[test]
    fn quantile_gauges_derive_from_histograms() {
        let ctx = seeded_ctx();
        publish_latency_quantiles(ctx.registry());
        let p50 = ctx
            .registry()
            .gauge("olap_serve_latency_p50_ns", &[("shard", "shard-0")])
            .get();
        let p99 = ctx
            .registry()
            .gauge("olap_serve_latency_p99_ns", &[("shard", "shard-0")])
            .get();
        // log2 bucket bounds: 1_000 lands in (512, 1023]… the bound is
        // the next power-of-two minus one at or above the sample.
        assert!((1_000.0..2_048.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 1_000.0, "p99 = {p99}");
        // The tail sample dominates the max quantile.
        let p_all = ctx
            .registry()
            .snapshot()
            .iter()
            .find_map(|m| match (&*m.name, &m.value) {
                (LATENCY_FAMILY, MetricValue::Histogram(h)) => Some(h.quantile(1.0)),
                _ => None,
            })
            .expect("latency histogram present");
        assert!(p_all >= 1_000_000);
    }

    #[test]
    fn slo_report_flags_only_broken_bounds() {
        let ctx = seeded_ctx();
        let lax = SloSpec {
            p99_ns: Some(u64::MAX),
            ..SloSpec::default()
        };
        assert!(slo_report(ctx.registry(), &lax).is_empty());
        let strict = SloSpec {
            p50_ns: Some(u64::MAX),
            p99_ns: Some(10),
            ..SloSpec::default()
        };
        let violations = slo_report(ctx.registry(), &strict);
        assert_eq!(violations.len(), 1, "{violations:?}");
        let v = violations.first().expect("one violation");
        assert_eq!(v.quantile, "p99");
        assert_eq!(v.shard, "shard-0");
        assert!(v.observed_ns > v.limit_ns);
        assert!(v.to_string().contains("exceeds SLO"));
        // An empty registry passes vacuously.
        let empty = Arc::new(Telemetry::new());
        assert!(slo_report(empty.registry(), &strict).is_empty());
    }

    #[test]
    fn degraded_fraction_report_fires_only_over_the_bound() {
        let ctx = Arc::new(Telemetry::new());
        let spec = SloSpec::max_degraded_fraction(0.05);
        assert_eq!(spec.max_degraded_per_mille, Some(50));
        assert!(!spec.is_empty());
        // No answers yet: vacuous pass.
        assert_eq!(degraded_fraction_report(ctx.registry(), &spec), None);
        ctx.registry().counter(ANSWERS_TOTAL, &[]).inc(100);
        ctx.registry().counter(DEGRADED_TOTAL, &[]).inc(4);
        // 40‰ ≤ 50‰ holds.
        assert_eq!(degraded_fraction_report(ctx.registry(), &spec), None);
        ctx.registry().counter(DEGRADED_TOTAL, &[]).inc(8);
        let v = degraded_fraction_report(ctx.registry(), &spec).expect("violation");
        assert_eq!(v.degraded, 12);
        assert_eq!(v.total, 100);
        assert_eq!(v.observed_per_mille, 120);
        assert_eq!(v.limit_per_mille, 50);
        assert!(v.to_string().contains("exceeds SLO"));
        // A spec without the bound never fires.
        assert_eq!(
            degraded_fraction_report(ctx.registry(), &SloSpec::default()),
            None
        );
    }

    #[test]
    fn scrape_endpoint_serves_text_json_and_404() {
        let ctx = seeded_ctx();
        ctx.registry().counter("q_total", &[]).inc(3);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&ctx)).expect("bind");
        let text = scrape(server.addr(), "/metrics");
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        assert!(
            text.contains("# TYPE olap_serve_latency_ns histogram"),
            "{text}"
        );
        assert!(text.contains("# HELP olap_serve_latency_p99_ns"), "{text}");
        assert!(
            text.contains("olap_serve_latency_p99_ns{shard=\"shard-0\"}"),
            "{text}"
        );
        assert!(text.contains("q_total 3"), "{text}");
        let json = scrape(server.addr(), "/metrics.json");
        assert!(json.contains("application/json"), "{json}");
        assert!(json.contains("\"q_total\""), "{json}");
        let missing = scrape(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn stop_is_idempotent_and_rebinds() {
        let ctx = Arc::new(Telemetry::new());
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&ctx)).expect("bind");
        let addr = server.addr();
        server.stop();
        server.stop();
        drop(server);
        // The port is released: we can bind it again.
        let again = MetricsServer::bind(&addr.to_string(), ctx).expect("rebind");
        assert_eq!(again.addr(), addr);
    }
}
