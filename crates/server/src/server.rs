//! [`CubeServer`]: slab-sharded serving over per-shard adaptive routers.
//!
//! # Partitioning
//!
//! The cube is split along the leading dimension into `shards` contiguous
//! slabs of near-equal row count (shard `i` owns rows
//! `⌊i·n₀/k⌋ .. ⌊(i+1)·n₀/k⌋`). Row-major layout makes every slab a
//! contiguous run of the base array, so shard engines build over a plain
//! sub-cube with the same trailing dimensions and queries translate by an
//! offset on axis 0 only.
//!
//! # Threads and queues
//!
//! Each shard owns one worker thread draining an mpsc queue. A fanned-out
//! query enqueues one job per overlapping shard and collects the partial
//! answers; the per-shard queue depth is tracked in an atomic (exported
//! as the `olap_shard_queue_depth` gauge with the `telemetry` feature).
//! Workers execute through the shard's [`AdaptiveRouter`] — cost-ranked
//! routing, failover, circuit breakers, and budget admission all apply
//! per shard, and every update installs an immutable snapshot, so worker
//! reads are never blocked by a writer.
//!
//! # Semantic caching
//!
//! Each shard worker answers sums through a per-shard
//! [`SemanticCache`] wrapping its router: repeated regions hit exactly,
//! contained regions assemble by ±-combination when the cost model prices
//! the residuals below direct execution, and everything else falls
//! through. The worker also batch-plans its queue: jobs already waiting
//! are drained together, overlapping sum queries are grouped, and when
//! one execution of the group's bounding super-region is estimated
//! cheaper than the members' direct executions the super-region is
//! primed once so members assemble from it. Updates route through the
//! same cache, which invalidates region-wise — entries in untouched
//! slabs survive the install. `ServeConfig::cache_size == 0` disables
//! all of it.
//!
//! # Updates
//!
//! [`CubeServer::apply_updates`] validates the whole batch up front,
//! splits it by owning shard, and installs each shard's successor
//! snapshot atomically under one server-wide writer mutex. A batch is
//! atomic *per shard*, not across shards: a concurrent fanned-out query
//! may combine pre-batch rows from one shard with post-batch rows from
//! another. Single-shard batches (any single-cell update is one) are
//! globally atomic — the discipline the load driver uses to assert
//! pre-or-post-oracle answers.

use crate::ServerError;
use olap_array::{DegradePolicy, DenseArray, QueryBudget, Region, Shape};
use olap_engine::{
    AdaptiveRouter, ApproxEngine, CacheBackend, CacheStats, CubeIndex, DegradeReason, EngineError,
    EngineOp, EpochStats, FaultPlan, FaultyEngine, IndexConfig, NaiveEngine, RangeEngine,
    SemanticCache, SumTreeEngine,
};
use olap_query::algebra::{bounding_union, difference};
use olap_query::{AccessStats, Answer, Estimate, QueryOutcome, RangeQuery};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// How a [`CubeServer`] is assembled.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shard count; clamped to the leading dimension's extent.
    pub shards: usize,
    /// Per-query budget every shard router admits queries under.
    pub budget: QueryBudget,
    /// Optional fault injection: wraps each shard's precomputed engines
    /// (never the naive fallback) so chaos drills can prove failover and
    /// snapshot installs keep answers exact.
    pub faults: Option<FaultPlan>,
    /// Per-shard semantic-cache capacity in entries; 0 disables caching
    /// (every lookup is a pure passthrough to the shard router).
    pub cache_size: usize,
    /// Declarative latency objective the operator holds this server to.
    /// The server only carries it ([`CubeServer::slo`]); evaluation
    /// against live quantiles is the scrape layer's job (`slo_report`
    /// with the `telemetry` feature).
    pub slo: Option<SloSpec>,
    /// Queue-depth threshold above which a fanned-out query is shed to
    /// the shard's degradation tier instead of enqueued (the
    /// [`DegradeReason::QueueDepth`] path). `None` never sheds.
    pub queue_depth_limit: Option<i64>,
}

impl ServeConfig {
    /// Whether this configuration arms the degradation tier: either the
    /// budget policy opts into falling back on exhaustion, or a queue
    /// depth limit asks for pre-dispatch shedding.
    pub fn degrade_enabled(&self) -> bool {
        self.budget.on_exhaustion == DegradePolicy::Degrade || self.queue_depth_limit.is_some()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            budget: QueryBudget::unlimited(),
            faults: None,
            cache_size: 256,
            slo: None,
            queue_depth_limit: None,
        }
    }
}

/// A declarative per-shard latency SLO: bounds on the serve-latency
/// quantiles (the `olap_serve_latency_ns` histogram family), each
/// optional. Plain data — carried by [`ServeConfig`] on every build so
/// configs stay declarative whether or not telemetry is compiled in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloSpec {
    /// Median bound, nanoseconds.
    pub p50_ns: Option<u64>,
    /// 95th-percentile bound, nanoseconds.
    pub p95_ns: Option<u64>,
    /// 99th-percentile bound, nanoseconds.
    pub p99_ns: Option<u64>,
    /// Bound on the fraction of served answers that were degraded to the
    /// approximate tier, in permille (‰) so the spec stays `Eq`-able
    /// plain data. `Some(50)` = at most 5 % of answers may be estimates.
    /// Evaluated against the `olap_serve_answers_total` /
    /// `olap_serve_degraded_total` counters by `degraded_fraction_report`
    /// (the `telemetry` feature).
    pub max_degraded_per_mille: Option<u64>,
}

impl SloSpec {
    /// A spec bounding only the tail (p99).
    pub fn p99(limit: std::time::Duration) -> SloSpec {
        SloSpec {
            p99_ns: Some(limit.as_nanos().min(u128::from(u64::MAX)) as u64),
            ..SloSpec::default()
        }
    }

    /// A spec bounding only the degraded-answer fraction. `fraction` is
    /// clamped into `[0, 1]` and stored in permille.
    pub fn max_degraded_fraction(fraction: f64) -> SloSpec {
        SloSpec {
            max_degraded_per_mille: Some((fraction.clamp(0.0, 1.0) * 1000.0).round() as u64),
            ..SloSpec::default()
        }
    }

    /// Whether no bound is set.
    pub fn is_empty(&self) -> bool {
        self.p50_ns.is_none()
            && self.p95_ns.is_none()
            && self.p99_ns.is_none()
            && self.max_degraded_per_mille.is_none()
    }

    /// The configured bounds as `(name, quantile, limit_ns)` triples,
    /// in quantile order.
    pub fn bounds(&self) -> Vec<(&'static str, f64, u64)> {
        [
            ("p50", 0.50, self.p50_ns),
            ("p95", 0.95, self.p95_ns),
            ("p99", 0.99, self.p99_ns),
        ]
        .into_iter()
        .filter_map(|(name, q, limit)| limit.map(|l| (name, q, l)))
        .collect()
    }
}

/// A recombined answer from a fanned-out query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerAnswer {
    /// The aggregate or extremal value. Exact (bit-identical to the
    /// sequential oracle) when `estimate` is `None`; otherwise the point
    /// estimate, guaranteed inside `[estimate.lower, estimate.upper]`.
    pub value: i64,
    /// For max/min: where the extremum is attained, in *global*
    /// coordinates. `None` whenever any shard degraded — an interpolated
    /// extremum has no attained cell.
    pub at: Option<Vec<usize>>,
    /// Total elements accessed across every answering shard (the §8 cost
    /// proxy, summed).
    pub cost: u64,
    /// How many shards contributed.
    pub shards: usize,
    /// Degradation metadata when at least one shard answered from its
    /// approximate tier; `None` means every shard answered exactly.
    pub estimate: Option<ServedEstimate>,
}

impl ServerAnswer {
    /// Whether any contributing shard degraded to its approximate tier.
    pub fn is_degraded(&self) -> bool {
        self.estimate.is_some()
    }

    /// Whether this answer is consistent with `truth`: bit-identical when
    /// exact, interval containment when degraded. This is the oracle
    /// check the load driver and chaos drills assert on every answer.
    pub fn contains(&self, truth: i64) -> bool {
        match &self.estimate {
            Some(e) => e.lower <= truth && truth <= e.upper,
            None => self.value == truth,
        }
    }
}

/// Cross-shard degradation metadata on a [`ServerAnswer`]: the merged
/// guaranteed interval (shard bounds add for sums, fold for extrema) and
/// how much of the answer was exact. Plain `Eq`-able data, mirroring
/// [`olap_query::Estimate`] at the serving boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedEstimate {
    /// Guaranteed lower bound on the true answer.
    pub lower: i64,
    /// Guaranteed upper bound on the true answer.
    pub upper: i64,
    /// Worst-case absolute error of `ServerAnswer::value`:
    /// `max(value − lower, upper − value)`.
    pub error_bound: i64,
    /// How many of the contributing shards degraded.
    pub degraded_shards: usize,
    /// Why the first degraded shard fell back.
    pub reason: DegradeReason,
    /// Query cells answered exactly (aligned anchors plus fully exact
    /// shards), across all shards.
    pub exact_cells: u64,
    /// Total query cells across all contributing shards.
    pub total_cells: u64,
}

impl ServedEstimate {
    /// Fraction of the query volume answered exactly, in `[0, 1]`.
    pub fn fraction_exact(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            self.exact_cells as f64 / self.total_cells as f64
        }
    }
}

/// One shard's reply: exact through the semantic cache, or a degraded
/// estimate from the shard router's approximate tier.
enum ShardOutcome {
    Exact(QueryOutcome<i64>),
    Degraded {
        estimate: Estimate<i64>,
        stats: AccessStats,
        reason: DegradeReason,
    },
}

impl ShardOutcome {
    fn cost(&self) -> u64 {
        match self {
            ShardOutcome::Exact(o) => o.cost(),
            ShardOutcome::Degraded { stats, .. } => stats.total_accesses(),
        }
    }
}

/// One fanned-out partial answer: the shard, its local query volume (for
/// exact-cell accounting in the merge), and the outcome.
struct ShardPart {
    shard: usize,
    volume: u64,
    out: ShardOutcome,
}

/// One shard's serving statistics, for operators and tests.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Global rows `[lo, hi]` of the slab on the leading dimension.
    pub rows: (usize, usize),
    /// Snapshot-liveness bookkeeping of the shard's router.
    pub epochs: EpochStats,
    /// Jobs currently enqueued (or in flight) on the shard's worker.
    pub queue_depth: i64,
    /// The shard's semantic-cache counters.
    pub cache: CacheStats,
}

/// One enqueued unit of work: a shard-local query plus the reply slot.
struct Job {
    shard: usize,
    op: EngineOp,
    query: RangeQuery,
    reply: mpsc::Sender<(usize, Result<ShardOutcome, EngineError>)>,
    /// Trace carrier across the queue: started on the submitting thread
    /// under the query's root span, finished by the worker — so the time
    /// a job sits on the mpsc queue is its own `queue_wait` span.
    #[cfg(feature = "telemetry")]
    trace: Option<olap_telemetry::PendingSpan>,
}

/// One slab of the cube: its row range, router, and worker queue.
/// The cache type every shard serves through: a semantic cache in front
/// of the shard's router.
type ShardCache = SemanticCache<i64, Arc<AdaptiveRouter<i64>>>;

struct Shard {
    /// First global row of the slab.
    lo: usize,
    /// Rows in the slab.
    len: usize,
    router: Arc<AdaptiveRouter<i64>>,
    /// Subsumption-aware result cache over `router`; all worker reads
    /// and all installs go through it so invalidation stays region-wise.
    /// The type is spelled out (not the `ShardCache` alias) so the
    /// analyzer's nominal lock-field pass sees `SemanticCache` and keeps
    /// this field in the lock-order acquisition graph.
    cache: Arc<SemanticCache<i64, Arc<AdaptiveRouter<i64>>>>,
    /// `None` once the server is shutting down.
    tx: Option<mpsc::Sender<Job>>,
    depth: Arc<AtomicI64>,
    label: String,
    worker: Option<JoinHandle<()>>,
}

impl Shard {
    fn submit(&self, job: Job) -> Result<(), ServerError> {
        let shard = job.shard;
        let tx = self
            .tx
            .as_ref()
            .ok_or(ServerError::ShardUnavailable { shard })?;
        // ordering: AcqRel — the depth counter pairs increments here with
        // the worker's decrement so observers never see a negative depth.
        self.depth.fetch_add(1, Ordering::AcqRel);
        publish_depth(&self.label, &self.depth);
        tx.send(job).map_err(|_| {
            // ordering: AcqRel — roll back the optimistic increment when
            // the worker is gone and the send bounced.
            self.depth.fetch_sub(1, Ordering::AcqRel);
            ServerError::ShardUnavailable { shard }
        })
    }
}

/// The telemetry scope active on the thread that builds the server,
/// captured so worker threads can re-enter it — worker-side cache
/// counters and queue gauges then publish to the same registry as the
/// builder's.
#[cfg(feature = "telemetry")]
pub(crate) type Scope = Option<Arc<olap_telemetry::Telemetry>>;

#[cfg(feature = "telemetry")]
pub(crate) fn capture_scope() -> Scope {
    olap_telemetry::current()
}
/// Stand-in scope when telemetry is compiled out: same shape for the
/// capture/enter call sites, nothing to carry.
#[cfg(not(feature = "telemetry"))]
#[derive(Clone)]
pub(crate) struct ScopeStub;

#[cfg(not(feature = "telemetry"))]
pub(crate) fn capture_scope() -> ScopeStub {
    ScopeStub
}

#[cfg(feature = "telemetry")]
pub(crate) fn enter_scope(scope: Scope, f: impl FnOnce()) {
    match scope {
        Some(ctx) => olap_telemetry::with_scope(&ctx, f),
        None => f(),
    }
}
#[cfg(not(feature = "telemetry"))]
pub(crate) fn enter_scope(_scope: ScopeStub, f: impl FnOnce()) {
    f()
}

/// Pushes a shard's queue depth to the metric registry (no-op without
/// the `telemetry` feature or an active context).
#[allow(unused_variables)]
fn publish_depth(label: &str, depth: &AtomicI64) {
    #[cfg(feature = "telemetry")]
    if let Some(ctx) = olap_telemetry::current() {
        ctx.registry()
            .gauge("olap_shard_queue_depth", &[("shard", label)])
            // ordering: Relaxed — reporting read; queue correctness is
            // carried by the channel, not this gauge.
            .set(depth.load(Ordering::Relaxed) as f64);
    }
}

/// Most queued jobs one worker iteration drains and batch-plans together.
const BATCH_DRAIN_LIMIT: usize = 32;

/// Anchor-grid block size of every shard's degradation tier.
const DEGRADE_BLOCK: usize = 8;

/// The worker loop: drain every job already queued (up to
/// [`BATCH_DRAIN_LIMIT`]), batch-plan overlapping sums, then answer each
/// job through the shard's semantic cache.
fn shard_worker(
    rx: mpsc::Receiver<Job>,
    cache: Arc<ShardCache>,
    depth: Arc<AtomicI64>,
    label: String,
) {
    while let Ok(job) = rx.recv() {
        let mut jobs = vec![job];
        while jobs.len() < BATCH_DRAIN_LIMIT {
            match rx.try_recv() {
                Ok(next) => jobs.push(next),
                Err(_) => break,
            }
        }
        // ordering: AcqRel — pairs with `Shard::submit`'s increment; the
        // whole drained batch is now in flight.
        depth.fetch_sub(jobs.len() as i64, Ordering::AcqRel);
        publish_depth(&label, &depth);
        if jobs.len() > 1 {
            plan_batch(&cache, &jobs);
        }
        for job in jobs {
            let Job {
                shard,
                op,
                query,
                reply,
                #[cfg(feature = "telemetry")]
                trace,
            } = job;
            // Re-enter the query's trace, if it carried one: finishing
            // the pending span records the queue wait, and entering the
            // returned scope parents the worker-side spans (shard_exec,
            // the cache's lookup/assembly, the router's dispatch) under
            // the same root.
            #[cfg(feature = "telemetry")]
            let entered = trace.map(olap_telemetry::PendingSpan::finish_and_enter);
            let out = {
                #[cfg(feature = "telemetry")]
                let _exec_span = olap_telemetry::TraceSpan::start("shard_exec");
                let exact = match op {
                    EngineOp::Sum => cache.range_sum(&query),
                    EngineOp::Max => cache.range_max(&query),
                    EngineOp::Min => cache.range_min(&query),
                    EngineOp::Update => Err(EngineError::unsupported(
                        "shard-worker",
                        EngineOp::Update.name(),
                    )),
                };
                match exact {
                    Ok(o) => Ok(ShardOutcome::Exact(o)),
                    Err(e) => degrade_fallback(&cache, &query, op, e),
                }
            };
            // Leave the trace scope *before* replying: every worker-side
            // span is then closed strictly before the submitter can
            // observe the reply and close the root, so child spans never
            // outlive their parent in the assembled tree.
            #[cfg(feature = "telemetry")]
            drop(entered);
            // A dropped reply receiver means the query already failed on
            // another shard; nothing to do with this partial answer.
            let _ = reply.send((shard, out));
        }
    }
}

/// The worker-side degradation gate: when the shard's budget policy is
/// [`DegradePolicy::Degrade`] and the exact failure is an eligible
/// exhaustion (deadline, access budget, every engine faulted), the shard
/// router's approximate tier answers instead. Cancellation and
/// validation errors pass through — same eligibility matrix as
/// [`AdaptiveRouter::answer`]. A tier failure (none registered,
/// unsupported op) reports the original exact error.
fn degrade_fallback(
    cache: &ShardCache,
    query: &RangeQuery,
    op: EngineOp,
    exact_err: EngineError,
) -> Result<ShardOutcome, EngineError> {
    let router = cache.backend();
    if router.budget().on_exhaustion != DegradePolicy::Degrade {
        return Err(exact_err);
    }
    let reason = match &exact_err {
        EngineError::DeadlineExceeded { .. } => DegradeReason::DeadlineExceeded,
        EngineError::BudgetExhausted { .. } => DegradeReason::BudgetExhausted,
        EngineError::NoCandidate { .. } => DegradeReason::NoCandidate,
        e if e.is_engine_fault() => DegradeReason::EngineFaults,
        _ => return Err(exact_err),
    };
    match router.degrade(query, op, reason) {
        Ok((estimate, stats)) => Ok(ShardOutcome::Degraded {
            estimate,
            stats,
            reason,
        }),
        Err(_) => Err(exact_err),
    }
}

/// Accumulates cross-shard degradation metadata while a merge folds the
/// partial answers; [`DegradeMerge::finish`] yields the
/// [`ServedEstimate`] (or `None` for a fully exact merge).
#[derive(Default)]
struct DegradeMerge {
    degraded_shards: usize,
    reason: Option<DegradeReason>,
    exact_cells: u64,
    total_cells: u64,
}

impl DegradeMerge {
    fn note_exact(&mut self, volume: u64) {
        self.exact_cells += volume;
        self.total_cells += volume;
    }

    fn note_degraded(&mut self, volume: u64, estimate: &Estimate<i64>, reason: DegradeReason) {
        self.degraded_shards += 1;
        self.reason.get_or_insert(reason);
        self.exact_cells += (estimate.fraction_exact * volume as f64).round() as u64;
        self.total_cells += volume;
    }

    fn finish(self, value: i64, lower: i64, upper: i64) -> Option<ServedEstimate> {
        let reason = self.reason?;
        Some(ServedEstimate {
            lower,
            upper,
            error_bound: value.saturating_sub(lower).max(upper.saturating_sub(value)),
            degraded_shards: self.degraded_shards,
            reason,
            exact_cells: self.exact_cells.min(self.total_cells),
            total_cells: self.total_cells,
        })
    }
}

/// Bumps the serve-level answer counters behind the degraded-fraction
/// SLO check (`olap_serve_answers_total` / `olap_serve_degraded_total`).
/// No-op without the `telemetry` feature or an active context.
#[allow(unused_variables)]
fn record_served(degraded: bool) {
    #[cfg(feature = "telemetry")]
    if let Some(ctx) = olap_telemetry::current() {
        ctx.registry()
            .counter("olap_serve_answers_total", &[])
            .inc(1);
        if degraded {
            ctx.registry()
                .counter("olap_serve_degraded_total", &[])
                .inc(1);
        }
    }
}

/// Scans a drained job batch for overlapping sum queries and primes the
/// cache with each group's bounding super-region, so the group executes
/// once and its members answer by exact hit or ±-combination.
///
/// Priming is gated on the backend's own estimates: one super-region
/// execution must price below the members' direct executions. Over a
/// healthy prefix-sum backend direct costs `2^d` per member and the gate
/// stays shut; it opens exactly when the shard is degraded to tree or
/// naive serving, where shared work is worth real accesses.
fn plan_batch(cache: &ShardCache, jobs: &[Job]) {
    let shape = match cache.backend().shape() {
        Some(s) => s,
        None => return,
    };
    let sums: Vec<Region> = jobs
        .iter()
        .filter(|j| j.op == EngineOp::Sum)
        .filter_map(|j| j.query.to_region(&shape).ok())
        .collect();
    if sums.len() < 2 {
        return;
    }
    // Greedy overlap grouping: each region joins the first group whose
    // running bounding box it overlaps, widening that box.
    let mut groups: Vec<(Region, Vec<Region>)> = Vec::new();
    for r in sums {
        match groups.iter_mut().find(|(bbox, _)| bbox.overlaps(&r)) {
            Some((bbox, members)) => {
                if let Some(widened) = bounding_union(&[bbox.clone(), r.clone()]) {
                    *bbox = widened;
                }
                members.push(r);
            }
            None => groups.push((r.clone(), vec![r])),
        }
    }
    // The §3 combine term: 2^d corner lookups per assembled answer.
    let combine = (1u64 << shape.ndim().min(62)) as f64;
    for (bbox, members) in groups {
        if members.len() < 2 {
            continue;
        }
        let super_cost = cache.backend().estimate(&RangeQuery::from_region(&bbox));
        if !super_cost.is_finite() {
            continue;
        }
        // Each member's saving: direct execution versus assembling
        // `+super − Σ residual` out of the primed entry. The member-side
        // arbitration in the cache makes the same comparison, so a prime
        // is worth its one super execution exactly when the summed
        // positive savings exceed it.
        let savings: f64 = members
            .iter()
            .map(|m| {
                let direct = cache.backend().estimate(&RangeQuery::from_region(m));
                let assemble = combine
                    + difference(&bbox, m)
                        .iter()
                        .map(|r| cache.backend().estimate(&RangeQuery::from_region(r)))
                        .sum::<f64>();
                (direct - assemble).max(0.0)
            })
            .sum();
        if super_cost < savings {
            // Best-effort: a failed prime just means members fall back to
            // their own direct executions.
            let _ = cache.prime(&bbox);
        }
    }
}

/// A sharded, snapshot-isolated server over one dense `i64` cube.
///
/// Shareable across threads (`&self` everywhere); see the module docs
/// for the partitioning and atomicity contract.
pub struct CubeServer {
    shape: Shape,
    shards: Vec<Shard>,
    /// Serialises cross-shard update batches so per-shard installs from
    /// different batches cannot interleave.
    writer: Mutex<()>,
    /// Latency objective carried from [`ServeConfig::slo`].
    slo: Option<SloSpec>,
    /// Queue-depth shed threshold from [`ServeConfig::queue_depth_limit`].
    queue_limit: Option<i64>,
    /// Destination for end-to-end query traces. `None` (the default)
    /// keeps tracing fully disabled: with no root span ever opened, the
    /// per-query cost of every instrumentation point downstream is one
    /// relaxed atomic load.
    #[cfg(feature = "telemetry")]
    tracer: Option<Arc<olap_telemetry::TraceSink>>,
    /// Head-sampling period: trace every `trace_sample`-th query (1 =
    /// every query). See [`CubeServer::enable_tracing_sampled`].
    #[cfg(feature = "telemetry")]
    trace_sample: u64,
    /// Round-robin query counter driving the head sample.
    #[cfg(feature = "telemetry")]
    trace_seq: std::sync::atomic::AtomicU64,
}

impl CubeServer {
    /// Partitions `cube` and boots one worker thread per shard.
    ///
    /// # Errors
    /// [`ServerError::Config`] when the cube or shard count is unusable.
    pub fn build(cube: &DenseArray<i64>, config: ServeConfig) -> Result<Self, ServerError> {
        let shape = cube.shape().clone();
        if shape.ndim() == 0 || shape.is_empty() {
            return Err(ServerError::Config("cannot serve an empty cube".into()));
        }
        let n0 = shape.dim(0);
        if config.shards == 0 {
            return Err(ServerError::Config("shard count must be at least 1".into()));
        }
        let k = config.shards.min(n0);
        let mut shards = Vec::with_capacity(k);
        for i in 0..k {
            let lo = i * n0 / k;
            let hi = (i + 1) * n0 / k;
            let shard = build_shard(cube, i, lo, hi, &config)?;
            shards.push(shard);
        }
        Ok(CubeServer {
            shape,
            shards,
            writer: Mutex::new(()),
            slo: config.slo,
            queue_limit: config.queue_depth_limit,
            #[cfg(feature = "telemetry")]
            tracer: None,
            #[cfg(feature = "telemetry")]
            trace_sample: 1,
            #[cfg(feature = "telemetry")]
            trace_seq: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The served cube's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The latency objective this server was configured with, if any.
    pub fn slo(&self) -> Option<SloSpec> {
        self.slo
    }

    /// Routes every subsequent query's span tree into `sink`: each
    /// `range_sum`/`range_max`/`range_min` opens a `serve_query` root
    /// span, fans `queue_wait` spans across the shard queues, and the
    /// workers' execution spans land in the same tree (see the
    /// `olap_telemetry::trace` module docs for the tree shape).
    #[cfg(feature = "telemetry")]
    pub fn enable_tracing(&mut self, sink: Arc<olap_telemetry::TraceSink>) {
        self.tracer = Some(sink);
        self.trace_sample = 1;
    }

    /// [`CubeServer::enable_tracing`] with head sampling: only every
    /// `every`-th query (round-robin across all entry points; `0` is
    /// treated as `1`) opens a root span; the rest run the fully
    /// disabled path. This is the production configuration — a full
    /// per-query span tree costs a handful of timestamped records, which
    /// on a microsecond-scale dispatch-bound query is measurable, while
    /// a 1-in-N head sample amortises it to noise. The CI bench gate
    /// (`serve_throughput/sampled_trace_range_sum`) pins that amortised
    /// cost at ≤ 1.05× the untraced path.
    ///
    /// Note the slow-query ring only sees sampled queries: head sampling
    /// decides before the outcome is known, which is the standard trade
    /// against the cost of tracing everything.
    #[cfg(feature = "telemetry")]
    pub fn enable_tracing_sampled(&mut self, sink: Arc<olap_telemetry::TraceSink>, every: u64) {
        self.tracer = Some(sink);
        self.trace_sample = every.max(1);
    }

    /// The installed trace sink, if any.
    #[cfg(feature = "telemetry")]
    pub fn tracer(&self) -> Option<&Arc<olap_telemetry::TraceSink>> {
        self.tracer.as_ref()
    }

    /// Opens the per-query root span when tracing is enabled. Held by
    /// the query entry points across fan-out and merge; inert (`None`)
    /// without an installed sink.
    #[cfg(feature = "telemetry")]
    fn root_span(&self) -> Option<olap_telemetry::TraceSpan> {
        use std::sync::atomic::Ordering;
        let sink = self.tracer.as_ref()?;
        if self.trace_sample > 1 {
            // ordering: Relaxed — a pure round-robin sample counter; no
            // other memory hangs off its value, and which queries get
            // picked under concurrency is sampling noise by definition.
            let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
            if !seq.is_multiple_of(self.trace_sample) {
                return None;
            }
        }
        Some(olap_telemetry::TraceSpan::root(sink, "serve_query"))
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard serving statistics: slab extents, snapshot liveness,
    /// queue depths.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                rows: (s.lo, s.lo + s.len - 1),
                epochs: s.router.epoch_stats(),
                // ordering: Relaxed — reporting read.
                queue_depth: s.depth.load(Ordering::Relaxed),
                cache: s.cache.stats(),
            })
            .collect()
    }

    /// Semantic-cache counters summed across every shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.cache.stats();
            total.hits += st.hits;
            total.assemblies += st.assemblies;
            total.misses += st.misses;
            total.invalidations += st.invalidations;
            total.insertions += st.insertions;
            total.evictions += st.evictions;
            total.entries += st.entries;
        }
        total
    }

    /// Range sum over the global cube: fans out to every overlapping
    /// shard and adds the partial sums. Degraded shard answers merge by
    /// adding their guaranteed bounds — the result interval still
    /// contains the true global sum.
    ///
    /// # Errors
    /// Validation failures, shard router errors, dead shards.
    pub fn range_sum(&self, query: &RangeQuery) -> Result<ServerAnswer, ServerError> {
        #[cfg(feature = "telemetry")]
        let _root = self.root_span();
        let parts = self.fan_out(query, EngineOp::Sum)?;
        #[cfg(feature = "telemetry")]
        let _merge = olap_telemetry::TraceSpan::start("merge");
        let shards = parts.len();
        let mut value = 0i64;
        let mut lower = 0i64;
        let mut upper = 0i64;
        let mut cost = 0u64;
        let mut merge = DegradeMerge::default();
        // analyzer: allow(budget-coverage, reason = "merge over per-shard partials: trip count = shard count; each shard charges its own meter")
        for part in &parts {
            cost += part.out.cost();
            match &part.out {
                ShardOutcome::Exact(o) => {
                    let v = o.value().copied().unwrap_or(0);
                    value += v;
                    lower += v;
                    upper += v;
                    merge.note_exact(part.volume);
                }
                ShardOutcome::Degraded {
                    estimate, reason, ..
                } => {
                    value += estimate.value;
                    lower += estimate.lower;
                    upper += estimate.upper;
                    merge.note_degraded(part.volume, estimate, *reason);
                }
            }
        }
        let estimate = merge.finish(value, lower, upper);
        record_served(estimate.is_some());
        Ok(ServerAnswer {
            value,
            at: None,
            cost,
            shards,
            estimate,
        })
    }

    /// Range max with global argmax.
    ///
    /// # Errors
    /// Validation failures, shard router errors, dead shards.
    pub fn range_max(&self, query: &RangeQuery) -> Result<ServerAnswer, ServerError> {
        self.extremum(query, EngineOp::Max)
    }

    /// Range min with global argmin.
    ///
    /// # Errors
    /// Validation failures, shard router errors, dead shards.
    pub fn range_min(&self, query: &RangeQuery) -> Result<ServerAnswer, ServerError> {
        self.extremum(query, EngineOp::Min)
    }

    fn extremum(&self, query: &RangeQuery, op: EngineOp) -> Result<ServerAnswer, ServerError> {
        #[cfg(feature = "telemetry")]
        let _root = self.root_span();
        let parts = self.fan_out(query, op)?;
        #[cfg(feature = "telemetry")]
        let _merge = olap_telemetry::TraceSpan::start("merge");
        let shards = parts.len();
        let mut best: Option<(i64, Vec<usize>)> = None;
        let mut cost = 0u64;
        // Folded `(value, lower, upper)` across parts: exact parts are
        // point intervals, degraded parts contribute their guaranteed
        // interval — folding each component by max (resp. min) keeps the
        // global extremum inside `[lower, upper]`.
        let mut folded: Option<(i64, i64, i64)> = None;
        let mut merge = DegradeMerge::default();
        for part in parts {
            cost += part.out.cost();
            let (v, lo, hi) = match part.out {
                ShardOutcome::Exact(o) => {
                    let Answer::Extremum { mut at, value } = o.answer else {
                        continue; // empty slab intersection contributes nothing
                    };
                    if let Some(first) = at.first_mut() {
                        *first += self.shard_row(part.shard);
                    }
                    let better = match (&best, op) {
                        (None, _) => true,
                        (Some((b, _)), EngineOp::Max) => value > *b,
                        (Some((b, _)), _) => value < *b,
                    };
                    if better {
                        best = Some((value, at));
                    }
                    merge.note_exact(part.volume);
                    (value, value, value)
                }
                ShardOutcome::Degraded {
                    estimate, reason, ..
                } => {
                    merge.note_degraded(part.volume, &estimate, reason);
                    (estimate.value, estimate.lower, estimate.upper)
                }
            };
            folded = Some(match folded {
                None => (v, lo, hi),
                Some((fv, fl, fh)) => match op {
                    EngineOp::Max => (fv.max(v), fl.max(lo), fh.max(hi)),
                    _ => (fv.min(v), fl.min(lo), fh.min(hi)),
                },
            });
        }
        let (value, lower, upper) =
            folded.ok_or_else(|| ServerError::Config("no shard produced an extremum".into()))?;
        let estimate = merge.finish(value, lower, upper);
        // An interpolated extremum has no attained cell: `at` only
        // survives a fully exact merge.
        let at = if estimate.is_none() {
            best.map(|(_, at)| at)
        } else {
            None
        };
        record_served(estimate.is_some());
        Ok(ServerAnswer {
            value,
            at,
            cost,
            shards,
            estimate,
        })
    }

    /// First global row of shard `i` (0 for an unknown index — callers
    /// only pass indices they received from a fan-out).
    fn shard_row(&self, i: usize) -> usize {
        self.shards.get(i).map(|s| s.lo).unwrap_or(0)
    }

    /// Applies one batch of absolute-value cell updates. Validates the
    /// whole batch first, then installs each touched shard's successor
    /// snapshot — per-shard atomic, cross-shard see the module docs.
    ///
    /// # Errors
    /// Validation failures (nothing applied), shard derive failures (the
    /// failing shard and later ones keep their current snapshot).
    pub fn apply_updates(&self, updates: &[(Vec<usize>, i64)]) -> Result<AccessStats, ServerError> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut batches: Vec<Vec<(Vec<usize>, i64)>> = vec![Vec::new(); self.shards.len()];
        for (idx, v) in updates {
            self.shape.check_index(idx)?;
            let row = idx.first().copied().unwrap_or(0);
            let (shard, lo) = self.owning_shard(row)?;
            let mut local = idx.clone();
            if let Some(first) = local.first_mut() {
                *first -= lo;
            }
            if let Some(batch) = batches.get_mut(shard) {
                batch.push((local, *v));
            }
        }
        let mut stats = AccessStats::new();
        for (shard, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let s = self
                .shards
                .get(shard)
                .ok_or(ServerError::ShardUnavailable { shard })?;
            stats.merge(&s.cache.apply_updates(batch)?);
        }
        Ok(stats)
    }

    /// The shard owning global row `row`, with its slab offset.
    fn owning_shard(&self, row: usize) -> Result<(usize, usize), ServerError> {
        self.shards
            .iter()
            .enumerate()
            .find(|(_, s)| row >= s.lo && row < s.lo + s.len)
            .map(|(i, s)| (i, s.lo))
            .ok_or_else(|| ServerError::Config(format!("row {row} is outside every shard")))
    }

    /// Fans `query` out to every shard whose slab the region overlaps and
    /// collects the per-shard outcomes, ordered by shard index.
    ///
    /// When a shard's queue is over [`ServeConfig::queue_depth_limit`]
    /// and its router has a degradation tier, the shard's part is shed:
    /// answered synchronously from the tier on the calling thread
    /// ([`DegradeReason::QueueDepth`]) instead of joining the queue. A
    /// shard without a tier is enqueued normally — shedding never turns
    /// an answerable query into an error.
    fn fan_out(&self, query: &RangeQuery, op: EngineOp) -> Result<Vec<ShardPart>, ServerError> {
        let region = query.to_region(&self.shape)?;
        let r0 = region.range(0);
        #[cfg(feature = "telemetry")]
        let started = std::time::Instant::now();
        let (reply, replies) = mpsc::channel();
        let mut expected = 0usize;
        let mut parts: Vec<ShardPart> = Vec::new();
        let mut volumes: Vec<(usize, u64)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let (slab_lo, slab_hi) = (shard.lo, shard.lo + shard.len - 1);
            if r0.lo() > slab_hi || r0.hi() < slab_lo {
                continue;
            }
            let mut bounds: Vec<(usize, usize)> =
                region.ranges().iter().map(|r| (r.lo(), r.hi())).collect();
            if let Some(first) = bounds.first_mut() {
                *first = (
                    r0.lo().max(slab_lo) - shard.lo,
                    r0.hi().min(slab_hi) - shard.lo,
                );
            }
            let local = Region::from_bounds(&bounds)?;
            let volume = local.volume() as u64;
            let local_query = RangeQuery::from_region(&local);
            if let Some(limit) = self.queue_limit {
                // ordering: Relaxed — an advisory load-shedding read; a
                // racing drain only shifts which path answers, and both
                // paths are sound.
                if shard.depth.load(Ordering::Relaxed) > limit {
                    if let Ok((estimate, stats)) =
                        shard
                            .router
                            .degrade(&local_query, op, DegradeReason::QueueDepth)
                    {
                        parts.push(ShardPart {
                            shard: i,
                            volume,
                            out: ShardOutcome::Degraded {
                                estimate,
                                stats,
                                reason: DegradeReason::QueueDepth,
                            },
                        });
                        continue;
                    }
                }
            }
            shard.submit(Job {
                shard: i,
                op,
                query: local_query,
                reply: reply.clone(),
                // Inert (`None`) unless the caller holds an open root
                // span — i.e. tracing is enabled on this server.
                #[cfg(feature = "telemetry")]
                trace: olap_telemetry::PendingSpan::start("queue_wait"),
            })?;
            volumes.push((i, volume));
            expected += 1;
        }
        drop(reply);
        for _ in 0..expected {
            let (shard, out) = replies
                .recv()
                .map_err(|_| ServerError::ShardUnavailable { shard: usize::MAX })?;
            #[cfg(feature = "telemetry")]
            self.observe_latency(shard, started);
            let volume = volumes
                .iter()
                .find(|(i, _)| *i == shard)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            parts.push(ShardPart {
                shard,
                volume,
                out: out?,
            });
        }
        parts.sort_by_key(|p| p.shard);
        Ok(parts)
    }

    /// Feeds one shard's reply-arrival latency (submit-to-reply, queue
    /// wait included) into the per-shard `olap_serve_latency_ns`
    /// histogram. No-op without an active telemetry context.
    #[cfg(feature = "telemetry")]
    fn observe_latency(&self, shard: usize, started: std::time::Instant) {
        if let Some(ctx) = olap_telemetry::current() {
            if let Some(s) = self.shards.get(shard) {
                ctx.registry()
                    .histogram("olap_serve_latency_ns", &[("shard", &s.label)])
                    .observe(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
        }
    }
}

impl Drop for CubeServer {
    fn drop(&mut self) {
        // Closing every queue ends the worker loops; then reap them.
        // analyzer: allow(budget-coverage, reason = "shutdown path: trip count = shard count, no query budget in scope")
        for s in &mut self.shards {
            s.tx = None;
        }
        // analyzer: allow(budget-coverage, reason = "shutdown path: joins one worker per shard")
        for s in &mut self.shards {
            if let Some(h) = s.worker.take() {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for CubeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CubeServer")
            .field("shape", &self.shape)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Builds one shard: slab sub-cube, engines, router, worker thread.
fn build_shard(
    cube: &DenseArray<i64>,
    i: usize,
    lo: usize,
    hi: usize,
    config: &ServeConfig,
) -> Result<Shard, ServerError> {
    let shape = cube.shape();
    let mut dims = shape.dims().to_vec();
    if let Some(first) = dims.first_mut() {
        *first = hi - lo;
    }
    let local_shape = Shape::new(&dims)?;
    // Row-major layout: the slab is one contiguous run of the base array.
    let stride = shape.strides().first().copied().unwrap_or(1);
    let slab = cube
        .as_slice()
        .get(lo * stride..hi * stride)
        .ok_or_else(|| ServerError::Config(format!("slab {lo}..{hi} out of range")))?;
    let sub = DenseArray::from_vec(local_shape, slab.to_vec())?;

    let precomputed: Vec<Box<dyn RangeEngine<i64>>> = vec![
        Box::new(CubeIndex::build(sub.clone(), IndexConfig::default())?),
        Box::new(SumTreeEngine::build(sub.clone(), 4)?),
    ];
    let label = format!("shard-{i}");
    let router = AdaptiveRouter::labeled(&label);
    for engine in precomputed {
        match &config.faults {
            Some(plan) => router.push(Box::new(FaultyEngine::new(engine, *plan))),
            None => router.push(engine),
        }
    }
    // The degradation tier is built from the same slab snapshot as the
    // exact engines; router updates derive it in lockstep, so estimates
    // always bracket the snapshot the query pinned. Block size 8 keeps
    // the anchor grid ~2^-3d of the slab while bounding every partial
    // block's interpolation to 8^d cells.
    if config.degrade_enabled() {
        router.set_degrade_tier(Arc::new(ApproxEngine::build(sub.clone(), DEGRADE_BLOCK)?));
    }
    // The naive scan is never fault-wrapped: it is the shard's last-resort
    // failover target, so chaos drills stay answerable.
    router.push(Box::new(NaiveEngine::new(sub)));
    router.set_budget(config.budget);
    let router = Arc::new(router);
    let cache = Arc::new(SemanticCache::with_label(
        Arc::clone(&router),
        config.cache_size,
        &label,
    ));

    let depth = Arc::new(AtomicI64::new(0));
    let (tx, rx) = mpsc::channel();
    let scope = capture_scope();
    let worker = std::thread::Builder::new()
        .name(format!("olap-{label}"))
        .spawn({
            let cache = Arc::clone(&cache);
            let depth = Arc::clone(&depth);
            let label = label.clone();
            move || enter_scope(scope, move || shard_worker(rx, cache, depth, label))
        })
        .map_err(|e| ServerError::Config(format!("spawning shard worker {i}: {e}")))?;
    Ok(Shard {
        lo,
        len: hi - lo,
        router,
        cache,
        tx: Some(tx),
        depth,
        label,
        worker: Some(worker),
    })
}
