//! End-to-end coverage of the sharded snapshot-isolated server: fan-out
//! correctness against the sequential oracle, global coordinate mapping,
//! update partitioning, concurrent pre-or-post isolation, chaos drills
//! over snapshot installs, and budget admission.

use olap_array::{DenseArray, QueryBudget, Region, Shape};
use olap_engine::FaultPlan;
use olap_query::RangeQuery;
use olap_server::{drive_load, CubeServer, LoadSpec, ServeConfig, ServerError};
use olap_workload::{uniform_cube, uniform_regions};

fn cube(dims: &[usize], seed: u64) -> DenseArray<i64> {
    uniform_cube(Shape::new(dims).unwrap(), 1000, seed)
}

fn server(a: &DenseArray<i64>, shards: usize) -> CubeServer {
    CubeServer::build(
        a,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn naive_sum(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, 0i64, |s, &x| s + x)
}

fn naive_max(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, i64::MIN, |m, &x| m.max(x))
}

fn naive_min(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, i64::MAX, |m, &x| m.min(x))
}

#[test]
fn sharded_sums_match_the_sequential_oracle() {
    let a = cube(&[32, 16], 11);
    let srv = server(&a, 4);
    assert_eq!(srv.shards(), 4);
    for r in uniform_regions(a.shape(), 60, 3) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&a, &r), "{r}");
        assert!(got.shards >= 1 && got.shards <= 4);
    }
}

#[test]
fn extrema_map_argmax_back_to_global_coordinates() {
    let a = cube(&[30, 12, 5], 17);
    let srv = server(&a, 5);
    for r in uniform_regions(a.shape(), 40, 5) {
        let max = srv.range_max(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(max.value, naive_max(&a, &r), "{r}");
        let at = max.at.expect("max carries argmax");
        assert!(r.contains(&at), "argmax {at:?} outside {r}");
        assert_eq!(*a.get(&at), max.value);

        let min = srv.range_min(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(min.value, naive_min(&a, &r), "{r}");
        let at = min.at.expect("min carries argmin");
        assert!(r.contains(&at), "argmin {at:?} outside {r}");
        assert_eq!(*a.get(&at), min.value);
    }
}

#[test]
fn single_row_cube_clamps_shard_count() {
    let a = cube(&[1, 40], 23);
    let srv = server(&a, 8);
    assert_eq!(srv.shards(), 1);
    let all = Region::from_bounds(&[(0, 0), (0, 39)]).unwrap();
    let got = srv.range_sum(&RangeQuery::from_region(&all)).unwrap();
    assert_eq!(got.value, naive_sum(&a, &all));
}

#[test]
fn cross_shard_updates_partition_and_bump_epochs() {
    let a = cube(&[24, 10], 29);
    let srv = server(&a, 4);
    // Engine pushes at build time already installed snapshots; updates
    // are measured as epoch deltas from here.
    let base: Vec<u64> = srv.shard_stats().iter().map(|s| s.epochs.epoch).collect();
    let mut shadow = a.clone();
    // One cell in every shard's slab, plus a duplicate (later wins).
    let batch = vec![
        (vec![0, 0], 555),
        (vec![7, 3], -4),
        (vec![13, 9], 0),
        (vec![23, 1], 77),
        (vec![0, 0], 556),
    ];
    for (idx, v) in &batch {
        *shadow.get_mut(idx) = *v;
    }
    srv.apply_updates(&batch).unwrap();
    for r in uniform_regions(a.shape(), 40, 31) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&shadow, &r), "{r}");
    }
    // Every shard was touched, so every shard installed one successor.
    for (s, base) in srv.shard_stats().iter().zip(&base) {
        assert_eq!(s.epochs.epoch, base + 1, "shard {}", s.shard);
        assert_eq!(s.queue_depth, 0, "shard {}", s.shard);
    }
}

#[test]
fn malformed_queries_and_updates_are_typed_errors() {
    let a = cube(&[16, 8], 37);
    let srv = server(&a, 4);
    let base: Vec<u64> = srv.shard_stats().iter().map(|s| s.epochs.epoch).collect();
    // Wrong arity.
    let bad = RangeQuery::all(3).unwrap();
    assert!(matches!(
        srv.range_sum(&bad),
        Err(ServerError::Validation(_))
    ));
    // Out-of-bounds update: nothing applied anywhere.
    assert!(matches!(
        srv.apply_updates(&[(vec![0, 0], 1), (vec![16, 0], 1)]),
        Err(ServerError::Validation(_))
    ));
    for (s, base) in srv.shard_stats().iter().zip(&base) {
        assert_eq!(
            s.epochs.epoch, *base,
            "shard {} must not have installed",
            s.shard
        );
    }
    // The server still answers afterwards.
    let all = Region::from_bounds(&[(0, 15), (0, 7)]).unwrap();
    let got = srv.range_sum(&RangeQuery::from_region(&all)).unwrap();
    assert_eq!(got.value, naive_sum(&a, &all));
}

#[test]
fn budget_admission_kills_over_limit_queries() {
    let a = cube(&[16, 16], 41);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            budget: QueryBudget::with_deadline(std::time::Duration::ZERO),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let all = Region::from_bounds(&[(0, 15), (0, 15)]).unwrap();
    match srv.range_sum(&RangeQuery::from_region(&all)) {
        Err(ServerError::Engine(e)) => assert!(e.is_interrupt(), "{e}"),
        other => panic!("expected a budget interrupt, got {other:?}"),
    }
}

#[test]
fn concurrent_load_driver_sees_only_pre_or_post_snapshots() {
    let a = cube(&[32, 12], 43);
    let srv = server(&a, 4);
    let base: u64 = srv.shard_stats().iter().map(|s| s.epochs.epoch).sum();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 10,
            queries_per_phase: 40,
            readers: 4,
            batch: 3,
            seed: 99,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.updates, 10);
    assert_eq!(report.answers, 400);
    // Ten single-shard batches over four round-robin shards.
    let stats = srv.shard_stats();
    let installs: u64 = stats.iter().map(|s| s.epochs.epoch).sum::<u64>() - base;
    assert_eq!(installs, 10);
    for s in &stats {
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.epochs.reclamation_lag, 0, "no pins left after joining");
    }
}

#[test]
fn chaos_snapshot_installs_stay_exact_under_injected_faults() {
    // Precomputed engines error and panic at high rates; the un-faulted
    // naive fallback plus failover keeps every answer oracle-exact, and
    // snapshot installs during the chaos never tear a reader.
    let a = cube(&[24, 10], 47);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            faults: Some(FaultPlan::seeded(5).errors(120).panics(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 6,
            queries_per_phase: 30,
            readers: 3,
            batch: 2,
            seed: 1234,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
}

#[test]
fn repeat_sum_queries_hit_the_per_shard_caches() {
    let a = cube(&[24, 10], 61);
    let srv = server(&a, 3);
    let r = Region::from_bounds(&[(2, 20), (1, 8)]).unwrap();
    let q = RangeQuery::from_region(&r);
    let first = srv.range_sum(&q).unwrap();
    let second = srv.range_sum(&q).unwrap();
    assert_eq!(first.value, second.value);
    assert_eq!(first.value, naive_sum(&a, &r));
    let stats = srv.cache_stats();
    // The repeat fanned out to every overlapping shard and each answered
    // from its cache.
    assert!(stats.hits >= 3, "{stats:?}");
    assert!(stats.entries >= 3, "{stats:?}");
    // The exact-hit path reports a token cost, far below a real
    // execution's.
    assert!(
        second.cost < first.cost,
        "{} !< {}",
        second.cost,
        first.cost
    );
}

#[test]
fn cache_disabled_server_stays_oracle_exact_with_idle_counters() {
    let a = cube(&[20, 8], 67);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 3,
            cache_size: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 4,
            queries_per_phase: 24,
            readers: 2,
            zipf_pool: 6,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    let c = report.cache;
    assert_eq!((c.hits, c.assemblies, c.misses, c.entries), (0, 0, 0, 0));
}

#[test]
fn zipf_load_hits_the_cache_and_stays_oracle_exact_across_installs() {
    let a = cube(&[32, 12], 71);
    let srv = server(&a, 4);
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 8,
            queries_per_phase: 40,
            readers: 4,
            batch: 3,
            seed: 404,
            zipf_pool: 10,
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.updates, 8);
    let c = report.cache;
    // Half the op mix is sums over a 10-region pool repeated each phase:
    // the caches must serve a solid fraction of those without a direct
    // execution, and installs must have invalidated region-wise rather
    // than flushing (entries survive to the end).
    assert!(c.hits > 0, "{c:?}");
    assert!(c.hit_rate() > 0.3, "{c:?}");
    assert!(c.entries > 0, "{c:?}");
    assert!(c.invalidations < c.insertions, "{c:?}");
}

#[test]
fn chaos_with_caches_and_zipf_locality_stays_oracle_exact() {
    // Fault injection degrades shards to tree/naive serving — exactly
    // where cache assembly and batch priming become economical — while
    // installs race readers. Every answer must still match an oracle.
    let a = cube(&[24, 10], 73);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            faults: Some(FaultPlan::seeded(9).errors(120).panics(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 6,
            queries_per_phase: 30,
            readers: 3,
            batch: 2,
            seed: 777,
            zipf_pool: 8,
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
}

#[test]
fn pinned_answers_survive_many_generations_of_installs() {
    // Serial sanity for the epoch machinery at the server level: after
    // many installs the oracle still agrees and the live-snapshot count
    // settles back to one per shard.
    let a = cube(&[16, 6], 53);
    let srv = server(&a, 4);
    let mut shadow = a.clone();
    for gen in 0..12u64 {
        let idx = vec![(gen as usize * 5) % 16, (gen as usize * 3) % 6];
        let v = gen as i64 * 100 - 300;
        *shadow.get_mut(&idx) = v;
        srv.apply_updates(&[(idx, v)]).unwrap();
    }
    for r in uniform_regions(a.shape(), 30, 59) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&shadow, &r), "{r}");
    }
    for s in srv.shard_stats() {
        assert_eq!(s.epochs.live_snapshots, 1, "shard {}", s.shard);
    }
}

// ---- graceful degradation -----------------------------------------------

/// A config whose budget trips on nearly every query but whose policy
/// degrades to the per-shard approximate tier instead of failing.
fn degrading_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        budget: QueryBudget::with_max_accesses(2).degrade(),
        ..ServeConfig::default()
    }
}

#[test]
fn zero_deadline_with_degrade_answers_every_query_approximately() {
    // The hardest budget there is: a deadline that has already passed.
    // Under DegradePolicy::Degrade every answer must still arrive, as an
    // estimate whose guaranteed interval contains the sequential oracle.
    let a = cube(&[24, 16], 71);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 3,
            budget: QueryBudget::with_deadline(std::time::Duration::ZERO).degrade(),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for r in uniform_regions(a.shape(), 40, 73) {
        let q = RangeQuery::from_region(&r);
        let sum = srv.range_sum(&q).unwrap();
        let est = sum.estimate.as_ref().expect("zero deadline must degrade");
        assert!(sum.contains(naive_sum(&a, &r)), "{r}: {sum:?}");
        assert!(est.lower <= sum.value && sum.value <= est.upper);
        assert!(est.degraded_shards >= 1 && est.degraded_shards <= sum.shards);
        assert!(est.exact_cells <= est.total_cells);
        assert_eq!(est.total_cells, r.volume() as u64);
        let max = srv.range_max(&q).unwrap();
        assert!(max.contains(naive_max(&a, &r)), "{r}: {max:?}");
        assert!(max.at.is_none(), "degraded extremum has no attained cell");
        let min = srv.range_min(&q).unwrap();
        assert!(min.contains(naive_min(&a, &r)), "{r}: {min:?}");
    }
}

#[test]
fn degraded_answers_are_deterministic_and_eq_comparable() {
    let a = cube(&[20, 12], 79);
    // Cache disabled so both runs take the identical path — a cache hit
    // would change the cost field between otherwise-equal answers.
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            cache_size: 0,
            ..degrading_config(2)
        },
    )
    .unwrap();
    let r = Region::from_bounds(&[(3, 17), (2, 10)]).unwrap();
    let q = RangeQuery::from_region(&r);
    let first = srv.range_sum(&q).unwrap();
    let second = srv.range_sum(&q).unwrap();
    assert!(first.is_degraded(), "{first:?}");
    // ServerAnswer (estimate included) derives Eq: the degraded path is
    // deterministic for a fixed snapshot.
    assert_eq!(first, second);
    assert!(first.contains(naive_sum(&a, &r)));
}

#[test]
fn degraded_load_under_budget_pressure_completes_with_zero_errors() {
    // The acceptance drill: a mixed Zipf workload under a budget that
    // kills nearly every exact query. With DegradePolicy::Degrade the run
    // completes with zero errors, every estimate interval contains an
    // oracle state, and exact answers stay bit-identical (the driver's
    // `ServerAnswer::contains` check covers both).
    let a = cube(&[32, 12], 83);
    let srv = CubeServer::build(&a, degrading_config(4)).unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 8,
            queries_per_phase: 40,
            readers: 4,
            batch: 3,
            seed: 311,
            zipf_pool: 24,
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert!(report.degraded > 0, "pressure must trigger the tier");
    assert!(report.degraded <= report.answers);
}

#[test]
fn chaos_with_degrade_under_installs_never_errs_and_never_lies() {
    // Fault storms on every precomputed engine *plus* an exhausted access
    // budget, with update batches installing mid-flight: the degrade path
    // must keep the run error-free, and every answer — exact or estimate —
    // must agree with a pre- or post-install oracle state.
    let a = cube(&[24, 10], 89);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            budget: QueryBudget::with_max_accesses(3).degrade(),
            faults: Some(FaultPlan::seeded(13).errors(150).panics(20)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 6,
            queries_per_phase: 30,
            readers: 3,
            batch: 2,
            seed: 977,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert!(report.degraded > 0, "{report:?}");
    assert_eq!(report.updates, 6, "installs kept landing during chaos");
}

#[test]
fn queue_depth_shedding_degrades_without_a_degrade_budget_policy() {
    // queue_depth_limit arms the tier on its own: with a threshold every
    // current depth exceeds, every fanned-out part is shed to the tier
    // pre-dispatch and tagged QueueDepth — even though the budget policy
    // is the default hard-fail.
    let a = cube(&[24, 16], 97);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 3,
            queue_depth_limit: Some(-1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for r in uniform_regions(a.shape(), 25, 101) {
        let q = RangeQuery::from_region(&r);
        let sum = srv.range_sum(&q).unwrap();
        let est = sum.estimate.as_ref().expect("all shards shed");
        assert_eq!(est.degraded_shards, sum.shards);
        assert!(sum.contains(naive_sum(&a, &r)), "{r}: {sum:?}");
        assert!(est.fraction_exact() >= 0.0 && est.fraction_exact() <= 1.0);
    }
    // An idle queue with a generous limit never sheds.
    let relaxed = CubeServer::build(
        &a,
        ServeConfig {
            shards: 3,
            queue_depth_limit: Some(1_000),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let r = Region::from_bounds(&[(1, 20), (2, 13)]).unwrap();
    let ans = relaxed.range_sum(&RangeQuery::from_region(&r)).unwrap();
    assert!(!ans.is_degraded());
    assert_eq!(ans.value, naive_sum(&a, &r));
}

#[test]
fn degraded_estimates_are_never_cached_as_exact() {
    // A degraded answer must not poison the semantic cache: lifting the
    // budget after degraded queries must yield exact answers again.
    let a = cube(&[20, 10], 103);
    let srv = CubeServer::build(&a, degrading_config(2)).unwrap();
    let r = Region::from_bounds(&[(2, 17), (1, 8)]).unwrap();
    let q = RangeQuery::from_region(&r);
    let degraded = srv.range_sum(&q).unwrap();
    assert!(degraded.is_degraded(), "{degraded:?}");
    // Re-querying must still report degradation: had the estimate been
    // inserted into a shard cache as an exact sum, the repeat would come
    // back as a non-degraded answer carrying an approximate value. (The
    // cache only inserts on its own exact path — a shard that answered
    // within budget may cache, a degraded shard never does.)
    let again = srv.range_sum(&q).unwrap();
    assert!(again.is_degraded(), "{again:?}");
    assert!(again.contains(naive_sum(&a, &r)));
    let exact_srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let exact = exact_srv.range_sum(&q).unwrap();
    assert!(!exact.is_degraded());
    assert_eq!(exact.value, naive_sum(&a, &r));
}
