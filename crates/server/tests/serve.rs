//! End-to-end coverage of the sharded snapshot-isolated server: fan-out
//! correctness against the sequential oracle, global coordinate mapping,
//! update partitioning, concurrent pre-or-post isolation, chaos drills
//! over snapshot installs, and budget admission.

use olap_array::{DenseArray, QueryBudget, Region, Shape};
use olap_engine::FaultPlan;
use olap_query::RangeQuery;
use olap_server::{drive_load, CubeServer, LoadSpec, ServeConfig, ServerError};
use olap_workload::{uniform_cube, uniform_regions};

fn cube(dims: &[usize], seed: u64) -> DenseArray<i64> {
    uniform_cube(Shape::new(dims).unwrap(), 1000, seed)
}

fn server(a: &DenseArray<i64>, shards: usize) -> CubeServer {
    CubeServer::build(
        a,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn naive_sum(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, 0i64, |s, &x| s + x)
}

fn naive_max(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, i64::MIN, |m, &x| m.max(x))
}

fn naive_min(a: &DenseArray<i64>, r: &Region) -> i64 {
    a.fold_region(r, i64::MAX, |m, &x| m.min(x))
}

#[test]
fn sharded_sums_match_the_sequential_oracle() {
    let a = cube(&[32, 16], 11);
    let srv = server(&a, 4);
    assert_eq!(srv.shards(), 4);
    for r in uniform_regions(a.shape(), 60, 3) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&a, &r), "{r}");
        assert!(got.shards >= 1 && got.shards <= 4);
    }
}

#[test]
fn extrema_map_argmax_back_to_global_coordinates() {
    let a = cube(&[30, 12, 5], 17);
    let srv = server(&a, 5);
    for r in uniform_regions(a.shape(), 40, 5) {
        let max = srv.range_max(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(max.value, naive_max(&a, &r), "{r}");
        let at = max.at.expect("max carries argmax");
        assert!(r.contains(&at), "argmax {at:?} outside {r}");
        assert_eq!(*a.get(&at), max.value);

        let min = srv.range_min(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(min.value, naive_min(&a, &r), "{r}");
        let at = min.at.expect("min carries argmin");
        assert!(r.contains(&at), "argmin {at:?} outside {r}");
        assert_eq!(*a.get(&at), min.value);
    }
}

#[test]
fn single_row_cube_clamps_shard_count() {
    let a = cube(&[1, 40], 23);
    let srv = server(&a, 8);
    assert_eq!(srv.shards(), 1);
    let all = Region::from_bounds(&[(0, 0), (0, 39)]).unwrap();
    let got = srv.range_sum(&RangeQuery::from_region(&all)).unwrap();
    assert_eq!(got.value, naive_sum(&a, &all));
}

#[test]
fn cross_shard_updates_partition_and_bump_epochs() {
    let a = cube(&[24, 10], 29);
    let srv = server(&a, 4);
    // Engine pushes at build time already installed snapshots; updates
    // are measured as epoch deltas from here.
    let base: Vec<u64> = srv.shard_stats().iter().map(|s| s.epochs.epoch).collect();
    let mut shadow = a.clone();
    // One cell in every shard's slab, plus a duplicate (later wins).
    let batch = vec![
        (vec![0, 0], 555),
        (vec![7, 3], -4),
        (vec![13, 9], 0),
        (vec![23, 1], 77),
        (vec![0, 0], 556),
    ];
    for (idx, v) in &batch {
        *shadow.get_mut(idx) = *v;
    }
    srv.apply_updates(&batch).unwrap();
    for r in uniform_regions(a.shape(), 40, 31) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&shadow, &r), "{r}");
    }
    // Every shard was touched, so every shard installed one successor.
    for (s, base) in srv.shard_stats().iter().zip(&base) {
        assert_eq!(s.epochs.epoch, base + 1, "shard {}", s.shard);
        assert_eq!(s.queue_depth, 0, "shard {}", s.shard);
    }
}

#[test]
fn malformed_queries_and_updates_are_typed_errors() {
    let a = cube(&[16, 8], 37);
    let srv = server(&a, 4);
    let base: Vec<u64> = srv.shard_stats().iter().map(|s| s.epochs.epoch).collect();
    // Wrong arity.
    let bad = RangeQuery::all(3).unwrap();
    assert!(matches!(
        srv.range_sum(&bad),
        Err(ServerError::Validation(_))
    ));
    // Out-of-bounds update: nothing applied anywhere.
    assert!(matches!(
        srv.apply_updates(&[(vec![0, 0], 1), (vec![16, 0], 1)]),
        Err(ServerError::Validation(_))
    ));
    for (s, base) in srv.shard_stats().iter().zip(&base) {
        assert_eq!(
            s.epochs.epoch, *base,
            "shard {} must not have installed",
            s.shard
        );
    }
    // The server still answers afterwards.
    let all = Region::from_bounds(&[(0, 15), (0, 7)]).unwrap();
    let got = srv.range_sum(&RangeQuery::from_region(&all)).unwrap();
    assert_eq!(got.value, naive_sum(&a, &all));
}

#[test]
fn budget_admission_kills_over_limit_queries() {
    let a = cube(&[16, 16], 41);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            budget: QueryBudget::with_deadline(std::time::Duration::ZERO),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let all = Region::from_bounds(&[(0, 15), (0, 15)]).unwrap();
    match srv.range_sum(&RangeQuery::from_region(&all)) {
        Err(ServerError::Engine(e)) => assert!(e.is_interrupt(), "{e}"),
        other => panic!("expected a budget interrupt, got {other:?}"),
    }
}

#[test]
fn concurrent_load_driver_sees_only_pre_or_post_snapshots() {
    let a = cube(&[32, 12], 43);
    let srv = server(&a, 4);
    let base: u64 = srv.shard_stats().iter().map(|s| s.epochs.epoch).sum();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 10,
            queries_per_phase: 40,
            readers: 4,
            batch: 3,
            seed: 99,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.updates, 10);
    assert_eq!(report.answers, 400);
    // Ten single-shard batches over four round-robin shards.
    let stats = srv.shard_stats();
    let installs: u64 = stats.iter().map(|s| s.epochs.epoch).sum::<u64>() - base;
    assert_eq!(installs, 10);
    for s in &stats {
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.epochs.reclamation_lag, 0, "no pins left after joining");
    }
}

#[test]
fn chaos_snapshot_installs_stay_exact_under_injected_faults() {
    // Precomputed engines error and panic at high rates; the un-faulted
    // naive fallback plus failover keeps every answer oracle-exact, and
    // snapshot installs during the chaos never tear a reader.
    let a = cube(&[24, 10], 47);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            faults: Some(FaultPlan::seeded(5).errors(120).panics(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 6,
            queries_per_phase: 30,
            readers: 3,
            batch: 2,
            seed: 1234,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
}

#[test]
fn repeat_sum_queries_hit_the_per_shard_caches() {
    let a = cube(&[24, 10], 61);
    let srv = server(&a, 3);
    let r = Region::from_bounds(&[(2, 20), (1, 8)]).unwrap();
    let q = RangeQuery::from_region(&r);
    let first = srv.range_sum(&q).unwrap();
    let second = srv.range_sum(&q).unwrap();
    assert_eq!(first.value, second.value);
    assert_eq!(first.value, naive_sum(&a, &r));
    let stats = srv.cache_stats();
    // The repeat fanned out to every overlapping shard and each answered
    // from its cache.
    assert!(stats.hits >= 3, "{stats:?}");
    assert!(stats.entries >= 3, "{stats:?}");
    // The exact-hit path reports a token cost, far below a real
    // execution's.
    assert!(
        second.cost < first.cost,
        "{} !< {}",
        second.cost,
        first.cost
    );
}

#[test]
fn cache_disabled_server_stays_oracle_exact_with_idle_counters() {
    let a = cube(&[20, 8], 67);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 3,
            cache_size: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 4,
            queries_per_phase: 24,
            readers: 2,
            zipf_pool: 6,
            ..LoadSpec::default()
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    let c = report.cache;
    assert_eq!((c.hits, c.assemblies, c.misses, c.entries), (0, 0, 0, 0));
}

#[test]
fn zipf_load_hits_the_cache_and_stays_oracle_exact_across_installs() {
    let a = cube(&[32, 12], 71);
    let srv = server(&a, 4);
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 8,
            queries_per_phase: 40,
            readers: 4,
            batch: 3,
            seed: 404,
            zipf_pool: 10,
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
    assert_eq!(report.updates, 8);
    let c = report.cache;
    // Half the op mix is sums over a 10-region pool repeated each phase:
    // the caches must serve a solid fraction of those without a direct
    // execution, and installs must have invalidated region-wise rather
    // than flushing (entries survive to the end).
    assert!(c.hits > 0, "{c:?}");
    assert!(c.hit_rate() > 0.3, "{c:?}");
    assert!(c.entries > 0, "{c:?}");
    assert!(c.invalidations < c.insertions, "{c:?}");
}

#[test]
fn chaos_with_caches_and_zipf_locality_stays_oracle_exact() {
    // Fault injection degrades shards to tree/naive serving — exactly
    // where cache assembly and batch priming become economical — while
    // installs race readers. Every answer must still match an oracle.
    let a = cube(&[24, 10], 73);
    let srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 4,
            faults: Some(FaultPlan::seeded(9).errors(120).panics(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = drive_load(
        &srv,
        &a,
        &LoadSpec {
            phases: 6,
            queries_per_phase: 30,
            readers: 3,
            batch: 2,
            seed: 777,
            zipf_pool: 8,
        },
    )
    .unwrap();
    assert!(report.passed(), "{report:?}");
}

#[test]
fn pinned_answers_survive_many_generations_of_installs() {
    // Serial sanity for the epoch machinery at the server level: after
    // many installs the oracle still agrees and the live-snapshot count
    // settles back to one per shard.
    let a = cube(&[16, 6], 53);
    let srv = server(&a, 4);
    let mut shadow = a.clone();
    for gen in 0..12u64 {
        let idx = vec![(gen as usize * 5) % 16, (gen as usize * 3) % 6];
        let v = gen as i64 * 100 - 300;
        *shadow.get_mut(&idx) = v;
        srv.apply_updates(&[(idx, v)]).unwrap();
    }
    for r in uniform_regions(a.shape(), 30, 59) {
        let got = srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        assert_eq!(got.value, naive_sum(&shadow, &r), "{r}");
    }
    for s in srv.shard_stats() {
        assert_eq!(s.epochs.live_snapshots, 1, "shard {}", s.shard);
    }
}
