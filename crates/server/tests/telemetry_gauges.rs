//! The serving gauges are real, not decorative: with a telemetry scope
//! active, building a server, answering queries, and installing updates
//! must publish per-shard snapshot and queue metrics into the registry.

#![cfg(feature = "telemetry")]

use olap_array::{Region, Shape};
use olap_query::RangeQuery;
use olap_server::{CubeServer, ServeConfig};
use olap_telemetry::{MetricValue, Telemetry};
use olap_workload::{uniform_cube, uniform_regions};
use std::sync::Arc;

#[test]
fn serving_publishes_snapshot_and_queue_gauges() {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, 61);
    let ctx = Arc::new(Telemetry::new());
    // The registry is read while the server is still alive: dropping it
    // releases every epoch and the live gauges legitimately fall to zero.
    let snap = olap_telemetry::with_scope(&ctx, || {
        let srv = CubeServer::build(
            &a,
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for r in uniform_regions(a.shape(), 5, 67) {
            srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        }
        srv.apply_updates(&[(vec![3, 3], 9), (vec![12, 1], -2)])
            .unwrap();
        ctx.registry().snapshot()
    });
    let gauge = |name: &str, key: &str, label: &str| -> Option<f64> {
        snap.iter().find_map(|m| {
            let matches = m.name == name && m.labels.iter().any(|(k, v)| k == key && v == label);
            match (&m.value, matches) {
                (MetricValue::Gauge(v), true) => Some(*v),
                _ => None,
            }
        })
    };

    // Exact values are timing-dependent (a worker thread may still pin
    // the superseded snapshot), so the assertions are presence plus
    // tight ranges.
    for shard in ["shard-0", "shard-1"] {
        let live = gauge("olap_snapshot_live", "cell", shard)
            .unwrap_or_else(|| panic!("no olap_snapshot_live for {shard}"));
        assert!(
            (1.0..=2.0).contains(&live),
            "{shard}: live snapshots {live}"
        );
        let lag = gauge("olap_snapshot_epoch_lag", "cell", shard)
            .unwrap_or_else(|| panic!("no olap_snapshot_epoch_lag for {shard}"));
        assert!((0.0..=1.0).contains(&lag), "{shard}: lag {lag}");
        let depth = gauge("olap_shard_queue_depth", "shard", shard)
            .unwrap_or_else(|| panic!("no olap_shard_queue_depth for {shard}"));
        assert!((0.0..=1.0).contains(&depth), "{shard}: depth {depth}");
    }
}

#[test]
fn serving_publishes_semantic_cache_counters_and_entry_gauge() {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, 62);
    let ctx = Arc::new(Telemetry::new());
    let snap = olap_telemetry::with_scope(&ctx, || {
        let srv = CubeServer::build(
            &a,
            ServeConfig {
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Same full-cube sum twice: one miss + one exact hit per shard
        // (workers re-enter the builder's telemetry scope, so their cache
        // counters publish here).
        let q = RangeQuery::from_region(&Region::from_bounds(&[(0, 15), (0, 7)]).unwrap());
        srv.range_sum(&q).unwrap();
        srv.range_sum(&q).unwrap();
        // An install overlapping shard-0's entry invalidates it region-wise.
        srv.apply_updates(&[(vec![3, 3], 9)]).unwrap();
        ctx.registry().snapshot()
    });
    let counter = |name: &str, label: &str| -> u64 {
        snap.iter()
            .find_map(|m| {
                let matches =
                    m.name == name && m.labels.iter().any(|(k, v)| k == "cache" && v == label);
                match (&m.value, matches) {
                    (MetricValue::Counter(v), true) => Some(*v),
                    _ => None,
                }
            })
            .unwrap_or_else(|| panic!("no {name} for {label}"))
    };
    for shard in ["shard-0", "shard-1"] {
        assert_eq!(counter("olap_cache_misses_total", shard), 1, "{shard}");
        assert_eq!(counter("olap_cache_hits_total", shard), 1, "{shard}");
        assert_eq!(counter("olap_cache_insertions_total", shard), 1, "{shard}");
    }
    // Only the updated shard invalidated, and its entry gauge fell back
    // to zero while the untouched shard still holds one.
    assert_eq!(counter("olap_cache_invalidations_total", "shard-0"), 1);
    assert!(
        snap.iter()
            .all(|m| m.name != "olap_cache_invalidations_total"
                || !m.labels.iter().any(|(k, v)| k == "cache" && v == "shard-1")),
        "shard-1 must not have invalidated"
    );
    let gauge = |label: &str| -> f64 {
        snap.iter()
            .find_map(|m| {
                let matches = m.name == "olap_cache_entries"
                    && m.labels.iter().any(|(k, v)| k == "cache" && v == label);
                match (&m.value, matches) {
                    (MetricValue::Gauge(v), true) => Some(*v),
                    _ => None,
                }
            })
            .unwrap_or_else(|| panic!("no olap_cache_entries for {label}"))
    };
    assert_eq!(gauge("shard-0"), 0.0);
    assert_eq!(gauge("shard-1"), 1.0);
}

#[test]
fn degraded_serving_publishes_approx_counters_and_slo_check() {
    use olap_array::QueryBudget;
    use olap_server::{degraded_fraction_report, SloSpec};

    let a = uniform_cube(Shape::new(&[24, 10]).unwrap(), 300, 63);
    let ctx = Arc::new(Telemetry::new());
    let queries = 12usize;
    let snap = olap_telemetry::with_scope(&ctx, || {
        let srv = CubeServer::build(
            &a,
            ServeConfig {
                shards: 2,
                budget: QueryBudget::with_deadline(std::time::Duration::ZERO).degrade(),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        for r in uniform_regions(a.shape(), queries, 69) {
            assert!(srv
                .range_sum(&RangeQuery::from_region(&r))
                .unwrap()
                .is_degraded());
        }
        ctx.registry().snapshot()
    });
    let counter_sum = |name: &str| -> u64 {
        snap.iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    };
    // Every query degraded, on at least one shard each.
    assert_eq!(counter_sum("olap_serve_answers_total"), queries as u64);
    assert_eq!(counter_sum("olap_serve_degraded_total"), queries as u64);
    let approx = counter_sum("olap_approx_answers_total");
    assert!(approx >= queries as u64, "per-shard tier answers: {approx}");
    // The per-shard counters carry the reason label.
    assert!(
        snap.iter().any(|m| m.name == "olap_approx_answers_total"
            && m.labels
                .iter()
                .any(|(k, v)| k == "reason" && v == "deadline_exceeded")),
        "reason label missing"
    );
    // The relative-bound histogram recorded one sample per tier answer.
    let bound_samples = snap
        .iter()
        .find_map(|m| match (&*m.name, &m.value) {
            ("olap_approx_relative_bound", MetricValue::Histogram(h)) => Some(h.count),
            _ => None,
        })
        .expect("olap_approx_relative_bound histogram present");
    assert_eq!(bound_samples, approx);
    // A 100% degraded run violates any finite degraded-fraction SLO…
    let v = degraded_fraction_report(ctx.registry(), &SloSpec::max_degraded_fraction(0.5))
        .expect("all answers degraded");
    assert_eq!(v.observed_per_mille, 1000);
    assert_eq!(v.total, queries as u64);
    // …and the counters render on the Prometheus exposition.
    let text = ctx.registry().render_prometheus();
    assert!(text.contains("olap_serve_degraded_total"), "{text}");
    assert!(text.contains("olap_approx_answers_total"), "{text}");
    assert!(text.contains("olap_approx_relative_bound"), "{text}");
}
