//! Acceptance: end-to-end query traces assemble into correctly nested
//! span trees whose stage durations account for the query's wall time.
//!
//! The shape under test (see `olap_telemetry::trace` module docs):
//!
//! ```text
//! serve_query
//! ├─ queue_wait      (per shard; crosses the mpsc queue)
//! ├─ shard_exec      (per shard; worker side)
//! │  ├─ cache_lookup
//! │  └─ router_dispatch
//! │     └─ kernel_exec
//! └─ merge
//! ```

#![cfg(feature = "telemetry")]

use olap_array::{Region, Shape};
use olap_query::RangeQuery;
use olap_server::{CubeServer, ServeConfig};
use olap_telemetry::{MetricValue, SpanTree, Telemetry, TraceSink};
use olap_workload::{uniform_cube, uniform_regions};
use std::sync::Arc;
use std::time::Duration;

fn traced_server(cube_seed: u64, shards: usize) -> (CubeServer, Arc<TraceSink>) {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, cube_seed);
    let mut srv = CubeServer::build(
        &a,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let sink = Arc::new(TraceSink::new());
    srv.enable_tracing(Arc::clone(&sink));
    (srv, sink)
}

/// Every span in the tree starts and ends inside its parent.
fn assert_contained(tree: &SpanTree) {
    for c in &tree.children {
        assert!(
            c.record.start_ns >= tree.record.start_ns,
            "child {} starts before parent {}:\n{}",
            c.record.name,
            tree.record.name,
            tree.render()
        );
        assert!(
            c.record.end_ns() <= tree.record.end_ns(),
            "child {} outlives parent {}:\n{}",
            c.record.name,
            tree.record.name,
            tree.render()
        );
        assert_contained(c);
    }
}

#[test]
fn single_shard_trace_has_the_documented_shape_and_adds_up() {
    let (srv, sink) = traced_server(91, 1);
    let q = RangeQuery::from_region(&Region::from_bounds(&[(2, 13), (1, 6)]).unwrap());
    srv.range_sum(&q).unwrap();

    let ids = sink.trace_ids();
    assert_eq!(ids.len(), 1, "one query, one trace");
    let tree = sink.trace_tree(ids[0]).expect("root span stored");
    assert_eq!(tree.record.name, "serve_query");
    assert_contained(&tree);

    // Every serving stage shows up as its own span, correctly parented.
    let edges = tree.edge_set();
    for expected in [
        ("cache_lookup", "shard_exec"),
        ("kernel_exec", "router_dispatch"),
        ("merge", "serve_query"),
        ("queue_wait", "serve_query"),
        ("router_dispatch", "shard_exec"),
        ("shard_exec", "serve_query"),
    ] {
        assert!(
            edges.contains(&expected),
            "missing {expected:?} in {edges:?}"
        );
    }

    // The root's direct children are disjoint in time on a single shard
    // (queue wait ends before the worker executes; merge follows the
    // reply), so their durations sum to at most the end-to-end latency…
    let child_sum: u64 = tree.children.iter().map(|c| c.record.dur_ns).sum();
    assert!(
        child_sum <= tree.record.dur_ns,
        "children sum {child_sum}ns > root {}ns:\n{}",
        tree.record.dur_ns,
        tree.render()
    );
    // …and the unattributed remainder is only the fan-out bookkeeping
    // between spans (region math, channel setup, sorting) — bounded by a
    // generous scheduling slop, not by another hidden stage.
    let slop_ns = 100_000_000;
    assert!(
        tree.record.dur_ns - child_sum < slop_ns,
        "unattributed gap {}ns:\n{}",
        tree.record.dur_ns - child_sum,
        tree.render()
    );

    // The queue crossing moved the span to the worker thread.
    let queue_wait = tree.find("queue_wait").expect("queue_wait span");
    let exec = tree.find("shard_exec").expect("shard_exec span");
    assert_eq!(queue_wait.record.tid, exec.record.tid);
    assert_ne!(tree.record.tid, exec.record.tid);
}

#[test]
fn repeat_query_trace_shows_the_cache_short_circuit() {
    let (srv, sink) = traced_server(17, 1);
    let q = RangeQuery::from_region(&Region::from_bounds(&[(0, 9), (2, 7)]).unwrap());
    srv.range_sum(&q).unwrap();
    srv.range_sum(&q).unwrap();

    let ids = sink.trace_ids();
    assert_eq!(ids.len(), 2);
    let first = sink.trace_tree(ids[0]).unwrap();
    let second = sink.trace_tree(ids[1]).unwrap();
    // Cold query went to the router; the exact hit never did.
    assert!(
        first.find("router_dispatch").is_some(),
        "{}",
        first.render()
    );
    assert!(
        second.find("router_dispatch").is_none(),
        "{}",
        second.render()
    );
    assert!(second.find("cache_lookup").is_some(), "{}", second.render());
    assert!(second.span_count() < first.span_count());
}

#[test]
fn fan_out_traces_every_overlapping_shard_and_feeds_latency_histograms() {
    let ctx = Arc::new(Telemetry::new());
    let (trees, snap) = olap_telemetry::with_scope(&ctx, || {
        let (srv, sink) = traced_server(23, 2);
        for r in uniform_regions(srv.shape(), 4, 77) {
            srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
        }
        // A full-cube extremum crosses both shards.
        srv.range_max(&RangeQuery::from_region(
            &Region::from_bounds(&[(0, 15), (0, 7)]).unwrap(),
        ))
        .unwrap();
        let trees: Vec<_> = sink
            .trace_ids()
            .into_iter()
            .map(|id| sink.trace_tree(id).unwrap())
            .collect();
        (trees, ctx.registry().snapshot())
    });
    assert_eq!(trees.len(), 5);
    let max_tree = trees.last().unwrap();
    assert_contained(max_tree);
    let shard_execs = max_tree
        .children
        .iter()
        .filter(|c| c.record.name == "shard_exec")
        .count();
    assert_eq!(shard_execs, 2, "{}", max_tree.render());

    // Each shard's reply latency landed in its own histogram series.
    let observed: Vec<(String, u64)> = snap
        .iter()
        .filter(|m| m.name == "olap_serve_latency_ns")
        .filter_map(|m| match &m.value {
            MetricValue::Histogram(h) => {
                Some((m.label("shard").unwrap_or("?").to_string(), h.count))
            }
            _ => None,
        })
        .collect();
    assert_eq!(observed.len(), 2, "{observed:?}");
    let total: u64 = observed.iter().map(|(_, n)| n).sum();
    // 4 sums (each hits ≥ 1 shard) + 1 max hitting both shards.
    assert!(total >= 6, "{observed:?}");
    // Spans fed the span-nanos family through the subscriber seam too.
    assert!(
        snap.iter()
            .any(|m| m.name == "olap_span_nanos" && m.label("span") == Some("serve_query")),
        "olap_span_nanos missing serve_query series"
    );
}

#[test]
fn slow_ring_keeps_full_trees_for_over_threshold_queries() {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, 5);
    let mut srv = CubeServer::build(&a, ServeConfig::default()).unwrap();
    // Zero threshold: every query is "slow", so the ring sees them all.
    let sink = Arc::new(TraceSink::with_slow_ring(4096, Duration::ZERO, 2));
    srv.enable_tracing(Arc::clone(&sink));
    for r in uniform_regions(srv.shape(), 3, 11) {
        srv.range_sum(&RangeQuery::from_region(&r)).unwrap();
    }
    let slow = sink.slow_traces();
    assert_eq!(slow.len(), 2, "ring capacity bounds retention");
    for t in &slow {
        assert!(
            t.spans.iter().any(|s| s.name == "serve_query"),
            "slow trace retains its root"
        );
        assert!(t.spans.iter().any(|s| s.name == "shard_exec"));
        assert!(t.root_dur_ns >= t.spans.iter().map(|s| s.dur_ns).max().unwrap_or(0));
    }
}

#[test]
fn untraced_server_records_nothing_and_exports_cleanly() {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, 8);
    let srv = CubeServer::build(&a, ServeConfig::default()).unwrap();
    assert!(srv.tracer().is_none());
    srv.range_sum(&RangeQuery::from_region(
        &Region::from_bounds(&[(0, 15), (0, 7)]).unwrap(),
    ))
    .unwrap();
    assert!(!olap_telemetry::tracing_active());

    // And a sink that did see traffic exports loadable Chrome JSON.
    let (traced, sink) = traced_server(3, 2);
    traced
        .range_sum(&RangeQuery::from_region(
            &Region::from_bounds(&[(0, 15), (0, 7)]).unwrap(),
        ))
        .unwrap();
    let json = sink.to_chrome_json();
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"serve_query\""), "{json}");
    assert!(json.contains("\"ph\": \"X\""), "{json}");
}

#[test]
fn head_sampling_traces_every_nth_query_and_nothing_else() {
    let a = uniform_cube(Shape::new(&[16, 8]).unwrap(), 300, 5);
    let mut srv = CubeServer::build(
        &a,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let sink = Arc::new(TraceSink::new());
    srv.enable_tracing_sampled(Arc::clone(&sink), 4);

    let regions = uniform_regions(srv.shape(), 10, 77);
    for r in &regions {
        srv.range_sum(&RangeQuery::from_region(r)).unwrap();
    }

    // Queries 0, 4, 8 of the 10 are sampled; each sampled trace is a
    // full tree, the rest leave no spans at all.
    let ids = sink.trace_ids();
    assert_eq!(ids.len(), 3, "1-in-4 sample of 10 queries");
    for id in ids {
        let tree = sink.trace_tree(id).expect("sampled trace assembles");
        assert_eq!(tree.record.name, "serve_query");
        assert!(tree.find("shard_exec").is_some(), "{}", tree.render());
        assert_contained(&tree);
    }

    // `enable_tracing` resets to tracing every query.
    srv.enable_tracing(Arc::clone(&sink));
    let before = sink.trace_ids().len();
    for r in &regions {
        srv.range_sum(&RangeQuery::from_region(r)).unwrap();
    }
    assert_eq!(sink.trace_ids().len(), before + regions.len());
}
