//! A from-scratch B+-tree keyed by `usize` (§10.1's index over the sparse
//! one-dimensional prefix array, per \[Com79\]).
//!
//! Keys live only in the leaves; internal nodes carry separator keys (the
//! smallest key of each right sibling subtree). Besides exact lookup, the
//! tree supports the two queries §10.1 needs: `floor` (the last defined
//! entry ≤ k, for `P[ĥ]`) and `ceiling` (the first defined entry ≥ k).

/// A B+-tree from `usize` keys to values.
///
/// # Examples
///
/// ```
/// use olap_sparse::BPlusTree;
///
/// let mut t = BPlusTree::new(8);
/// for k in [10usize, 20, 30] {
///     t.insert(k, k * 100);
/// }
/// // §10.1's floor lookup: the last defined prefix ≤ a bound.
/// assert_eq!(t.floor(25), Some((20, &2000)));
/// assert_eq!(t.ceiling(25), Some((30, &3000)));
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Node<V>,
    /// Maximum entries per node; nodes split at `order` entries.
    order: usize,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        keys: Vec<usize>,
        vals: Vec<V>,
    },
    Internal {
        seps: Vec<usize>,
        children: Vec<Node<V>>,
    },
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        BPlusTree::new(16)
    }
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree with the given node capacity (≥ 4).
    pub fn new(order: usize) -> Self {
        // analyzer: allow(panic-site, reason = "documented constructor precondition on the branching factor; not reachable from query execution")
        assert!(order >= 4, "B+-tree order must be at least 4");
        BPlusTree {
            root: Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            },
            order,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces; returns the previous value for the key.
    pub fn insert(&mut self, key: usize, value: V) -> Option<V> {
        let order = self.order;
        let (old, split) = self.root.insert(key, value, order);
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                },
            );
            self.root = Node::Internal {
                seps: vec![sep],
                children: vec![old_root, right],
            };
        }
        old
    }

    /// Exact lookup.
    pub fn get(&self, key: usize) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| &vals[i]);
                }
                Node::Internal { seps, children } => {
                    let i = seps.partition_point(|s| *s <= key);
                    node = &children[i];
                }
            }
        }
    }

    /// The entry with the greatest key `≤ key` (the `P[ĥ]` lookup of
    /// §10.1).
    pub fn floor(&self, key: usize) -> Option<(usize, &V)> {
        Self::floor_in(&self.root, key)
    }

    fn floor_in(node: &Node<V>, key: usize) -> Option<(usize, &V)> {
        match node {
            Node::Leaf { keys, vals } => {
                let i = keys.partition_point(|k| *k <= key);
                if i == 0 {
                    None
                } else {
                    Some((keys[i - 1], &vals[i - 1]))
                }
            }
            Node::Internal { seps, children } => {
                let mut i = seps.partition_point(|s| *s <= key);
                // analyzer: allow(budget-coverage, reason = "descent within one node: bounded by B-tree fan-out; callers charge per key probed")
                loop {
                    if let Some(found) = Self::floor_in(&children[i], key) {
                        return Some(found);
                    }
                    if i == 0 {
                        return None;
                    }
                    i -= 1; // key smaller than everything in child i
                }
            }
        }
    }

    /// The entry with the smallest key `≥ key` (the `P[ℓ̂]` lookup of
    /// §10.1).
    pub fn ceiling(&self, key: usize) -> Option<(usize, &V)> {
        Self::ceiling_in(&self.root, key)
    }

    fn ceiling_in(node: &Node<V>, key: usize) -> Option<(usize, &V)> {
        match node {
            Node::Leaf { keys, vals } => {
                let i = keys.partition_point(|k| *k < key);
                if i == keys.len() {
                    None
                } else {
                    Some((keys[i], &vals[i]))
                }
            }
            Node::Internal { seps, children } => {
                let mut i = seps.partition_point(|s| *s <= key);
                loop {
                    if let Some(found) = Self::ceiling_in(&children[i], key) {
                        return Some(found);
                    }
                    i += 1;
                    if i == children.len() {
                        return None;
                    }
                }
            }
        }
    }

    /// In-order iteration over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        let mut stack = vec![(&self.root, 0usize)];
        std::iter::from_fn(move || loop {
            let (node, pos) = stack.pop()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if pos < keys.len() {
                        stack.push((node, pos + 1));
                        return Some((keys[pos], &vals[pos]));
                    }
                }
                Node::Internal { children, .. } => {
                    if pos < children.len() {
                        stack.push((node, pos + 1));
                        stack.push((&children[pos], 0));
                    }
                }
            }
        })
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        // analyzer: allow(budget-coverage, reason = "walks one root-to-leaf spine: trip count = O(log N) tree height")
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

impl<V> Node<V> {
    /// Inserts into the subtree; returns (replaced value, split info).
    fn insert(
        &mut self,
        key: usize,
        value: V,
        order: usize,
    ) -> (Option<V>, Option<(usize, Node<V>)>) {
        match self {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => (Some(std::mem::replace(&mut vals[i], value)), None),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() >= order {
                        let mid = keys.len() / 2;
                        let rk: Vec<usize> = keys.split_off(mid);
                        let rv: Vec<V> = vals.split_off(mid);
                        let sep = rk[0];
                        (None, Some((sep, Node::Leaf { keys: rk, vals: rv })))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { seps, children } => {
                let i = seps.partition_point(|s| *s <= key);
                let (old, split) = children[i].insert(key, value, order);
                if let Some((sep, right)) = split {
                    seps.insert(i, sep);
                    children.insert(i + 1, right);
                    if children.len() > order {
                        let mid = children.len() / 2;
                        let rsep = seps[mid - 1];
                        let r_seps: Vec<usize> = seps.split_off(mid);
                        seps.pop(); // rsep moves up
                        let r_children: Vec<Node<V>> = children.split_off(mid);
                        return (
                            old,
                            Some((
                                rsep,
                                Node::Internal {
                                    seps: r_seps,
                                    children: r_children,
                                },
                            )),
                        );
                    }
                }
                (old, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new(4);
        for k in [5usize, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        assert_eq!(t.len(), 10);
        for k in 0..10 {
            assert_eq!(t.get(k), Some(&(k * 10)));
        }
        assert_eq!(t.get(10), None);
    }

    #[test]
    fn replace_returns_old() {
        let mut t = BPlusTree::new(4);
        t.insert(3, "a");
        assert_eq!(t.insert(3, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(3), Some(&"b"));
    }

    #[test]
    fn floor_and_ceiling() {
        let mut t = BPlusTree::new(4);
        for k in [10usize, 20, 30, 40] {
            t.insert(k, k);
        }
        assert_eq!(t.floor(25), Some((20, &20)));
        assert_eq!(t.floor(20), Some((20, &20)));
        assert_eq!(t.floor(9), None);
        assert_eq!(t.floor(1000), Some((40, &40)));
        assert_eq!(t.ceiling(25), Some((30, &30)));
        assert_eq!(t.ceiling(30), Some((30, &30)));
        assert_eq!(t.ceiling(41), None);
        assert_eq!(t.ceiling(0), Some((10, &10)));
    }

    #[test]
    fn iter_is_sorted() {
        let mut t = BPlusTree::new(5);
        let mut keys: Vec<usize> = (0..200).map(|i| (i * 37) % 1000).collect();
        for &k in &keys {
            t.insert(k, k);
        }
        keys.sort_unstable();
        keys.dedup();
        let got: Vec<usize> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn grows_in_depth_and_stays_correct() {
        let mut t = BPlusTree::new(4);
        for k in 0..5000usize {
            t.insert(k * 2, k);
        }
        assert!(t.depth() > 3);
        assert_eq!(t.len(), 5000);
        // Odd keys are absent; floor/ceiling bracket them.
        assert_eq!(t.get(999), None);
        assert_eq!(t.floor(999).unwrap().0, 998);
        assert_eq!(t.ceiling(999).unwrap().0, 1000);
    }

    #[test]
    fn exhaustive_floor_ceiling_against_btreemap() {
        use std::collections::BTreeMap;
        let mut t = BPlusTree::new(4);
        let mut reference = BTreeMap::new();
        for i in 0..500usize {
            let k = (i * 811) % 2039;
            t.insert(k, i);
            reference.insert(k, i);
        }
        for probe in 0..2100 {
            let f = t.floor(probe).map(|(k, v)| (k, *v));
            let rf = reference.range(..=probe).next_back().map(|(k, v)| (*k, *v));
            assert_eq!(f, rf, "floor({probe})");
            let c = t.ceiling(probe).map(|(k, v)| (k, *v));
            let rc = reference.range(probe..).next().map(|(k, v)| (*k, *v));
            assert_eq!(c, rc, "ceiling({probe})");
        }
    }

    #[test]
    fn empty_tree_queries() {
        let t: BPlusTree<i32> = BPlusTree::default();
        assert!(t.is_empty());
        assert_eq!(t.floor(5), None);
        assert_eq!(t.ceiling(5), None);
        assert_eq!(t.get(5), None);
        assert_eq!(t.iter().count(), 0);
    }
}
