//! A sparse data-cube representation: only non-empty cells are stored.

use olap_array::{ArrayError, DenseArray, Region, Shape};

/// A sparse cube: a shape plus a list of `(index, value)` points for the
/// non-empty cells. Cells not listed hold the aggregation identity
/// (0 for SUM).
#[derive(Debug, Clone)]
pub struct SparseCube<T> {
    shape: Shape,
    /// Sorted by flattened index; unique indices.
    points: Vec<(Vec<usize>, T)>,
}

impl<T: Clone> SparseCube<T> {
    /// Builds from points, validating, sorting, and rejecting duplicates.
    ///
    /// # Errors
    /// Out-of-shape indices; duplicate indices are rejected as
    /// [`ArrayError::StorageMismatch`]-style errors.
    pub fn new(shape: Shape, mut points: Vec<(Vec<usize>, T)>) -> Result<Self, ArrayError> {
        // analyzer: allow(budget-coverage, reason = "construction-time validation, not a query path; no meter exists yet")
        for (idx, _) in &points {
            shape.check_index(idx)?;
        }
        points.sort_by_key(|(idx, _)| shape.flatten(idx));
        // analyzer: allow(budget-coverage, reason = "construction-time duplicate check, not a query path; no meter exists yet")
        for w in points.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ArrayError::StorageMismatch {
                    expected: points.len(),
                    actual: points.len() - 1,
                });
            }
        }
        Ok(SparseCube { shape, points })
    }

    /// Extracts the non-identity cells of a dense cube.
    pub fn from_dense(a: &DenseArray<T>, is_empty: impl Fn(&T) -> bool) -> Self {
        let mut points = Vec::new();
        for idx in a.shape().full_region().iter_indices() {
            let v = a.get(&idx);
            if !is_empty(v) {
                points.push((idx, v.clone()));
            }
        }
        SparseCube {
            shape: a.shape().clone(),
            points,
        }
    }

    /// Materializes the dense cube (for testing/small cubes only).
    pub fn to_dense(&self, fill: T) -> DenseArray<T> {
        let mut a = DenseArray::filled(self.shape.clone(), fill);
        for (idx, v) in &self.points {
            *a.get_mut(idx) = v.clone();
        }
        a
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The non-empty points, sorted by row-major index.
    pub fn points(&self) -> &[(Vec<usize>, T)] {
        &self.points
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cube has no non-empty cells.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of non-empty cells (the paper cites ~20% as canonical for
    /// OLAP).
    pub fn density(&self) -> f64 {
        self.points.len() as f64 / self.shape.len() as f64
    }

    /// The points lying inside a region.
    pub fn points_in(&self, region: &Region) -> impl Iterator<Item = &(Vec<usize>, T)> {
        let region = region.clone();
        self.points
            .iter()
            .filter(move |(idx, _)| region.contains(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_validates() {
        let shape = Shape::new(&[4, 4]).unwrap();
        let cube = SparseCube::new(
            shape,
            vec![(vec![3, 3], 9i64), (vec![0, 1], 1), (vec![2, 0], 4)],
        )
        .unwrap();
        assert_eq!(cube.len(), 3);
        assert_eq!(cube.points()[0].0, vec![0, 1]);
        assert_eq!(cube.density(), 3.0 / 16.0);
    }

    #[test]
    fn rejects_duplicates_and_out_of_bounds() {
        let shape = Shape::new(&[4, 4]).unwrap();
        assert!(SparseCube::new(shape.clone(), vec![(vec![0, 4], 1i64)]).is_err());
        assert!(SparseCube::new(shape, vec![(vec![1, 1], 1i64), (vec![1, 1], 2)],).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let shape = Shape::new(&[3, 3]).unwrap();
        let a = DenseArray::from_fn(shape, |i| if (i[0] + i[1]) % 2 == 0 { 5i64 } else { 0 });
        let sparse = SparseCube::from_dense(&a, |&v| v == 0);
        assert_eq!(sparse.len(), 5);
        assert_eq!(sparse.to_dense(0).as_slice(), a.as_slice());
    }

    #[test]
    fn points_in_region() {
        let shape = Shape::new(&[10]).unwrap();
        let cube =
            SparseCube::new(shape, vec![(vec![1], 1i64), (vec![5], 2), (vec![9], 3)]).unwrap();
        let q = Region::from_bounds(&[(2, 9)]).unwrap();
        let vals: Vec<i64> = cube.points_in(&q).map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![2, 3]);
    }
}
