//! Sparse data cubes (§10).
//!
//! Dense-array prefix sums waste space when the cube is sparse (the paper
//! cites ~20% canonical OLAP density with dense sub-clusters). This crate
//! builds the three substrates §10 relies on and the sparse engines on top
//! of them:
//!
//! - [`BPlusTree`]: a from-scratch B+-tree with floor/ceiling lookups —
//!   the index the paper puts over a sparse one-dimensional prefix array
//!   (§10.1, citing \[Com79\]),
//! - [`RStarTree`]: a from-scratch d-dimensional R*-tree (insertion with
//!   forced reinsert and margin-based splits, per \[BKSS90\]) that indexes
//!   dense-region boundaries and outlier points (§10.2) and, with cached
//!   per-node maxima, answers branch-and-bound range-max queries (§10.3),
//! - [`DenseRegionFinder`]: a decision-tree-style classifier that finds
//!   rectangular dense regions, counting empty cells as
//!   `volume − non-empty` so the full cube is never materialized (§10.2's
//!   modification of \[SAM96\]),
//! - [`SparseCube`], [`SparseRangeSum`], [`SparseRangeMax`],
//!   [`Sparse1dPrefixSum`]: the cube representation and the three engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod cube;
mod regions;
mod rstar;
mod sparse1d;
mod sparse_max;
mod sparse_sum;

pub use btree::BPlusTree;
pub use cube::SparseCube;
pub use regions::{DenseRegion, DenseRegionFinder, RegionFinderParams};
pub use rstar::RStarTree;
pub use sparse1d::{Sparse1dBlocked, Sparse1dPrefixSum};
pub use sparse_max::SparseRangeMax;
pub use sparse_sum::SparseRangeSum;
