//! Finding rectangular dense regions in a sparse cube (§10.2).
//!
//! The paper uses a modified decision-tree classifier (\[SAM96\]) where
//! non-empty cells are one class and empty cells the other, with the key
//! modification that **empty cells are counted as `volume − non-empty`**
//! so the full cube is never materialized. This module implements the core
//! of that classifier family: a greedy recursive axis-cut partitioner that
//! minimizes Gini impurity, emitting the pure-enough boxes as dense
//! regions.

use olap_array::{exec, Parallelism, Range, Region, Shape};

/// Tuning knobs for the region finder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionFinderParams {
    /// A box is declared dense when its fill fraction reaches this value.
    pub min_density: f64,
    /// Boxes with fewer points than this become outliers instead of
    /// regions (indexing a 2-point "region" is worse than 2 points).
    pub min_points: usize,
    /// Recursion depth cap (each level splits one axis once).
    pub max_depth: usize,
}

impl Default for RegionFinderParams {
    fn default() -> Self {
        RegionFinderParams {
            min_density: 0.5,
            min_points: 8,
            max_depth: 24,
        }
    }
}

/// A discovered dense region: its bounding box and how many points fell in
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseRegion {
    /// The rectangular boundary added to the R*-tree.
    pub bounds: Region,
    /// Number of non-empty cells inside.
    pub points: usize,
}

/// The classifier.
#[derive(Debug, Clone)]
pub struct DenseRegionFinder {
    params: RegionFinderParams,
    par: Parallelism,
}

impl Default for DenseRegionFinder {
    fn default() -> Self {
        DenseRegionFinder::new(RegionFinderParams::default())
    }
}

impl DenseRegionFinder {
    /// Creates a finder with explicit parameters.
    pub fn new(params: RegionFinderParams) -> Self {
        DenseRegionFinder {
            params,
            par: Parallelism::Sequential,
        }
    }

    /// Sets the execution strategy for the per-axis cut search. Each axis
    /// is scored by an independent kernel; the winners reduce in axis order
    /// under the same strict-less rule as the sequential scan, so the cut
    /// chosen at every node — and therefore the final partition — is
    /// identical under every [`Parallelism`].
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Partitions the points of a cube into dense regions and outliers.
    /// Returns `(regions, outlier point indices)`; `indices` index into
    /// `points`.
    pub fn find(&self, _shape: &Shape, points: &[Vec<usize>]) -> (Vec<DenseRegion>, Vec<usize>) {
        let all: Vec<usize> = (0..points.len()).collect();
        let mut regions = Vec::new();
        let mut outliers = Vec::new();
        // Start from the points' bounding box, not the whole cube — empty
        // margins would only dilute density.
        match Self::bounding_box(points, &all) {
            None => (regions, outliers),
            Some(bbox) => {
                self.recurse(points, all, bbox, 0, &mut regions, &mut outliers);
                (regions, outliers)
            }
        }
    }

    fn bounding_box(points: &[Vec<usize>], members: &[usize]) -> Option<Region> {
        let first = *members.first()?;
        let d = points[first].len();
        let mut lo = points[first].clone();
        let mut hi = points[first].clone();
        for &i in members {
            let p = &points[i];
            for j in 0..d {
                lo[j] = lo[j].min(p[j]);
                hi[j] = hi[j].max(p[j]);
            }
        }
        Some(
            Region::new(
                lo.iter()
                    .zip(&hi)
                    .map(|(&l, &h)| Range::new(l, h).expect("l ≤ h"))
                    .collect(),
            )
            .expect("d ≥ 1"),
        )
    }

    /// Gini impurity of a box holding `n1` points: with
    /// `n0 = volume − n1` (the paper's counting trick),
    /// `gini = 1 − p0² − p1²`.
    fn gini(n1: usize, volume: usize) -> f64 {
        let p1 = n1 as f64 / volume as f64;
        let p0 = 1.0 - p1;
        1.0 - p0 * p0 - p1 * p1
    }

    fn recurse(
        &self,
        points: &[Vec<usize>],
        members: Vec<usize>,
        bbox: Region,
        depth: usize,
        regions: &mut Vec<DenseRegion>,
        outliers: &mut Vec<usize>,
    ) {
        let vol = bbox.volume();
        let n1 = members.len();
        let density = n1 as f64 / vol as f64;
        if density >= self.params.min_density {
            if n1 >= self.params.min_points {
                regions.push(DenseRegion {
                    bounds: bbox,
                    points: n1,
                });
            } else {
                outliers.extend(members);
            }
            return;
        }
        if depth >= self.params.max_depth || n1 < 2 * self.params.min_points.max(1) {
            // Too small or too deep to keep splitting: everything here is
            // an outlier unless already dense.
            outliers.extend(members);
            return;
        }
        // Greedy axis cut minimizing weighted Gini impurity; candidate
        // cuts at midpoints between consecutive distinct coordinates.
        // Each axis is scored by an independent kernel (optionally fanned
        // across threads); reducing the winners in axis order under the
        // same strict-less rule keeps the chosen cut identical to the
        // sequential scan, ties included (lowest axis, then lowest cut).
        let d = bbox.ndim();
        let parent_gini = Self::gini(n1, vol);
        let per_axis = exec::run_indexed(self.par, (0..d).collect(), |_, axis| {
            best_cut_on_axis(points, &members, &bbox, axis)
        });
        let mut best: Option<(usize, usize, f64)> = None; // (axis, cut, score)
        for (axis, found) in per_axis.into_iter().enumerate() {
            if let Some((c, w)) = found {
                if best.is_none_or(|(_, _, s)| w < s) {
                    best = Some((axis, c, w));
                }
            }
        }
        match best {
            Some((axis, cut, score)) if score < parent_gini - 1e-12 => {
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for &i in &members {
                    if points[i][axis] <= cut {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                for part in [left, right] {
                    if part.is_empty() {
                        continue;
                    }
                    // Shrink to the part's own bounding box.
                    let sub = Self::bounding_box(points, &part).expect("non-empty part");
                    self.recurse(points, part, sub, depth + 1, regions, outliers);
                }
            }
            _ => outliers.extend(members),
        }
    }
}

/// The per-axis cut kernel: scores every candidate cut on `axis` (after
/// each distinct member coordinate below the box's upper bound) by weighted
/// Gini impurity and returns the best `(cut, score)`, or `None` when the
/// axis is too thin to cut. Strict-less replacement keeps the lowest
/// winning cut, matching the original single-threaded scan order.
fn best_cut_on_axis(
    points: &[Vec<usize>],
    members: &[usize],
    bbox: &Region,
    axis: usize,
) -> Option<(usize, f64)> {
    let r = bbox.range(axis);
    if r.len() < 2 {
        return None;
    }
    let vol = bbox.volume();
    let n1 = members.len();
    let mut coords: Vec<usize> = members.iter().map(|&i| points[i][axis]).collect();
    coords.sort_unstable();
    coords.dedup();
    let side_volume = vol / r.len();
    // Candidate cut after coordinate c: left = [lo, c], right = [c+1, hi].
    let mut best: Option<(usize, f64)> = None;
    let mut left_count = 0usize;
    let mut ci = 0usize;
    let mut sorted_members: Vec<usize> = members.to_vec();
    sorted_members.sort_by_key(|&i| points[i][axis]);
    for &c in coords.iter().take_while(|&&c| c < r.hi()) {
        while ci < sorted_members.len() && points[sorted_members[ci]][axis] <= c {
            left_count += 1;
            ci += 1;
        }
        let left_vol = side_volume * (c - r.lo() + 1);
        let right_vol = vol - left_vol;
        let right_count = n1 - left_count;
        let w = (left_vol as f64 * DenseRegionFinder::gini(left_count, left_vol)
            + right_vol as f64 * DenseRegionFinder::gini(right_count, right_vol))
            / vol as f64;
        if best.is_none_or(|(_, s)| w < s) {
            best = Some((c, w));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(
        shape: &[usize],
        points: Vec<Vec<usize>>,
    ) -> (Vec<DenseRegion>, Vec<usize>, Vec<Vec<usize>>) {
        let shape = Shape::new(shape).unwrap();
        let finder = DenseRegionFinder::default();
        let (r, o) = finder.find(&shape, &points);
        (r, o, points)
    }

    #[test]
    fn single_full_cluster_is_one_region() {
        // A fully dense 10×10 block in a 100×100 cube.
        let mut pts = Vec::new();
        for x in 20..30 {
            for y in 40..50 {
                pts.push(vec![x, y]);
            }
        }
        let (regions, outliers, _) = find(&[100, 100], pts);
        assert_eq!(outliers.len(), 0);
        assert_eq!(regions.len(), 1);
        assert_eq!(
            regions[0].bounds,
            Region::from_bounds(&[(20, 29), (40, 49)]).unwrap()
        );
        assert_eq!(regions[0].points, 100);
    }

    #[test]
    fn two_clusters_are_separated() {
        let mut pts = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                pts.push(vec![x, y]);
                pts.push(vec![x + 80, y + 80]);
            }
        }
        let (regions, outliers, _) = find(&[100, 100], pts);
        assert!(outliers.is_empty());
        assert_eq!(regions.len(), 2);
        let mut bounds: Vec<Region> = regions.iter().map(|r| r.bounds.clone()).collect();
        bounds.sort_by_key(|r| r.lower_corner());
        assert_eq!(bounds[0], Region::from_bounds(&[(0, 7), (0, 7)]).unwrap());
        assert_eq!(
            bounds[1],
            Region::from_bounds(&[(80, 87), (80, 87)]).unwrap()
        );
    }

    #[test]
    fn scattered_points_become_outliers() {
        let pts: Vec<Vec<usize>> = (0..20)
            .map(|i| vec![(i * 487) % 1000, (i * 313) % 1000])
            .collect();
        let (regions, outliers, pts) = find(&[1000, 1000], pts);
        assert!(regions.is_empty(), "{regions:?}");
        assert_eq!(outliers.len(), pts.len());
    }

    #[test]
    fn clusters_plus_noise() {
        let mut pts = Vec::new();
        for x in 10..20 {
            for y in 10..20 {
                pts.push(vec![x, y]);
            }
        }
        for i in 0..10 {
            pts.push(vec![500 + i * 37 % 400, (i * 119) % 900]);
        }
        let (regions, outliers, _) = find(&[1000, 1000], pts);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].points, 100);
        assert_eq!(outliers.len(), 10);
    }

    #[test]
    fn every_point_is_region_or_outlier_exactly_once() {
        let mut pts = Vec::new();
        for x in 0..30 {
            for y in 0..30 {
                if (x / 10 + y / 10) % 2 == 0 {
                    pts.push(vec![x, y]);
                }
            }
        }
        let n = pts.len();
        let (regions, outliers, pts) = find(&[40, 40], pts);
        let in_regions: usize = pts
            .iter()
            .filter(|p| regions.iter().any(|r| r.bounds.contains(p)))
            .count();
        // Outliers are disjoint from regions.
        for &o in &outliers {
            assert!(!regions.iter().any(|r| r.bounds.contains(&pts[o])));
        }
        assert_eq!(in_regions + outliers.len(), n);
    }

    #[test]
    fn parallel_cut_search_matches_sequential() {
        // Checkerboard blocks create many near-tied cuts; the partition
        // must be identical whatever the execution strategy.
        let mut pts = Vec::new();
        for x in 0..30 {
            for y in 0..30 {
                if (x / 10 + y / 10) % 2 == 0 {
                    pts.push(vec![x, y]);
                }
            }
        }
        let shape = Shape::new(&[40, 40]).unwrap();
        let (seq_r, seq_o) = DenseRegionFinder::default().find(&shape, &pts);
        for par in [Parallelism::Threads(2), Parallelism::Threads(4)] {
            let finder = DenseRegionFinder::default().with_parallelism(par);
            let (r, o) = finder.find(&shape, &pts);
            assert_eq!(r, seq_r, "{par:?}");
            assert_eq!(o, seq_o, "{par:?}");
        }
    }

    #[test]
    fn empty_input() {
        let (regions, outliers, _) = find(&[10, 10], vec![]);
        assert!(regions.is_empty());
        assert!(outliers.is_empty());
    }

    #[test]
    fn one_dimensional_clusters() {
        let mut pts: Vec<Vec<usize>> = (100..150).map(|x| vec![x]).collect();
        pts.extend((700..760).map(|x| vec![x]));
        let (regions, outliers, _) = find(&[1000], pts);
        // The greedy cut may peel a boundary point or two into outliers;
        // both clusters must still surface as dense regions.
        assert_eq!(regions.len(), 2);
        assert!(regions.iter().all(|r| r.points >= 49), "{regions:?}");
        assert!(outliers.len() <= 2, "{} outliers", outliers.len());
    }
}
