//! A from-scratch d-dimensional R*-tree (\[BKSS90\]) over integer
//! rectangles — the index §10.2 puts over dense-region boundaries and
//! outlier points.
//!
//! Implements the R* insertion heuristics: subtree choice by least overlap
//! enlargement at the leaf level (least area enlargement above), splits by
//! margin-minimal axis then overlap-minimal distribution, and forced
//! reinsertion of the 30% most-distant entries on the first overflow of
//! each level per insertion.

use olap_array::Region;
use olap_query::AccessStats;

/// Fraction of entries evicted on a forced reinsert (the R* paper's 30%).
const REINSERT_FRACTION: f64 = 0.3;

/// A dynamic R*-tree mapping rectangles to payloads.
///
/// # Examples
///
/// ```
/// use olap_array::Region;
/// use olap_sparse::RStarTree;
///
/// let mut t = RStarTree::new(8);
/// t.insert(Region::point(&[3, 4]).unwrap(), "a");
/// t.insert(Region::from_bounds(&[(10, 19), (10, 19)]).unwrap(), "b");
/// let hits = t.search(&Region::from_bounds(&[(0, 12), (0, 12)]).unwrap());
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    max_entries: usize,
    min_entries: usize,
    root: Node<T>,
    /// Level of the root (leaves are level 0).
    root_level: usize,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Region, T)>),
    Internal(Vec<(Region, Node<T>)>),
}

/// Work queued during an insertion (forced reinsert carries whole subtrees
/// at internal levels).
enum Pending<T> {
    Data(Region, T),
    Subtree(Region, Node<T>, usize),
}

enum Outcome<T> {
    Done,
    Split(Region, Node<T>),
    Reinsert(Vec<Pending<T>>),
}

impl<T> RStarTree<T> {
    /// Creates an empty tree with node capacity `max_entries` (≥ 4);
    /// minimum fill is 40%.
    pub fn new(max_entries: usize) -> Self {
        // analyzer: allow(panic-site, reason = "documented constructor precondition on the node capacity; not reachable from query execution")
        assert!(max_entries >= 4, "R*-tree capacity must be ≥ 4");
        RStarTree {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(1),
            root: Node::Leaf(Vec::new()),
            root_level: 0,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.root_level + 1
    }

    /// Inserts a rectangle with its payload.
    pub fn insert(&mut self, region: Region, value: T) {
        self.len += 1;
        let mut queue: Vec<Pending<T>> = vec![Pending::Data(region, value)];
        // One forced reinsert allowed per level per insertion.
        let mut reinserted = vec![false; self.root_level + 2];
        while let Some(item) = queue.pop() {
            let (mbr, target_level) = match &item {
                Pending::Data(r, _) => (r.clone(), 0),
                Pending::Subtree(r, _, lvl) => (r.clone(), *lvl),
            };
            let root_level = self.root_level;
            let min = self.min_entries;
            let max = self.max_entries;
            let outcome = Self::insert_rec(
                &mut self.root,
                root_level,
                item,
                mbr,
                target_level,
                max,
                min,
                true,
                &mut reinserted,
            );
            match outcome {
                Outcome::Done => {}
                Outcome::Reinsert(items) => queue.extend(items),
                Outcome::Split(right_mbr, right) => {
                    // Grow the root.
                    let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
                    let left_mbr = Self::node_mbr(&old).expect("non-empty");
                    self.root = Node::Internal(vec![(left_mbr, old), (right_mbr, right)]);
                    self.root_level += 1;
                    reinserted.push(false);
                }
            }
        }
    }

    /// Collects all leaf entries whose rectangle intersects `query`.
    pub fn search(&self, query: &Region) -> Vec<(&Region, &T)> {
        let mut out = Vec::new();
        let mut stats = AccessStats::new();
        self.search_with_stats(query, &mut out, &mut stats);
        out
    }

    /// Like [`RStarTree::search`], counting visited nodes.
    pub fn search_with_stats<'a>(
        &'a self,
        query: &Region,
        out: &mut Vec<(&'a Region, &'a T)>,
        stats: &mut AccessStats,
    ) {
        Self::search_rec(&self.root, query, out, stats);
    }

    fn search_rec<'a>(
        node: &'a Node<T>,
        query: &Region,
        out: &mut Vec<(&'a Region, &'a T)>,
        stats: &mut AccessStats,
    ) {
        stats.visit_nodes(1);
        match node {
            Node::Leaf(entries) => {
                for (r, v) in entries {
                    stats.step(1);
                    if r.overlaps(query) {
                        out.push((r, v));
                    }
                }
            }
            Node::Internal(children) => {
                for (mbr, child) in children {
                    stats.step(1);
                    if mbr.overlaps(query) {
                        Self::search_rec(child, query, out, stats);
                    }
                }
            }
        }
    }

    /// Visits every leaf entry (no spatial filter).
    pub fn for_each(&self, mut f: impl FnMut(&Region, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&Region, &T)) {
            match node {
                Node::Leaf(entries) => {
                    for (r, v) in entries {
                        f(r, v);
                    }
                }
                Node::Internal(children) => {
                    for (_, child) in children {
                        walk(child, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Checks the structural invariants (MBR containment, fill factors).
    /// Test/audit helper.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<T>(
            node: &Node<T>,
            is_root: bool,
            min: usize,
            max: usize,
        ) -> Result<(Option<Region>, usize), String> {
            match node {
                Node::Leaf(entries) => {
                    if !is_root && (entries.len() < min || entries.len() > max) {
                        return Err(format!("leaf fill {} outside [{min},{max}]", entries.len()));
                    }
                    let mbr = entries
                        .iter()
                        .map(|(r, _)| r.clone())
                        .reduce(|a, b| a.bounding_union(&b));
                    Ok((mbr, 0))
                }
                Node::Internal(children) => {
                    if children.is_empty() || (!is_root && children.len() < min) {
                        return Err("underfull internal node".into());
                    }
                    if children.len() > max {
                        return Err("overfull internal node".into());
                    }
                    let mut mbr: Option<Region> = None;
                    let mut depth = None;
                    for (stored, child) in children {
                        let (child_mbr, child_depth) = walk(child, false, min, max)?;
                        let child_mbr = child_mbr.ok_or_else(|| "empty child".to_string())?;
                        if &child_mbr != stored {
                            return Err(format!("stale MBR: stored {stored}, actual {child_mbr}"));
                        }
                        match depth {
                            None => depth = Some(child_depth),
                            Some(d) if d != child_depth => return Err("unbalanced tree".into()),
                            _ => {}
                        }
                        mbr = Some(match mbr {
                            None => child_mbr,
                            Some(m) => m.bounding_union(&child_mbr),
                        });
                    }
                    Ok((mbr, depth.unwrap() + 1))
                }
            }
        }
        walk(&self.root, true, self.min_entries, self.max_entries).map(|_| ())
    }

    fn node_mbr(node: &Node<T>) -> Option<Region> {
        match node {
            Node::Leaf(entries) => entries
                .iter()
                .map(|(r, _)| r.clone())
                .reduce(|a, b| a.bounding_union(&b)),
            Node::Internal(children) => children
                .iter()
                .map(|(r, _)| r.clone())
                .reduce(|a, b| a.bounding_union(&b)),
        }
    }

    fn area(r: &Region) -> f64 {
        r.ranges().iter().map(|x| x.len() as f64).product()
    }

    fn margin(r: &Region) -> f64 {
        r.ranges().iter().map(|x| x.len() as f64).sum()
    }

    fn overlap(a: &Region, b: &Region) -> f64 {
        match a.intersect(b) {
            Some(i) => Self::area(&i),
            None => 0.0,
        }
    }

    fn enlargement(mbr: &Region, add: &Region) -> f64 {
        Self::area(&mbr.bounding_union(add)) - Self::area(mbr)
    }

    /// R* ChooseSubtree: least overlap enlargement when children are
    /// leaves, least area enlargement otherwise (ties by area).
    fn choose_child(children: &[(Region, Node<T>)], mbr: &Region) -> usize {
        let leaves_below = matches!(children[0].1, Node::Leaf(_));
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, (child_mbr, _)) in children.iter().enumerate() {
            let enlarged = child_mbr.bounding_union(mbr);
            let key = if leaves_below {
                // Overlap enlargement against the siblings.
                let mut before = 0.0;
                let mut after = 0.0;
                for (j, (other, _)) in children.iter().enumerate() {
                    if i != j {
                        before += Self::overlap(child_mbr, other);
                        after += Self::overlap(&enlarged, other);
                    }
                }
                (
                    after - before,
                    Self::enlargement(child_mbr, mbr),
                    Self::area(child_mbr),
                )
            } else {
                (
                    Self::enlargement(child_mbr, mbr),
                    Self::area(child_mbr),
                    0.0,
                )
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// R* split over generic `(Region, E)` entries: margin-minimal axis,
    /// then overlap-minimal (area tie-break) distribution.
    fn split_entries<E>(entries: &mut Vec<(Region, E)>, min: usize) -> Vec<(Region, E)> {
        let d = entries[0].0.ndim();
        let total = entries.len();
        let mut best_axis = 0;
        let mut best_margin = f64::INFINITY;
        for axis in 0..d {
            entries.sort_by_key(|(r, _)| (r.range(axis).lo(), r.range(axis).hi()));
            let mut margin_sum = 0.0;
            for k in min..=(total - min) {
                let left = entries[..k]
                    .iter()
                    .map(|(r, _)| r.clone())
                    .reduce(|a, b| a.bounding_union(&b))
                    .expect("k ≥ 1");
                let right = entries[k..]
                    .iter()
                    .map(|(r, _)| r.clone())
                    .reduce(|a, b| a.bounding_union(&b))
                    .expect("k < total");
                margin_sum += Self::margin(&left) + Self::margin(&right);
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
            }
        }
        entries.sort_by_key(|(r, _)| (r.range(best_axis).lo(), r.range(best_axis).hi()));
        let mut best_k = min;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in min..=(total - min) {
            let left = entries[..k]
                .iter()
                .map(|(r, _)| r.clone())
                .reduce(|a, b| a.bounding_union(&b))
                .expect("k ≥ 1");
            let right = entries[k..]
                .iter()
                .map(|(r, _)| r.clone())
                .reduce(|a, b| a.bounding_union(&b))
                .expect("k < total");
            let key = (
                Self::overlap(&left, &right),
                Self::area(&left) + Self::area(&right),
            );
            if key < best_key {
                best_key = key;
                best_k = k;
            }
        }
        entries.split_off(best_k)
    }

    /// Picks the `p` entries farthest (by MBR center distance) from the
    /// node center for forced reinsertion.
    fn pick_reinsert<E>(entries: &mut Vec<(Region, E)>, p: usize) -> Vec<(Region, E)> {
        let node_mbr = entries
            .iter()
            .map(|(r, _)| r.clone())
            .reduce(|a, b| a.bounding_union(&b))
            .expect("non-empty");
        let center: Vec<f64> = node_mbr
            .ranges()
            .iter()
            .map(|r| (r.lo() + r.hi()) as f64 / 2.0)
            .collect();
        let dist = |r: &Region| -> f64 {
            r.ranges()
                .iter()
                .zip(&center)
                .map(|(x, c)| {
                    let m = (x.lo() + x.hi()) as f64 / 2.0 - c;
                    m * m
                })
                .sum()
        };
        // Sort ascending by distance; the tail is evicted.
        entries.sort_by(|a, b| {
            dist(&a.0)
                .partial_cmp(&dist(&b.0))
                .expect("finite distances")
        });
        entries.split_off(entries.len() - p)
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        node: &mut Node<T>,
        node_level: usize,
        item: Pending<T>,
        item_mbr: Region,
        target_level: usize,
        max: usize,
        min: usize,
        is_root: bool,
        reinserted: &mut [bool],
    ) -> Outcome<T> {
        if node_level == target_level {
            // Place the entry here.
            let overflow = match (&mut *node, item) {
                (Node::Leaf(entries), Pending::Data(r, v)) => {
                    entries.push((r, v));
                    entries.len() > max
                }
                (Node::Internal(children), Pending::Subtree(r, sub, _)) => {
                    children.push((r, sub));
                    children.len() > max
                }
                // analyzer: allow(panic-site, reason = "R*-tree structural invariant: a non-leaf node always has at least one child entry")
                _ => unreachable!("level/type mismatch in R*-tree insertion"),
            };
            if !overflow {
                return Outcome::Done;
            }
            // Overflow treatment: forced reinsert once per level (never at
            // the root), else split.
            if !is_root && !reinserted[node_level] {
                reinserted[node_level] = true;
                let p = ((max as f64) * REINSERT_FRACTION).ceil() as usize;
                let evicted: Vec<Pending<T>> = match node {
                    Node::Leaf(entries) => Self::pick_reinsert(entries, p)
                        .into_iter()
                        .map(|(r, v)| Pending::Data(r, v))
                        .collect(),
                    Node::Internal(children) => Self::pick_reinsert(children, p)
                        .into_iter()
                        .map(|(r, sub)| Pending::Subtree(r, sub, node_level))
                        .collect(),
                };
                return Outcome::Reinsert(evicted);
            }
            let (right_mbr, right) = match node {
                Node::Leaf(entries) => {
                    let right = Self::split_entries(entries, min);
                    let mbr = right
                        .iter()
                        .map(|(r, _)| r.clone())
                        .reduce(|a, b| a.bounding_union(&b))
                        .expect("non-empty split");
                    (mbr, Node::Leaf(right))
                }
                Node::Internal(children) => {
                    let right = Self::split_entries(children, min);
                    let mbr = right
                        .iter()
                        .map(|(r, _)| r.clone())
                        .reduce(|a, b| a.bounding_union(&b))
                        .expect("non-empty split");
                    (mbr, Node::Internal(right))
                }
            };
            return Outcome::Split(right_mbr, right);
        }
        // Descend.
        let children = match node {
            Node::Internal(children) => children,
            // analyzer: allow(panic-site, reason = "R*-tree structural invariant: a non-leaf node always has at least one child entry")
            Node::Leaf(_) => unreachable!("target level below a leaf"),
        };
        let i = Self::choose_child(children, &item_mbr);
        let outcome = Self::insert_rec(
            &mut children[i].1,
            node_level - 1,
            item,
            item_mbr,
            target_level,
            max,
            min,
            false,
            reinserted,
        );
        match outcome {
            Outcome::Done => {
                children[i].0 = Self::node_mbr(&children[i].1).expect("non-empty child");
                Outcome::Done
            }
            Outcome::Reinsert(items) => {
                children[i].0 = Self::node_mbr(&children[i].1).expect("non-empty child");
                Outcome::Reinsert(items)
            }
            Outcome::Split(right_mbr, right) => {
                children[i].0 = Self::node_mbr(&children[i].1).expect("non-empty child");
                children.push((right_mbr, right));
                if children.len() > max {
                    if !is_root && !reinserted[node_level] {
                        reinserted[node_level] = true;
                        let p = ((max as f64) * REINSERT_FRACTION).ceil() as usize;
                        let evicted: Vec<Pending<T>> = Self::pick_reinsert(children, p)
                            .into_iter()
                            .map(|(r, sub)| Pending::Subtree(r, sub, node_level))
                            .collect();
                        return Outcome::Reinsert(evicted);
                    }
                    let right = Self::split_entries(children, min);
                    let mbr = right
                        .iter()
                        .map(|(r, _)| r.clone())
                        .reduce(|a, b| a.bounding_union(&b))
                        .expect("non-empty split");
                    return Outcome::Split(mbr, Node::Internal(right));
                }
                Outcome::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[usize]) -> Region {
        Region::point(coords).unwrap()
    }

    #[test]
    fn insert_and_search_points() {
        let mut t = RStarTree::new(4);
        for x in 0..20usize {
            for y in 0..20usize {
                if (x + y) % 3 == 0 {
                    t.insert(pt(&[x, y]), (x, y));
                }
            }
        }
        t.check_invariants().unwrap();
        let q = Region::from_bounds(&[(5, 9), (5, 9)]).unwrap();
        let mut found: Vec<(usize, usize)> = t.search(&q).iter().map(|(_, v)| **v).collect();
        found.sort_unstable();
        let mut expected = Vec::new();
        for x in 5..=9 {
            for y in 5..=9 {
                if (x + y) % 3 == 0 {
                    expected.push((x, y));
                }
            }
        }
        assert_eq!(found, expected);
    }

    #[test]
    fn search_rectangles_by_intersection() {
        let mut t = RStarTree::new(4);
        t.insert(Region::from_bounds(&[(0, 9), (0, 9)]).unwrap(), "a");
        t.insert(Region::from_bounds(&[(20, 29), (20, 29)]).unwrap(), "b");
        t.insert(Region::from_bounds(&[(5, 24), (5, 24)]).unwrap(), "c");
        let q = Region::from_bounds(&[(8, 10), (8, 10)]).unwrap();
        let mut hits: Vec<&str> = t.search(&q).iter().map(|(_, v)| **v).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec!["a", "c"]);
    }

    #[test]
    fn grows_beyond_one_level_with_invariants() {
        let mut t = RStarTree::new(5);
        for i in 0..500usize {
            let x = (i * 37) % 100;
            let y = (i * 61) % 100;
            t.insert(pt(&[x, y]), i);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3);
        t.check_invariants().unwrap();
        // Every entry is findable.
        let all = t.search(&Region::from_bounds(&[(0, 99), (0, 99)]).unwrap());
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let mut t = RStarTree::new(4);
        for x in 0..10usize {
            t.insert(pt(&[x, x]), x);
        }
        let q = Region::from_bounds(&[(50, 60), (0, 9)]).unwrap();
        assert!(t.search(&q).is_empty());
    }

    #[test]
    fn search_counts_node_accesses() {
        let mut t = RStarTree::new(4);
        for x in 0..200usize {
            t.insert(pt(&[x]), x);
        }
        let mut out = Vec::new();
        let mut stats = AccessStats::new();
        let q = Region::from_bounds(&[(10, 12)]).unwrap();
        t.search_with_stats(&q, &mut out, &mut stats);
        assert_eq!(out.len(), 3);
        // A small window must not scan the whole tree.
        assert!(stats.tree_nodes < 30, "visited {}", stats.tree_nodes);
    }

    #[test]
    fn clustered_data_stays_balanced() {
        let mut t = RStarTree::new(6);
        // Three dense clusters plus scattered noise.
        let mut n = 0;
        for cluster in [(100usize, 100usize), (500, 500), (900, 100)] {
            for dx in 0..12usize {
                for dy in 0..12usize {
                    t.insert(pt(&[cluster.0 + dx, cluster.1 + dy]), n);
                    n += 1;
                }
            }
        }
        for i in 0..50usize {
            t.insert(pt(&[(i * 97) % 1000, (i * 13) % 1000]), n + i);
        }
        t.check_invariants().unwrap();
        // Querying one cluster visits few nodes.
        let mut out = Vec::new();
        let mut stats = AccessStats::new();
        let q = Region::from_bounds(&[(100, 111), (100, 111)]).unwrap();
        t.search_with_stats(&q, &mut out, &mut stats);
        assert_eq!(out.len(), 144);
        assert!(stats.tree_nodes < 80);
    }

    #[test]
    fn for_each_visits_everything() {
        let mut t = RStarTree::new(4);
        for i in 0..77usize {
            t.insert(pt(&[i, 76 - i]), i);
        }
        let mut seen = 0usize;
        t.for_each(|_, _| seen += 1);
        assert_eq!(seen, 77);
    }
}
