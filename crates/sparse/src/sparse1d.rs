//! Range-sum over sparse one-dimensional cubes (§10.1).
//!
//! With `b = 1` the prefix-sum array `P` has the same sparse structure as
//! the cube, so only the prefixes at non-empty positions are stored, in a
//! B+-tree. A query `(ℓ:h)` needs the last defined prefix ≤ `h` and the
//! last defined prefix ≤ `ℓ − 1` (the paper phrases it with the first
//! non-zero `P[ℓ̂], ℓ̂ ≥ ℓ` — equivalent under subtraction).

use crate::btree::BPlusTree;
use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{ArrayError, Range};
use olap_query::AccessStats;

/// Sparse one-dimensional prefix sums over a B+-tree.
///
/// # Examples
///
/// ```
/// use olap_array::Range;
/// use olap_sparse::Sparse1dPrefixSum;
///
/// // Three non-empty cells in a domain of a million.
/// let s = Sparse1dPrefixSum::build(1_000_000, &[(10usize, 5i64), (500_000, 7), (999_999, 1)])
///     .unwrap();
/// assert_eq!(s.range_sum(Range::new(0, 999_999).unwrap()).unwrap(), 13);
/// assert_eq!(s.range_sum(Range::new(11, 499_999).unwrap()).unwrap(), 0);
/// assert_eq!(s.len(), 3); // storage is proportional to the points
/// ```
#[derive(Debug, Clone)]
pub struct Sparse1dPrefixSum<G: AbelianGroup> {
    op: G,
    n: usize,
    /// index → prefix sum over all points ≤ index (defined at non-empty
    /// positions only).
    prefixes: BPlusTree<G::Value>,
}

impl<T: NumericValue> Sparse1dPrefixSum<SumOp<T>> {
    /// Builds the SUM variant from `(index, value)` points.
    ///
    /// # Errors
    /// Propagates index validation.
    pub fn build(n: usize, points: &[(usize, T)]) -> Result<Self, ArrayError> {
        Sparse1dPrefixSum::with_op(n, points, SumOp::new())
    }
}

impl<G: AbelianGroup> Sparse1dPrefixSum<G> {
    /// Builds from `(index, value)` points under any invertible operator.
    /// Duplicate indices are combined.
    ///
    /// # Errors
    /// [`ArrayError::OutOfBounds`] for indices ≥ `n`.
    pub fn with_op(n: usize, points: &[(usize, G::Value)], op: G) -> Result<Self, ArrayError> {
        let mut sorted: Vec<(usize, G::Value)> = Vec::with_capacity(points.len());
        for (i, v) in points {
            if *i >= n {
                return Err(ArrayError::OutOfBounds {
                    axis: 0,
                    index: *i,
                    extent: n,
                });
            }
            sorted.push((*i, v.clone()));
        }
        sorted.sort_by_key(|(i, _)| *i);
        let mut prefixes = BPlusTree::default();
        let mut acc = op.identity();
        let mut iter = sorted.into_iter().peekable();
        while let Some((i, v)) = iter.next() {
            acc = op.combine(&acc, &v);
            // Combine duplicates before storing the prefix at i.
            while iter.peek().is_some_and(|(j, _)| *j == i) {
                let (_, v2) = iter.next().expect("peeked");
                acc = op.combine(&acc, &v2);
            }
            prefixes.insert(i, acc.clone());
        }
        Ok(Sparse1dPrefixSum { op, n, prefixes })
    }

    /// Domain size `n`.
    pub fn domain(&self) -> usize {
        self.n
    }

    /// Number of stored (non-empty) prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the cube had no points.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Answers `Sum(ℓ:h)` with two B+-tree floor lookups.
    ///
    /// # Errors
    /// [`ArrayError::OutOfBounds`] when `h ≥ n`.
    pub fn range_sum(&self, range: Range) -> Result<G::Value, ArrayError> {
        self.range_sum_with_stats(range).map(|(v, _)| v)
    }

    /// Like [`Sparse1dPrefixSum::range_sum`] with access counts (each
    /// B+-tree lookup costs its node path).
    pub fn range_sum_with_stats(
        &self,
        range: Range,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        if range.hi() >= self.n {
            return Err(ArrayError::OutOfBounds {
                axis: 0,
                index: range.hi(),
                extent: self.n,
            });
        }
        let mut stats = AccessStats::new();
        let depth = self.prefixes.depth() as u64;
        let hi = self.floor_prefix(range.hi(), &mut stats, depth);
        let lo = if range.lo() == 0 {
            self.op.identity()
        } else {
            self.floor_prefix(range.lo() - 1, &mut stats, depth)
        };
        Ok((self.op.uncombine(&hi, &lo), stats))
    }

    fn floor_prefix(&self, index: usize, stats: &mut AccessStats, depth: u64) -> G::Value {
        stats.visit_nodes(depth);
        match self.prefixes.floor(index) {
            Some((_, v)) => v.clone(),
            None => self.op.identity(),
        }
    }
}

/// The `b > 1` variant §10.1 closes with ("a similar solution applies"):
/// cumulative sums are kept only at block anchors in a B+-tree, and the
/// unaligned edges of a query are answered from the sorted point list.
#[derive(Debug, Clone)]
pub struct Sparse1dBlocked<G: AbelianGroup> {
    op: G,
    n: usize,
    b: usize,
    /// block index → cumulative sum through the end of that block.
    anchors: BPlusTree<G::Value>,
    /// Sorted non-empty points for boundary scans.
    points: Vec<(usize, G::Value)>,
}

impl<T: NumericValue> Sparse1dBlocked<SumOp<T>> {
    /// Builds the SUM variant.
    ///
    /// # Errors
    /// Propagates index validation; rejects `b = 0`.
    pub fn build(n: usize, points: &[(usize, T)], b: usize) -> Result<Self, ArrayError> {
        Sparse1dBlocked::with_op(n, points, SumOp::new(), b)
    }
}

impl<G: AbelianGroup> Sparse1dBlocked<G> {
    /// Builds from `(index, value)` points with block size `b`; duplicate
    /// indices are combined.
    ///
    /// # Errors
    /// [`ArrayError::OutOfBounds`] for indices ≥ `n`;
    /// [`ArrayError::ZeroBlock`] for `b = 0`.
    pub fn with_op(
        n: usize,
        points: &[(usize, G::Value)],
        op: G,
        b: usize,
    ) -> Result<Self, ArrayError> {
        if b == 0 {
            return Err(ArrayError::ZeroBlock);
        }
        let mut sorted: Vec<(usize, G::Value)> = Vec::with_capacity(points.len());
        for (i, v) in points {
            if *i >= n {
                return Err(ArrayError::OutOfBounds {
                    axis: 0,
                    index: *i,
                    extent: n,
                });
            }
            sorted.push((*i, v.clone()));
        }
        sorted.sort_by_key(|(i, _)| *i);
        // Coalesce duplicates.
        let mut coalesced: Vec<(usize, G::Value)> = Vec::with_capacity(sorted.len());
        for (i, v) in sorted {
            match coalesced.last_mut() {
                Some((j, acc)) if *j == i => *acc = op.combine(acc, &v),
                _ => coalesced.push((i, v)),
            }
        }
        let mut anchors = BPlusTree::default();
        let mut acc = op.identity();
        let mut iter = coalesced.iter().peekable();
        while let Some((i, v)) = iter.next() {
            acc = op.combine(&acc, v);
            let block = i / b;
            // Store only when the next point leaves this block (one anchor
            // per non-empty block).
            if iter.peek().is_none_or(|(j, _)| j / b != block) {
                anchors.insert(block, acc.clone());
            }
        }
        Ok(Sparse1dBlocked {
            op,
            n,
            b,
            anchors,
            points: coalesced,
        })
    }

    /// The block size.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Stored anchors (one per non-empty block).
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// Answers `Sum(ℓ:h)`: aligned middle from two anchor floor-lookups,
    /// unaligned edges from binary searches over the point list.
    ///
    /// # Errors
    /// [`ArrayError::OutOfBounds`] when `h ≥ n`.
    pub fn range_sum(&self, range: Range) -> Result<G::Value, ArrayError> {
        self.range_sum_with_stats(range).map(|(v, _)| v)
    }

    /// Like [`Sparse1dBlocked::range_sum`] with access counts.
    ///
    /// # Errors
    /// [`ArrayError::OutOfBounds`] when `h ≥ n`.
    pub fn range_sum_with_stats(
        &self,
        range: Range,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        let (l, h) = (range.lo(), range.hi());
        if h >= self.n {
            return Err(ArrayError::OutOfBounds {
                axis: 0,
                index: h,
                extent: self.n,
            });
        }
        let b = self.b;
        let mut stats = AccessStats::new();
        let l_aligned = l.div_ceil(b) * b; // ℓ′
        let h_aligned = (h + 1) / b * b; // first index after the last full block
        if l_aligned >= h_aligned {
            // No full block inside: scan the points in [l, h].
            return Ok((self.scan_points(l, h, &mut stats), stats));
        }
        let depth = self.anchors.depth() as u64;
        // Aligned middle: cumulative(h_aligned/b − 1) ⊖ cumulative(l′/b − 1).
        stats.visit_nodes(depth);
        let hi = self
            .anchors
            .floor(h_aligned / b - 1)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| self.op.identity());
        let lo = if l_aligned == 0 {
            self.op.identity()
        } else {
            stats.visit_nodes(depth);
            self.anchors
                .floor(l_aligned / b - 1)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| self.op.identity())
        };
        let mut acc = self.op.uncombine(&hi, &lo);
        // Unaligned edges from the point list.
        if l < l_aligned {
            let edge = self.scan_points(l, l_aligned - 1, &mut stats);
            acc = self.op.combine(&acc, &edge);
        }
        if h_aligned <= h {
            let edge = self.scan_points(h_aligned, h, &mut stats);
            acc = self.op.combine(&acc, &edge);
        }
        Ok((acc, stats))
    }

    /// Sums the stored points with indices in `[l, h]`.
    fn scan_points(&self, l: usize, h: usize, stats: &mut AccessStats) -> G::Value {
        let start = self.points.partition_point(|(i, _)| *i < l);
        let mut acc = self.op.identity();
        // analyzer: allow(budget-coverage, reason = "scan of stored points in range; the budgeted entry charges read_a totals after the scan")
        for (i, v) in &self.points[start..] {
            if *i > h {
                break;
            }
            stats.read_a(1);
            acc = self.op.combine(&acc, v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(lo: usize, hi: usize) -> Range {
        Range::new(lo, hi).unwrap()
    }

    #[test]
    fn matches_dense_prefix_sums() {
        let n = 1000;
        let points: Vec<(usize, i64)> = (0..60)
            .map(|i| ((i * 97) % n, (i as i64 % 13) - 6))
            .collect();
        let s = Sparse1dPrefixSum::build(n, &points).unwrap();
        // Dense ground truth.
        let mut dense = vec![0i64; n];
        for &(i, v) in &points {
            dense[i] += v;
        }
        for (l, h) in [(0, 999), (100, 200), (97, 97), (500, 999), (0, 0)] {
            let naive: i64 = dense[l..=h].iter().sum();
            assert_eq!(s.range_sum(range(l, h)).unwrap(), naive, "({l},{h})");
        }
    }

    #[test]
    fn duplicates_combine() {
        let s = Sparse1dPrefixSum::build(10, &[(3usize, 5i64), (3, 7), (8, 1)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.range_sum(range(0, 9)).unwrap(), 13);
        assert_eq!(s.range_sum(range(3, 3)).unwrap(), 12);
    }

    #[test]
    fn empty_ranges_between_points() {
        let s = Sparse1dPrefixSum::build(100, &[(10usize, 4i64), (90, 6)]).unwrap();
        assert_eq!(s.range_sum(range(11, 89)).unwrap(), 0);
        assert_eq!(s.range_sum(range(0, 9)).unwrap(), 0);
        assert_eq!(s.range_sum(range(10, 90)).unwrap(), 10);
    }

    #[test]
    fn cost_is_logarithmic_not_linear() {
        let n = 100_000;
        let points: Vec<(usize, i64)> = (0..5000).map(|i| (i * 20, 1i64)).collect();
        let s = Sparse1dPrefixSum::build(n, &points).unwrap();
        let (v, stats) = s.range_sum_with_stats(range(0, n - 1)).unwrap();
        assert_eq!(v, 5000);
        // Two floor lookups of B+-tree depth each.
        assert!(stats.tree_nodes <= 2 * 10, "visited {}", stats.tree_nodes);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Sparse1dPrefixSum::build(10, &[(10usize, 1i64)]).is_err());
        let s = Sparse1dPrefixSum::build(10, &[(1usize, 1i64)]).unwrap();
        assert!(s.range_sum(range(0, 10)).is_err());
    }

    #[test]
    fn empty_cube() {
        let s = Sparse1dPrefixSum::build(10, &[] as &[(usize, i64)]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.range_sum(range(0, 9)).unwrap(), 0);
    }

    #[test]
    fn blocked_matches_unblocked_exhaustively() {
        let n = 120;
        let points: Vec<(usize, i64)> = (0..25)
            .map(|i| ((i * 17) % n, (i as i64 % 11) - 5))
            .collect();
        let base = Sparse1dPrefixSum::build(n, &points).unwrap();
        for b in [1usize, 4, 7, 16, 200] {
            let blocked = Sparse1dBlocked::build(n, &points, b).unwrap();
            for l in (0..n).step_by(3) {
                for h in (l..n).step_by(5) {
                    assert_eq!(
                        blocked.range_sum(range(l, h)).unwrap(),
                        base.range_sum(range(l, h)).unwrap(),
                        "b={b} ({l},{h})"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_stores_one_anchor_per_nonempty_block() {
        let points: Vec<(usize, i64)> = vec![(3, 1), (5, 2), (40, 3), (99, 4)];
        let s = Sparse1dBlocked::build(100, &points, 10).unwrap();
        // Non-empty blocks: 0 (3,5), 4 (40), 9 (99).
        assert_eq!(s.anchor_count(), 3);
        assert_eq!(s.range_sum(range(0, 99)).unwrap(), 10);
    }

    #[test]
    fn blocked_small_range_scans_points_only() {
        let points: Vec<(usize, i64)> = (0..50).map(|i| (i * 2, 1i64)).collect();
        let s = Sparse1dBlocked::build(100, &points, 25).unwrap();
        let (v, stats) = s.range_sum_with_stats(range(10, 20)).unwrap();
        assert_eq!(v, 6);
        // Entirely inside one block: no anchor lookups, only point reads.
        assert_eq!(stats.tree_nodes, 0);
        assert_eq!(stats.a_cells, 6);
    }

    #[test]
    fn blocked_rejects_bad_input() {
        assert!(Sparse1dBlocked::build(10, &[(0usize, 1i64)], 0).is_err());
        assert!(Sparse1dBlocked::build(10, &[(10usize, 1i64)], 2).is_err());
    }

    #[test]
    fn blocked_duplicates_coalesce() {
        let s = Sparse1dBlocked::build(20, &[(4usize, 3i64), (4, 4)], 5).unwrap();
        assert_eq!(s.range_sum(range(0, 19)).unwrap(), 7);
        assert_eq!(s.range_sum(range(4, 4)).unwrap(), 7);
    }
}
