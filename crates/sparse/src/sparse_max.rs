//! Range-max over sparse cubes (§10.3).
//!
//! The paper observes that for range-max the static fixed-fanout tree can
//! be replaced by "any other tree structure" without affecting
//! correctness, and recommends an R-tree for sparse cubes, traversed from
//! the root (the lowest-covering-node trick needs fixed fanout). This
//! module bulk-loads a balanced R-tree over the non-empty points, caches
//! the maximum value per node, and answers queries with the same
//! branch-and-bound rule as §6: a subtree is pruned when it cannot
//! intersect the query or cannot beat the running maximum.

use crate::cube::SparseCube;
use olap_aggregate::{NaturalOrder, TotalOrder};
use olap_array::{ArrayError, Region, Shape};
use olap_query::AccessStats;

const FANOUT: usize = 8;

/// `(index, value)` of a maximal point, when the region holds any.
pub type MaxResult<V> = Option<(Vec<usize>, V)>;

#[derive(Debug, Clone)]
enum MNode<V> {
    Leaf(Vec<(Vec<usize>, V)>),
    Internal(Vec<Child<V>>),
}

#[derive(Debug, Clone)]
struct Child<V> {
    mbr: Region,
    max: V,
    node: MNode<V>,
}

/// The sparse range-max engine.
#[derive(Debug, Clone)]
pub struct SparseRangeMax<O: TotalOrder> {
    order: O,
    shape: Shape,
    root: Option<Child<O::Value>>,
}

impl<T> SparseRangeMax<NaturalOrder<T>>
where
    NaturalOrder<T>: TotalOrder<Value = T>,
    T: Clone,
{
    /// Builds the engine under the natural order of the value type.
    pub fn build(cube: &SparseCube<T>) -> Self {
        SparseRangeMax::with_order(cube, NaturalOrder::new())
    }
}

impl<O: TotalOrder> SparseRangeMax<O> {
    /// Builds the engine under any total order.
    pub fn with_order(cube: &SparseCube<O::Value>, order: O) -> Self {
        let points: Vec<(Vec<usize>, O::Value)> = cube.points().to_vec();
        let root = if points.is_empty() {
            None
        } else {
            Some(Self::bulk_load(points, &order))
        };
        SparseRangeMax {
            order,
            shape: cube.shape().clone(),
            root,
        }
    }

    /// Recursive sort-tile bulk load: split the point set along its widest
    /// axis into up to `FANOUT` equal chunks until chunks fit in a leaf.
    fn bulk_load(points: Vec<(Vec<usize>, O::Value)>, order: &O) -> Child<O::Value> {
        let mbr = points
            .iter()
            .map(|(p, _)| Region::point(p).expect("d ≥ 1"))
            .reduce(|a, b| a.bounding_union(&b))
            .expect("non-empty");
        let max = points
            .iter()
            .map(|(_, v)| v.clone())
            .reduce(|a, b| if order.ge(&a, &b) { a } else { b })
            .expect("non-empty");
        if points.len() <= FANOUT {
            return Child {
                mbr,
                max,
                node: MNode::Leaf(points),
            };
        }
        // Widest axis of the MBR.
        let axis = mbr
            .ranges()
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.len())
            .map(|(i, _)| i)
            .expect("d ≥ 1");
        let mut points = points;
        points.sort_by_key(|(p, _)| p[axis]);
        let chunks = FANOUT.min(points.len().div_ceil(FANOUT)).max(2);
        let per = points.len().div_ceil(chunks);
        let mut children = Vec::with_capacity(chunks);
        while !points.is_empty() {
            let rest = points.split_off(points.len().min(per));
            let chunk = std::mem::replace(&mut points, rest);
            children.push(Self::bulk_load(chunk, order));
        }
        Child {
            mbr,
            max,
            node: MNode::Internal(children),
        }
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Audits the tree's structural invariants: every node's MBR contains
    /// its children's, the cached max dominates the subtree, and every
    /// point is inside the cube.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn walk<O: TotalOrder>(
            order: &O,
            child: &Child<O::Value>,
            shape: &Shape,
        ) -> Result<(), String> {
            match &child.node {
                MNode::Leaf(points) => {
                    for (p, v) in points {
                        if !shape.contains(p) {
                            return Err(format!("point {p:?} outside the cube"));
                        }
                        if !child.mbr.contains(p) {
                            return Err(format!("point {p:?} outside its MBR"));
                        }
                        if order.gt(v, &child.max) {
                            return Err("cached max beaten by a leaf".into());
                        }
                    }
                }
                MNode::Internal(children) => {
                    for c in children {
                        if !child.mbr.contains_region(&c.mbr) {
                            return Err("child MBR escapes the parent".into());
                        }
                        if order.gt(&c.max, &child.max) {
                            return Err("cached max beaten by a child".into());
                        }
                        walk(order, c, shape)?;
                    }
                }
            }
            Ok(())
        }
        match &self.root {
            None => Ok(()),
            Some(root) => walk(&self.order, root, &self.shape),
        }
    }

    /// Finds the maximum value (and one of its indices) among the
    /// non-empty cells inside `region`; `None` when the region holds no
    /// points.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_max(&self, region: &Region) -> Result<MaxResult<O::Value>, ArrayError> {
        self.range_max_with_stats(region).map(|(r, _)| r)
    }

    /// Like [`SparseRangeMax::range_max`], counting node visits.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_max_with_stats(
        &self,
        region: &Region,
    ) -> Result<(MaxResult<O::Value>, AccessStats), ArrayError> {
        self.shape.check_region(region)?;
        let mut stats = AccessStats::new();
        let mut best: Option<(Vec<usize>, O::Value)> = None;
        if let Some(root) = &self.root {
            self.search(root, region, &mut best, &mut stats);
        }
        Ok((best, stats))
    }

    fn search(
        &self,
        child: &Child<O::Value>,
        region: &Region,
        best: &mut Option<(Vec<usize>, O::Value)>,
        stats: &mut AccessStats,
    ) {
        stats.visit_nodes(1);
        if !child.mbr.overlaps(region) {
            return;
        }
        // Branch-and-bound: the cached max cannot beat the running best.
        if let Some((_, bv)) = best {
            if !self.order.gt(&child.max, bv) {
                return;
            }
        }
        match &child.node {
            MNode::Leaf(points) => {
                for (p, v) in points {
                    stats.step(1);
                    if region.contains(p) {
                        let better = match best {
                            None => true,
                            Some((_, bv)) => self.order.gt(v, bv),
                        };
                        if better {
                            *best = Some((p.clone(), v.clone()));
                        }
                    }
                }
            }
            MNode::Internal(children) => {
                // Visit promising children first: decreasing cached max.
                let mut order_idx: Vec<usize> = (0..children.len()).collect();
                order_idx
                    .sort_by(|&i, &j| self.order.cmp_values(&children[j].max, &children[i].max));
                for i in order_idx {
                    self.search(&children[i], region, best, stats);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> SparseCube<i64> {
        let shape = Shape::new(&[300, 300]).unwrap();
        let mut pts = Vec::new();
        for i in 0..400usize {
            let x = (i * 83) % 300;
            let y = (i * 127) % 300;
            if pts
                .iter()
                .all(|(p, _): &(Vec<usize>, i64)| p != &vec![x, y])
            {
                pts.push((vec![x, y], ((i * 31) % 997) as i64 - 200));
            }
        }
        SparseCube::new(shape, pts).unwrap()
    }

    fn naive(cube: &SparseCube<i64>, q: &Region) -> Option<(Vec<usize>, i64)> {
        cube.points_in(q)
            .max_by_key(|(_, v)| *v)
            .map(|(p, v)| (p.clone(), *v))
    }

    #[test]
    fn matches_naive_on_many_queries() {
        let c = cube();
        let engine = SparseRangeMax::build(&c);
        engine.check_invariants().unwrap();
        for i in 0..40usize {
            let x0 = (i * 37) % 250;
            let y0 = (i * 53) % 250;
            let q = Region::from_bounds(&[(x0, x0 + 49), (y0, y0 + 49)]).unwrap();
            let got = engine.range_max(&q).unwrap();
            let want = naive(&c, &q);
            match (got, want) {
                (None, None) => {}
                (Some((gp, gv)), Some((_, wv))) => {
                    assert_eq!(gv, wv, "{q}");
                    assert!(q.contains(&gp));
                }
                (g, w) => panic!("{q}: got {g:?}, want {w:?}"),
            }
        }
    }

    #[test]
    fn full_region_finds_global_max() {
        let c = cube();
        let engine = SparseRangeMax::build(&c);
        let q = c.shape().full_region();
        let (got, stats) = engine.range_max_with_stats(&q).unwrap();
        let want = naive(&c, &q).unwrap();
        assert_eq!(got.unwrap().1, want.1);
        // Branch-and-bound: nowhere near one visit per point.
        assert!(stats.tree_nodes < 100, "visited {}", stats.tree_nodes);
    }

    #[test]
    fn empty_region_returns_none() {
        let shape = Shape::new(&[100, 100]).unwrap();
        let c = SparseCube::new(shape, vec![(vec![0usize, 0], 1i64)]).unwrap();
        let engine = SparseRangeMax::build(&c);
        let q = Region::from_bounds(&[(50, 60), (50, 60)]).unwrap();
        assert_eq!(engine.range_max(&q).unwrap(), None);
    }

    #[test]
    fn empty_cube() {
        let shape = Shape::new(&[10]).unwrap();
        let c = SparseCube::new(shape, vec![] as Vec<(Vec<usize>, i64)>).unwrap();
        let engine = SparseRangeMax::build(&c);
        assert_eq!(
            engine
                .range_max(&Region::from_bounds(&[(0, 9)]).unwrap())
                .unwrap(),
            None
        );
    }

    #[test]
    fn min_via_reverse_order() {
        use olap_aggregate::ReverseOrder;
        let c = cube();
        let engine = SparseRangeMax::with_order(&c, ReverseOrder::new(NaturalOrder::<i64>::new()));
        let q = c.shape().full_region();
        let got = engine.range_max(&q).unwrap().unwrap();
        let want = c.points().iter().map(|(_, v)| *v).min().unwrap();
        assert_eq!(got.1, want);
    }

    #[test]
    fn three_dimensional_points() {
        let shape = Shape::new(&[40, 40, 40]).unwrap();
        // Deduplicate coordinates (the modular pattern wraps around).
        let mut by_coord = std::collections::BTreeMap::new();
        for i in 0..200usize {
            by_coord.insert(
                vec![(i * 7) % 40, (i * 11) % 40, (i * 17) % 40],
                ((i * 13) % 101) as i64,
            );
        }
        let pts: Vec<(Vec<usize>, i64)> = by_coord.into_iter().collect();
        let c = SparseCube::new(shape, pts).unwrap();
        let engine = SparseRangeMax::build(&c);
        let q = Region::from_bounds(&[(5, 30), (0, 39), (10, 20)]).unwrap();
        let got = engine.range_max(&q).unwrap();
        let want = naive(&c, &q);
        assert_eq!(got.map(|(_, v)| v), want.map(|(_, v)| v));
    }
}
