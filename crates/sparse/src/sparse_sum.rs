//! The d-dimensional sparse range-sum engine (§10.2).
//!
//! Build: find rectangular dense regions with the classifier, compute a
//! prefix sum for each dense region, and add the region boundaries — plus
//! every point in no dense region — to an R*-tree. Query: search the
//! R*-tree for intersecting entries; dense regions answer with their
//! prefix sums over the intersection, outlier points contribute directly.

use crate::cube::SparseCube;
use crate::regions::{DenseRegionFinder, RegionFinderParams};
use crate::rstar::RStarTree;
use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{ArrayError, DenseArray, Range, Region, Shape};
use olap_prefix_sum::batch::{self, CellUpdate};
use olap_prefix_sum::PrefixSumArray;
use olap_query::AccessStats;

/// What an R*-tree entry points at.
#[derive(Debug, Clone)]
enum Payload<V> {
    /// Index into the dense-region table.
    Region(usize),
    /// An outlier point's value.
    Point(V),
}

/// A dense region materialized with its own (region-local) prefix sum.
#[derive(Clone)]
struct RegionData<G: AbelianGroup> {
    bounds: Region,
    prefix: PrefixSumArray<G>,
}

/// The sparse range-sum engine.
///
/// # Examples
///
/// ```
/// use olap_array::{Region, Shape};
/// use olap_sparse::{SparseCube, SparseRangeSum};
///
/// let shape = Shape::new(&[100, 100]).unwrap();
/// let mut points = Vec::new();
/// for x in 10..20usize {
///     for y in 10..20usize {
///         points.push((vec![x, y], 1i64)); // a dense 10×10 cluster
///     }
/// }
/// points.push((vec![90, 90], 5)); // an outlier
/// let cube = SparseCube::new(shape, points).unwrap();
/// let engine = SparseRangeSum::build(&cube).unwrap();
/// let q = Region::from_bounds(&[(0, 99), (0, 99)]).unwrap();
/// assert_eq!(engine.range_sum(&q).unwrap(), 100 + 5);
/// assert!(engine.region_count() >= 1);
/// ```
#[derive(Clone)]
pub struct SparseRangeSum<G: AbelianGroup> {
    op: G,
    shape: Shape,
    regions: Vec<RegionData<G>>,
    index: RStarTree<Payload<G::Value>>,
    outliers: usize,
}

impl<T: NumericValue> SparseRangeSum<SumOp<T>> {
    /// Builds the SUM engine with default region-finder parameters.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn build(cube: &SparseCube<T>) -> Result<Self, ArrayError> {
        SparseRangeSum::with_op(cube, SumOp::new(), RegionFinderParams::default())
    }
}

impl<G: AbelianGroup> SparseRangeSum<G> {
    /// Builds the engine under any invertible operator.
    ///
    /// # Errors
    /// Propagates shape errors.
    pub fn with_op(
        cube: &SparseCube<G::Value>,
        op: G,
        params: RegionFinderParams,
    ) -> Result<Self, ArrayError> {
        let coords: Vec<Vec<usize>> = cube.points().iter().map(|(idx, _)| idx.clone()).collect();
        let finder = DenseRegionFinder::new(params);
        let (found, outlier_ids) = finder.find(cube.shape(), &coords);
        let mut index: RStarTree<Payload<G::Value>> = RStarTree::new(8);
        let mut regions = Vec::with_capacity(found.len());
        for dr in found {
            // Materialize the region-local dense array.
            let local_dims: Vec<usize> = dr.bounds.ranges().iter().map(|r| r.len()).collect();
            let local_shape = Shape::new(&local_dims)?;
            let mut local = DenseArray::filled(local_shape, op.identity());
            for (idx, v) in cube.points_in(&dr.bounds) {
                let local_idx: Vec<usize> = idx
                    .iter()
                    .zip(dr.bounds.ranges())
                    .map(|(&x, r)| x - r.lo())
                    .collect();
                *local.get_mut(&local_idx) = v.clone();
            }
            let prefix = PrefixSumArray::with_op(&local, op.clone());
            index.insert(dr.bounds.clone(), Payload::Region(regions.len()));
            regions.push(RegionData {
                bounds: dr.bounds,
                prefix,
            });
        }
        for &oid in &outlier_ids {
            let (idx, v) = &cube.points()[oid];
            index.insert(Region::point(idx)?, Payload::Point(v.clone()));
        }
        Ok(SparseRangeSum {
            op,
            shape: cube.shape().clone(),
            regions,
            index,
            outliers: outlier_ids.len(),
        })
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dense regions found.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of outlier points.
    pub fn outlier_count(&self) -> usize {
        self.outliers
    }

    /// Total cells of precomputed prefix-sum storage — the space the
    /// engine saves versus densifying the whole cube.
    pub fn prefix_cells(&self) -> usize {
        self.regions.iter().map(|r| r.bounds.volume()).sum()
    }

    /// Applies point updates `(index, value-to-add)` incrementally:
    /// updates inside a dense region go to that region's prefix sum via
    /// the §5 batch algorithm (grouped per region so Theorem 2 applies);
    /// all others become additional outlier entries in the R*-tree
    /// (duplicates are fine — SUM queries combine every intersecting
    /// entry).
    ///
    /// # Errors
    /// Validates every index against the cube shape.
    pub fn apply_updates(&mut self, updates: &[(Vec<usize>, G::Value)]) -> Result<(), ArrayError> {
        for (idx, _) in updates {
            self.shape.check_index(idx)?;
        }
        // Group updates by the dense region containing them.
        let mut per_region: Vec<Vec<CellUpdate<G::Value>>> = vec![Vec::new(); self.regions.len()];
        let mut outliers: Vec<(Vec<usize>, G::Value)> = Vec::new();
        'updates: for (idx, delta) in updates {
            for (ri, rd) in self.regions.iter().enumerate() {
                if rd.bounds.contains(idx) {
                    let local: Vec<usize> = idx
                        .iter()
                        .zip(rd.bounds.ranges())
                        .map(|(&x, r)| x - r.lo())
                        .collect();
                    per_region[ri].push(CellUpdate::new(&local, delta.clone()));
                    continue 'updates;
                }
            }
            outliers.push((idx.clone(), delta.clone()));
        }
        for (ri, batch_updates) in per_region.into_iter().enumerate() {
            if !batch_updates.is_empty() {
                batch::apply_batch(&mut self.regions[ri].prefix, &batch_updates)?;
            }
        }
        for (idx, delta) in outliers {
            self.index
                .insert(Region::point(&idx)?, Payload::Point(delta));
            self.outliers += 1;
        }
        Ok(())
    }

    /// Audits the engine's structural invariants: dense regions are
    /// pairwise disjoint and inside the cube, the R*-tree is structurally
    /// sound, and its entry count matches regions + outliers.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, a) in self.regions.iter().enumerate() {
            if self.shape.check_region(&a.bounds).is_err() {
                return Err(format!("region {i} outside the cube"));
            }
            for b in &self.regions[i + 1..] {
                if a.bounds.overlaps(&b.bounds) {
                    return Err(format!("region {i} overlaps another region"));
                }
            }
        }
        self.index.check_invariants()?;
        if self.index.len() != self.regions.len() + self.outliers {
            return Err(format!(
                "index holds {} entries but {} regions + {} outliers exist",
                self.index.len(),
                self.regions.len(),
                self.outliers
            ));
        }
        Ok(())
    }

    /// Answers a range-sum query.
    ///
    /// # Errors
    /// Validates the region.
    pub fn range_sum(&self, region: &Region) -> Result<G::Value, ArrayError> {
        self.range_sum_with_stats(region).map(|(v, _)| v)
    }

    /// Like [`SparseRangeSum::range_sum`], counting R*-tree node visits
    /// and prefix-sum cell reads.
    pub fn range_sum_with_stats(
        &self,
        region: &Region,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        self.shape.check_region(region)?;
        let mut stats = AccessStats::new();
        let mut hits = Vec::new();
        self.index.search_with_stats(region, &mut hits, &mut stats);
        let mut acc = self.op.identity();
        for (_, payload) in hits {
            match payload {
                Payload::Point(v) => {
                    stats.read_a(1);
                    acc = self.op.combine(&acc, v);
                }
                Payload::Region(i) => {
                    let rd = &self.regions[*i];
                    let inter = rd
                        .bounds
                        .intersect(region)
                        .expect("R*-tree returned an intersecting entry");
                    let local = Region::new(
                        inter
                            .ranges()
                            .iter()
                            .zip(rd.bounds.ranges())
                            .map(|(q, b)| {
                                Range::new(q.lo() - b.lo(), q.hi() - b.lo())
                                    .expect("intersection within bounds")
                            })
                            .collect(),
                    )?;
                    let mut sub_stats = AccessStats::new();
                    let v = rd.prefix.range_sum_with_stats(&local).map(|(v, s)| {
                        sub_stats = s;
                        v
                    })?;
                    stats += sub_stats;
                    acc = self.op.combine(&acc, &v);
                }
            }
            stats.step(1);
        }
        Ok((acc, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clustered sparse cube: a dense 12×12 block, a dense 9×9 block,
    /// and scattered noise — the "dense sub-clusters" the paper says are
    /// typical.
    fn clustered_cube() -> SparseCube<i64> {
        let shape = Shape::new(&[200, 200]).unwrap();
        let mut pts = Vec::new();
        for x in 10..22usize {
            for y in 30..42usize {
                pts.push((vec![x, y], ((x * 7 + y) % 9) as i64 + 1));
            }
        }
        for x in 100..109usize {
            for y in 150..159usize {
                pts.push((vec![x, y], ((x + y * 3) % 5) as i64 + 1));
            }
        }
        for i in 0..25usize {
            let x = (i * 83) % 200;
            let y = (i * 59) % 200;
            if pts.iter().all(|(p, _)| p != &vec![x, y]) {
                pts.push((vec![x, y], (i % 7) as i64 + 1));
            }
        }
        SparseCube::new(shape, pts).unwrap()
    }

    fn naive(cube: &SparseCube<i64>, q: &Region) -> i64 {
        cube.points_in(q).map(|(_, v)| *v).sum()
    }

    #[test]
    fn finds_clusters_and_answers_queries() {
        let cube = clustered_cube();
        let engine = SparseRangeSum::build(&cube).unwrap();
        engine.check_invariants().unwrap();
        assert!(
            engine.region_count() >= 2,
            "{} regions",
            engine.region_count()
        );
        let queries = [
            [(0, 199), (0, 199)],
            [(10, 21), (30, 41)],
            [(0, 99), (0, 99)],
            [(15, 104), (35, 154)],
            [(199, 199), (199, 199)],
        ];
        for qb in queries {
            let q = Region::from_bounds(&qb).unwrap();
            assert_eq!(engine.range_sum(&q).unwrap(), naive(&cube, &q), "{q}");
        }
    }

    #[test]
    fn prefix_storage_is_much_smaller_than_dense() {
        let cube = clustered_cube();
        let engine = SparseRangeSum::build(&cube).unwrap();
        // Dense P would need 200·200 = 40000 cells; regions need ~225.
        assert!(
            engine.prefix_cells() < 2_000,
            "{} cells",
            engine.prefix_cells()
        );
    }

    #[test]
    fn cluster_query_uses_prefix_not_scan() {
        let cube = clustered_cube();
        let engine = SparseRangeSum::build(&cube).unwrap();
        let q = Region::from_bounds(&[(11, 20), (31, 40)]).unwrap();
        let (v, stats) = engine.range_sum_with_stats(&q).unwrap();
        assert_eq!(v, naive(&cube, &q));
        // 2^d = 4 prefix cells for the region, plus tree traversal.
        assert!(stats.p_cells <= 8, "{} P cells", stats.p_cells);
    }

    #[test]
    fn pure_noise_cube_works() {
        let shape = Shape::new(&[50, 50, 50]).unwrap();
        let pts: Vec<(Vec<usize>, i64)> = (0..40)
            .map(|i| {
                (
                    vec![(i * 7) % 50, (i * 11) % 50, (i * 13) % 50],
                    (i % 5) as i64 + 1,
                )
            })
            .collect();
        let cube = SparseCube::new(shape, pts).unwrap();
        let engine = SparseRangeSum::build(&cube).unwrap();
        let q = Region::from_bounds(&[(0, 49), (0, 24), (10, 40)]).unwrap();
        assert_eq!(engine.range_sum(&q).unwrap(), naive(&cube, &q));
    }

    #[test]
    fn empty_cube_sums_to_identity() {
        let shape = Shape::new(&[10, 10]).unwrap();
        let cube = SparseCube::new(shape, vec![] as Vec<(Vec<usize>, i64)>).unwrap();
        let engine = SparseRangeSum::build(&cube).unwrap();
        let q = Region::from_bounds(&[(0, 9), (0, 9)]).unwrap();
        assert_eq!(engine.range_sum(&q).unwrap(), 0);
    }

    #[test]
    fn incremental_updates_inside_and_outside_regions() {
        let cube = clustered_cube();
        let mut engine = SparseRangeSum::build(&cube).unwrap();
        let before_outliers = engine.outlier_count();
        // One update inside the first cluster, one at a fresh empty cell,
        // one stacked on an existing outlier location.
        let updates = vec![
            (vec![15usize, 35], 100i64), // inside the 12×12 cluster
            (vec![199, 0], 7),           // fresh cell
            (vec![15, 35], 11),          // same cluster cell again
        ];
        engine.apply_updates(&updates).unwrap();
        engine.check_invariants().unwrap();
        assert!(engine.outlier_count() > before_outliers);
        // Ground truth: the original points plus the deltas.
        let q = Region::from_bounds(&[(0, 199), (0, 199)]).unwrap();
        let expected = naive(&cube, &q) + 100 + 7 + 11;
        assert_eq!(engine.range_sum(&q).unwrap(), expected);
        // A query covering only the cluster sees only its deltas.
        let q = Region::from_bounds(&[(10, 21), (30, 41)]).unwrap();
        let expected = naive(&cube, &q) + 100 + 11;
        assert_eq!(engine.range_sum(&q).unwrap(), expected);
        // A disjoint window is untouched.
        let q = Region::from_bounds(&[(50, 90), (50, 90)]).unwrap();
        assert_eq!(engine.range_sum(&q).unwrap(), naive(&cube, &q));
    }

    #[test]
    fn update_rejects_out_of_shape() {
        let cube = clustered_cube();
        let mut engine = SparseRangeSum::build(&cube).unwrap();
        assert!(engine.apply_updates(&[(vec![200, 0], 1i64)]).is_err());
    }

    #[test]
    fn rejects_bad_region() {
        let cube = clustered_cube();
        let engine = SparseRangeSum::build(&cube).unwrap();
        assert!(engine
            .range_sum(&Region::from_bounds(&[(0, 200), (0, 10)]).unwrap())
            .is_err());
    }
}
