//! Property tests for the §10 substrates and engines: the B+-tree against
//! `BTreeMap` as a model, the R*-tree's structural invariants and query
//! completeness, the region finder's partition property, and the sparse
//! engines against point-scan ground truth.

use olap_array::{Range, Region, Shape};
use olap_sparse::{
    BPlusTree, DenseRegionFinder, RStarTree, Sparse1dBlocked, Sparse1dPrefixSum, SparseCube,
    SparseRangeMax, SparseRangeSum,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn bplus_tree_models_btreemap(
        ops in prop::collection::vec((0usize..500, -100i64..100), 0..200),
        probes in prop::collection::vec(0usize..600, 0..50),
    ) {
        let mut tree = BPlusTree::new(4);
        let mut model = BTreeMap::new();
        for (k, v) in &ops {
            prop_assert_eq!(tree.insert(*k, *v), model.insert(*k, *v));
        }
        prop_assert_eq!(tree.len(), model.len());
        for p in probes {
            prop_assert_eq!(tree.get(p), model.get(&p));
            prop_assert_eq!(
                tree.floor(p).map(|(k, v)| (k, *v)),
                model.range(..=p).next_back().map(|(k, v)| (*k, *v))
            );
            prop_assert_eq!(
                tree.ceiling(p).map(|(k, v)| (k, *v)),
                model.range(p..).next().map(|(k, v)| (*k, *v))
            );
        }
        let from_tree: Vec<(usize, i64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let from_model: Vec<(usize, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(from_tree, from_model);
    }

    #[test]
    fn rstar_tree_invariants_and_completeness(
        pts in prop::collection::btree_set((0usize..60, 0usize..60), 1..120),
        query in (0usize..60, 0usize..60, 0usize..60, 0usize..60),
    ) {
        let mut tree = RStarTree::new(5);
        for &(x, y) in &pts {
            tree.insert(Region::point(&[x, y]).unwrap(), (x, y));
        }
        prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        prop_assert_eq!(tree.len(), pts.len());
        let (a, b, c, d) = query;
        let q = Region::from_bounds(&[(a.min(b), a.max(b)), (c.min(d), c.max(d))]).unwrap();
        let mut found: Vec<(usize, usize)> = tree.search(&q).iter().map(|(_, v)| **v).collect();
        found.sort_unstable();
        let expected: Vec<(usize, usize)> = pts
            .iter()
            .filter(|&&(x, y)| q.contains(&[x, y]))
            .copied()
            .collect();
        prop_assert_eq!(found, expected);
    }

    #[test]
    fn region_finder_partitions_points(
        pts in prop::collection::btree_set((0usize..40, 0usize..40), 0..150),
    ) {
        let shape = Shape::new(&[40, 40]).unwrap();
        let points: Vec<Vec<usize>> = pts.iter().map(|&(x, y)| vec![x, y]).collect();
        let (regions, outliers) = DenseRegionFinder::default().find(&shape, &points);
        // Regions are disjoint.
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                prop_assert!(!regions[i].bounds.overlaps(&regions[j].bounds));
            }
        }
        // Every point is in exactly one region or is an outlier.
        let mut covered = 0usize;
        for p in &points {
            let in_regions = regions.iter().filter(|r| r.bounds.contains(p)).count();
            prop_assert!(in_regions <= 1);
            covered += in_regions;
        }
        prop_assert_eq!(covered + outliers.len(), points.len());
        // Region point counts are consistent.
        for r in &regions {
            let actual = points.iter().filter(|p| r.bounds.contains(p)).count();
            prop_assert_eq!(actual, r.points);
        }
    }

    #[test]
    fn sparse_engines_match_point_scan(
        entries in prop::collection::btree_map((0usize..50, 0usize..50), 1i64..100, 1..200),
        query in (0usize..50, 0usize..50, 0usize..50, 0usize..50),
    ) {
        let shape = Shape::new(&[50, 50]).unwrap();
        let points: Vec<(Vec<usize>, i64)> = entries
            .iter()
            .map(|(&(x, y), &v)| (vec![x, y], v))
            .collect();
        let cube = SparseCube::new(shape, points).unwrap();
        let sum_engine = SparseRangeSum::build(&cube).unwrap();
        let max_engine = SparseRangeMax::build(&cube);
        let (a, b, c, d) = query;
        let q = Region::from_bounds(&[(a.min(b), a.max(b)), (c.min(d), c.max(d))]).unwrap();
        let expected_sum: i64 = cube.points_in(&q).map(|(_, v)| *v).sum();
        prop_assert_eq!(sum_engine.range_sum(&q).unwrap(), expected_sum);
        let expected_max = cube.points_in(&q).map(|(_, v)| *v).max();
        prop_assert_eq!(max_engine.range_max(&q).unwrap().map(|(_, v)| v), expected_max);
    }

    #[test]
    fn sparse_1d_variants_agree(
        entries in prop::collection::btree_map(0usize..300, -50i64..50, 0..80),
        b in 1usize..20,
        bounds in (0usize..300, 0usize..300),
    ) {
        let points: Vec<(usize, i64)> = entries.into_iter().collect();
        let base = Sparse1dPrefixSum::build(300, &points).unwrap();
        let blocked = Sparse1dBlocked::build(300, &points, b).unwrap();
        let (x, y) = bounds;
        let r = Range::new(x.min(y), x.max(y)).unwrap();
        prop_assert_eq!(base.range_sum(r).unwrap(), blocked.range_sum(r).unwrap());
        // Ground truth.
        let expected: i64 = points
            .iter()
            .filter(|(i, _)| r.contains(*i))
            .map(|(_, v)| *v)
            .sum();
        prop_assert_eq!(base.range_sum(r).unwrap(), expected);
    }
}
