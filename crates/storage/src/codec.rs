//! Low-level primitives: header handling, integer/float codecs, and the
//! error type.

use std::fmt;
use std::io::{self, Read, Write};

/// The file magic.
pub(crate) const MAGIC: &[u8; 8] = b"OLAPCUBE";
/// Current format version.
pub(crate) const VERSION: u16 = 1;

/// Artifact kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Kind {
    DenseI64 = 1,
    DenseF64 = 2,
    SparseI64 = 3,
    PrefixSumI64 = 4,
    BlockedPrefixI64 = 5,
    MaxTreeI64 = 6,
    MinTreeI64 = 7,
}

impl Kind {
    pub(crate) fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::DenseI64),
            2 => Some(Kind::DenseF64),
            3 => Some(Kind::SparseI64),
            4 => Some(Kind::PrefixSumI64),
            5 => Some(Kind::BlockedPrefixI64),
            6 => Some(Kind::MaxTreeI64),
            7 => Some(Kind::MinTreeI64),
            _ => None,
        }
    }
}

/// Errors from reading or writing storage files.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The artifact kind does not match what the caller asked for.
    WrongKind {
        /// Kind tag found in the file.
        found: u8,
        /// Kind tag expected by the reader.
        expected: u8,
    },
    /// Structurally invalid payload (bad shapes, counts, or indices).
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an OLAPCUBE file"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            StorageError::WrongKind { found, expected } => {
                write!(f, "artifact kind {found} found, {expected} expected")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

pub(crate) fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

pub(crate) fn write_header(w: &mut impl Write, kind: Kind) -> Result<(), StorageError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[kind as u8])?;
    Ok(())
}

pub(crate) fn read_header(r: &mut impl Read, expected: Kind) -> Result<(), StorageError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let mut k = [0u8; 1];
    r.read_exact(&mut k)?;
    let kind_byte = u8::from_le_bytes(k);
    match Kind::from_u8(kind_byte) {
        Some(kind) if kind == expected => Ok(()),
        _ => Err(StorageError::WrongKind {
            found: kind_byte,
            expected: expected as u8,
        }),
    }
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> Result<(), StorageError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64(r: &mut impl Read) -> Result<u64, StorageError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_usize(w: &mut impl Write, v: usize) -> Result<(), StorageError> {
    write_u64(w, v as u64)
}

/// Reads a usize with a sanity cap so corrupt lengths don't trigger huge
/// allocations.
pub(crate) fn read_usize_capped(r: &mut impl Read, cap: u64) -> Result<usize, StorageError> {
    let v = read_u64(r)?;
    if v > cap {
        return Err(corrupt(format!("length {v} exceeds cap {cap}")));
    }
    Ok(v as usize)
}

pub(crate) fn write_i64_slice(w: &mut impl Write, vs: &[i64]) -> Result<(), StorageError> {
    write_usize(w, vs.len())?;
    for v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_i64_vec(r: &mut impl Read, cap: u64) -> Result<Vec<i64>, StorageError> {
    let len = read_usize_capped(r, cap)?;
    // Never trust a length field for preallocation: a corrupt header must
    // fail on read, not on a giant allocation.
    let mut out = Vec::with_capacity(len.min(1 << 16));
    let mut b = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(i64::from_le_bytes(b));
    }
    Ok(out)
}

pub(crate) fn write_f64_slice(w: &mut impl Write, vs: &[f64]) -> Result<(), StorageError> {
    write_usize(w, vs.len())?;
    for v in vs {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    Ok(())
}

pub(crate) fn read_f64_vec(r: &mut impl Read, cap: u64) -> Result<Vec<f64>, StorageError> {
    let len = read_usize_capped(r, cap)?;
    let mut out = Vec::with_capacity(len.min(1 << 16));
    let mut b = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut b)?;
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    Ok(out)
}

pub(crate) fn write_usize_slice(w: &mut impl Write, vs: &[usize]) -> Result<(), StorageError> {
    write_usize(w, vs.len())?;
    for &v in vs {
        write_usize(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_usize_vec(r: &mut impl Read, cap: u64) -> Result<Vec<usize>, StorageError> {
    let len = read_usize_capped(r, cap)?;
    let mut out = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        out.push(read_usize_capped(r, u64::MAX)?);
    }
    Ok(out)
}

/// Maximum cells/points accepted from a file — a generous sanity bound to
/// keep corrupt headers from allocating the machine away.
pub(crate) const MAX_ELEMENTS: u64 = 1 << 34;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let mut buf = Vec::new();
        write_header(&mut buf, Kind::DenseI64).unwrap();
        read_header(&mut buf.as_slice(), Kind::DenseI64).unwrap();
    }

    #[test]
    fn header_rejects_bad_magic() {
        let buf = b"NOTACUBE\x01\x00\x01".to_vec();
        assert!(matches!(
            read_header(&mut buf.as_slice(), Kind::DenseI64),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn header_rejects_wrong_kind() {
        let mut buf = Vec::new();
        write_header(&mut buf, Kind::DenseF64).unwrap();
        assert!(matches!(
            read_header(&mut buf.as_slice(), Kind::DenseI64),
            Err(StorageError::WrongKind {
                found: 2,
                expected: 1
            })
        ));
    }

    #[test]
    fn header_rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.push(1);
        assert!(matches!(
            read_header(&mut buf.as_slice(), Kind::DenseI64),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn slice_roundtrips() {
        let mut buf = Vec::new();
        write_i64_slice(&mut buf, &[1, -5, i64::MAX]).unwrap();
        write_f64_slice(&mut buf, &[0.5, -1.25, f64::NAN]).unwrap();
        write_usize_slice(&mut buf, &[0, 7, 42]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_i64_vec(&mut r, 100).unwrap(), vec![1, -5, i64::MAX]);
        let fs = read_f64_vec(&mut r, 100).unwrap();
        assert_eq!(fs[0], 0.5);
        assert!(fs[2].is_nan());
        assert_eq!(read_usize_vec(&mut r, 100).unwrap(), vec![0, 7, 42]);
    }

    #[test]
    fn capped_lengths_reject_huge_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(matches!(
            read_usize_capped(&mut buf.as_slice(), 1000),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_input_is_io_error() {
        let mut buf = Vec::new();
        write_i64_slice(&mut buf, &[1, 2, 3]).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(
            read_i64_vec(&mut buf.as_slice(), 100),
            Err(StorageError::Io(_))
        ));
    }
}
