//! Per-artifact readers and writers.

use crate::codec::{
    corrupt, read_f64_vec, read_header, read_i64_vec, read_usize_capped, read_usize_vec,
    write_f64_slice, write_header, write_i64_slice, write_usize, write_usize_slice, Kind,
    StorageError, MAX_ELEMENTS,
};
use olap_aggregate::{NaturalOrder, ReverseOrder, SumOp};
use olap_array::{DenseArray, Shape};
use olap_prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_range_max::{NaturalMaxTree, NaturalMinTree};
use olap_sparse::SparseCube;
use std::io::{Read, Write};

fn write_shape(w: &mut impl Write, shape: &Shape) -> Result<(), StorageError> {
    write_usize_slice(w, shape.dims())
}

fn read_shape(r: &mut impl Read) -> Result<Shape, StorageError> {
    let dims = read_usize_vec(r, 64)?;
    Shape::new(&dims).map_err(|e| corrupt(e.to_string()))
}

fn write_dense_i64_body(w: &mut impl Write, a: &DenseArray<i64>) -> Result<(), StorageError> {
    write_shape(w, a.shape())?;
    write_i64_slice(w, a.as_slice())
}

fn read_dense_i64_body(r: &mut impl Read) -> Result<DenseArray<i64>, StorageError> {
    let shape = read_shape(r)?;
    let data = read_i64_vec(r, MAX_ELEMENTS)?;
    DenseArray::from_vec(shape, data).map_err(|e| corrupt(e.to_string()))
}

/// Writes a dense `i64` cube.
///
/// # Errors
/// I/O failures.
pub fn write_dense_i64(w: &mut impl Write, a: &DenseArray<i64>) -> Result<(), StorageError> {
    write_header(w, Kind::DenseI64)?;
    write_dense_i64_body(w, a)
}

/// Reads a dense `i64` cube.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads.
pub fn read_dense_i64(r: &mut impl Read) -> Result<DenseArray<i64>, StorageError> {
    read_header(r, Kind::DenseI64)?;
    read_dense_i64_body(r)
}

/// Writes a dense `f64` cube.
///
/// # Errors
/// I/O failures.
pub fn write_dense_f64(w: &mut impl Write, a: &DenseArray<f64>) -> Result<(), StorageError> {
    write_header(w, Kind::DenseF64)?;
    write_shape(w, a.shape())?;
    write_f64_slice(w, a.as_slice())
}

/// Reads a dense `f64` cube.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads.
pub fn read_dense_f64(r: &mut impl Read) -> Result<DenseArray<f64>, StorageError> {
    read_header(r, Kind::DenseF64)?;
    let shape = read_shape(r)?;
    let data = read_f64_vec(r, MAX_ELEMENTS)?;
    DenseArray::from_vec(shape, data).map_err(|e| corrupt(e.to_string()))
}

/// Writes a sparse `i64` cube (shape + points).
///
/// # Errors
/// I/O failures.
pub fn write_sparse_cube(w: &mut impl Write, cube: &SparseCube<i64>) -> Result<(), StorageError> {
    write_header(w, Kind::SparseI64)?;
    write_shape(w, cube.shape())?;
    write_usize(w, cube.len())?;
    for (idx, v) in cube.points() {
        write_usize_slice(w, idx)?;
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a sparse `i64` cube.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads (out-of-shape
/// or duplicate points).
pub fn read_sparse_cube(r: &mut impl Read) -> Result<SparseCube<i64>, StorageError> {
    read_header(r, Kind::SparseI64)?;
    let shape = read_shape(r)?;
    let count = read_usize_capped(r, MAX_ELEMENTS)?;
    let mut points = Vec::with_capacity(count.min(1 << 16));
    let mut b = [0u8; 8];
    for _ in 0..count {
        let idx = read_usize_vec(r, 64)?;
        r.read_exact(&mut b)?;
        points.push((idx, i64::from_le_bytes(b)));
    }
    SparseCube::new(shape, points).map_err(|e| corrupt(e.to_string()))
}

/// Writes a basic prefix-sum array (§3).
///
/// # Errors
/// I/O failures.
pub fn write_prefix_sum(w: &mut impl Write, ps: &PrefixSumCube<i64>) -> Result<(), StorageError> {
    write_header(w, Kind::PrefixSumI64)?;
    write_dense_i64_body(w, ps.prefix_array())
}

/// Reads a basic prefix-sum array.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads.
pub fn read_prefix_sum(r: &mut impl Read) -> Result<PrefixSumCube<i64>, StorageError> {
    read_header(r, Kind::PrefixSumI64)?;
    let p = read_dense_i64_body(r)?;
    Ok(PrefixSumCube::from_prefix_array(p, SumOp::new()))
}

/// Writes a blocked prefix-sum array (§4): cube shape, block size, packed
/// array.
///
/// # Errors
/// I/O failures.
pub fn write_blocked_prefix(
    w: &mut impl Write,
    bp: &BlockedPrefixCube<i64>,
) -> Result<(), StorageError> {
    write_header(w, Kind::BlockedPrefixI64)?;
    write_shape(w, bp.shape())?;
    write_usize(w, bp.block_size())?;
    write_dense_i64_body(w, bp.packed_array())
}

/// Reads a blocked prefix-sum array.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads (packed shape
/// inconsistent with the cube shape and block size).
pub fn read_blocked_prefix(r: &mut impl Read) -> Result<BlockedPrefixCube<i64>, StorageError> {
    read_header(r, Kind::BlockedPrefixI64)?;
    let shape = read_shape(r)?;
    let b = read_usize_capped(r, MAX_ELEMENTS)?;
    let packed = read_dense_i64_body(r)?;
    BlockedPrefixCube::from_parts(shape, b, packed, SumOp::new())
        .map_err(|e| corrupt(e.to_string()))
}

/// Writes a range-max tree (§6): cube shape, fanout, per-level tables.
///
/// # Errors
/// I/O failures.
pub fn write_max_tree(w: &mut impl Write, t: &NaturalMaxTree<i64>) -> Result<(), StorageError> {
    write_header(w, Kind::MaxTreeI64)?;
    write_shape(w, t.shape())?;
    write_usize(w, t.fanout())?;
    let levels = t.export_levels();
    write_usize(w, levels.len())?;
    for (dims, max_index) in levels {
        write_usize_slice(w, &dims)?;
        write_usize_slice(w, &max_index)?;
    }
    Ok(())
}

/// Reads a range-max tree. Structural consistency (level shapes, index
/// bounds) is validated; audit against the cube with
/// [`NaturalMaxTree::check_invariants`] if the cube file's provenance is
/// uncertain.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads.
pub fn read_max_tree(r: &mut impl Read) -> Result<NaturalMaxTree<i64>, StorageError> {
    read_header(r, Kind::MaxTreeI64)?;
    let shape = read_shape(r)?;
    let b = read_usize_capped(r, MAX_ELEMENTS)?;
    let n_levels = read_usize_capped(r, 64)?;
    let mut levels = Vec::with_capacity(n_levels.min(64));
    for _ in 0..n_levels {
        let dims = read_usize_vec(r, 64)?;
        let max_index = read_usize_vec(r, MAX_ELEMENTS)?;
        levels.push((dims, max_index));
    }
    NaturalMaxTree::from_levels(shape, b, NaturalOrder::new(), levels)
        .map_err(|e| corrupt(e.to_string()))
}

/// Writes a range-min tree (the §6 structure under the reversed order).
///
/// # Errors
/// I/O failures.
pub fn write_min_tree(w: &mut impl Write, t: &NaturalMinTree<i64>) -> Result<(), StorageError> {
    write_header(w, Kind::MinTreeI64)?;
    write_shape(w, t.shape())?;
    write_usize(w, t.fanout())?;
    let levels = t.export_levels();
    write_usize(w, levels.len())?;
    for (dims, max_index) in levels {
        write_usize_slice(w, &dims)?;
        write_usize_slice(w, &max_index)?;
    }
    Ok(())
}

/// Reads a range-min tree.
///
/// # Errors
/// I/O failures, bad magic/version/kind, corrupt payloads.
pub fn read_min_tree(r: &mut impl Read) -> Result<NaturalMinTree<i64>, StorageError> {
    read_header(r, Kind::MinTreeI64)?;
    let shape = read_shape(r)?;
    let b = read_usize_capped(r, MAX_ELEMENTS)?;
    let n_levels = read_usize_capped(r, 64)?;
    let mut levels = Vec::with_capacity(n_levels.min(64));
    for _ in 0..n_levels {
        let dims = read_usize_vec(r, 64)?;
        let max_index = read_usize_vec(r, MAX_ELEMENTS)?;
        levels.push((dims, max_index));
    }
    NaturalMinTree::from_levels(shape, b, ReverseOrder::new(NaturalOrder::new()), levels)
        .map_err(|e| corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use olap_array::Region;

    fn cube() -> DenseArray<i64> {
        DenseArray::from_fn(Shape::new(&[9, 7, 4]).unwrap(), |i| {
            (i[0] * 31 + i[1] * 17 + i[2] * 5) as i64 % 41 - 20
        })
    }

    #[test]
    fn dense_i64_roundtrip() {
        let a = cube();
        let mut buf = Vec::new();
        write_dense_i64(&mut buf, &a).unwrap();
        let back = read_dense_i64(&mut buf.as_slice()).unwrap();
        assert_eq!(back.shape(), a.shape());
        assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn dense_f64_roundtrip_bitexact() {
        let a = DenseArray::from_fn(Shape::new(&[5, 5]).unwrap(), |i| {
            (i[0] as f64).sqrt() - (i[1] as f64) * 0.1
        });
        let mut buf = Vec::new();
        write_dense_f64(&mut buf, &a).unwrap();
        let back = read_dense_f64(&mut buf.as_slice()).unwrap();
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_roundtrip() {
        let shape = Shape::new(&[40, 40]).unwrap();
        let pts: Vec<(Vec<usize>, i64)> = (0..60)
            .map(|i| (vec![(i * 7) % 40, (i * 13) % 40], i as i64))
            .collect();
        // Dedup (modular collisions are possible).
        let mut seen = std::collections::BTreeSet::new();
        let pts: Vec<_> = pts
            .into_iter()
            .filter(|(p, _)| seen.insert(p.clone()))
            .collect();
        let cube = SparseCube::new(shape, pts).unwrap();
        let mut buf = Vec::new();
        write_sparse_cube(&mut buf, &cube).unwrap();
        let back = read_sparse_cube(&mut buf.as_slice()).unwrap();
        assert_eq!(back.points(), cube.points());
        assert_eq!(back.shape(), cube.shape());
    }

    #[test]
    fn prefix_sum_roundtrip_answers_queries() {
        let a = cube();
        let ps = PrefixSumCube::build(&a);
        let mut buf = Vec::new();
        write_prefix_sum(&mut buf, &ps).unwrap();
        let back = read_prefix_sum(&mut buf.as_slice()).unwrap();
        let q = Region::from_bounds(&[(1, 7), (2, 5), (0, 3)]).unwrap();
        assert_eq!(back.range_sum(&q).unwrap(), ps.range_sum(&q).unwrap());
    }

    #[test]
    fn blocked_prefix_roundtrip_answers_queries() {
        let a = cube();
        let bp = BlockedPrefixCube::build(&a, 3).unwrap();
        let mut buf = Vec::new();
        write_blocked_prefix(&mut buf, &bp).unwrap();
        let back = read_blocked_prefix(&mut buf.as_slice()).unwrap();
        assert_eq!(back.block_size(), 3);
        let q = Region::from_bounds(&[(2, 8), (1, 6), (1, 3)]).unwrap();
        assert_eq!(
            back.range_sum(&a, &q).unwrap(),
            bp.range_sum(&a, &q).unwrap()
        );
    }

    #[test]
    fn max_tree_roundtrip_preserves_invariants() {
        let a = cube();
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        let mut buf = Vec::new();
        write_max_tree(&mut buf, &t).unwrap();
        let back = read_max_tree(&mut buf.as_slice()).unwrap();
        back.check_invariants(&a).unwrap();
        let q = Region::from_bounds(&[(0, 8), (3, 6), (1, 2)]).unwrap();
        assert_eq!(
            back.range_max(&a, &q).unwrap().1,
            t.range_max(&a, &q).unwrap().1
        );
    }

    #[test]
    fn min_tree_roundtrip() {
        let a = cube();
        let t = NaturalMinTree::for_min_values(&a, 2).unwrap();
        let mut buf = Vec::new();
        write_min_tree(&mut buf, &t).unwrap();
        let back = read_min_tree(&mut buf.as_slice()).unwrap();
        back.check_invariants(&a).unwrap();
        let q = Region::from_bounds(&[(1, 7), (0, 6), (0, 3)]).unwrap();
        // "max" under the reversed order is the minimum.
        assert_eq!(
            back.range_max(&a, &q).unwrap().1,
            t.range_max(&a, &q).unwrap().1
        );
        // A min tree is not readable as a max tree.
        assert!(matches!(
            read_max_tree(&mut buf.as_slice()),
            Err(StorageError::WrongKind { .. })
        ));
    }

    #[test]
    fn kind_mismatch_detected() {
        let a = cube();
        let mut buf = Vec::new();
        write_dense_i64(&mut buf, &a).unwrap();
        assert!(matches!(
            read_prefix_sum(&mut buf.as_slice()),
            Err(StorageError::WrongKind { .. })
        ));
    }

    #[test]
    fn corrupt_blocked_shape_rejected() {
        let a = cube();
        let bp = BlockedPrefixCube::build(&a, 3).unwrap();
        let mut buf = Vec::new();
        write_blocked_prefix(&mut buf, &bp).unwrap();
        // Tamper with the block size field (directly after the shape).
        // Header (11) + shape (8 + 3·8 = 32) → block size at offset 43.
        buf[43] = 9;
        let res = read_blocked_prefix(&mut buf.as_slice());
        assert!(matches!(res, Err(StorageError::Corrupt(_))), "{res:?}");
    }

    #[test]
    fn corrupt_max_tree_index_rejected() {
        let a = cube();
        let t = NaturalMaxTree::for_values(&a, 2).unwrap();
        let mut levels = t.export_levels();
        levels[0].1[0] = 1_000_000; // out of the cube
        assert!(NaturalMaxTree::from_levels(
            a.shape().clone(),
            2,
            NaturalOrder::<i64>::new(),
            levels
        )
        .is_err());
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let a = cube();
        let mut buf = Vec::new();
        write_dense_i64(&mut buf, &a).unwrap();
        for cut in [0usize, 5, 11, 20, buf.len() - 1] {
            let slice = &buf[..cut];
            assert!(read_dense_i64(&mut &slice[..]).is_err(), "cut at {cut}");
        }
    }
}
