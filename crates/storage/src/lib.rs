//! Binary persistence for data cubes and their precomputed structures.
//!
//! In the OLAP setting the paper targets, the prefix-sum array and the
//! max tree are computed once (a `dN`-step pass over the cube, §3.3) and
//! then served for a long query period — so a production deployment
//! persists them rather than rebuilding on every start. This crate
//! provides a small, dependency-free, little-endian binary format:
//!
//! ```text
//! magic "OLAPCUBE" | u16 version | u8 kind | payload
//! ```
//!
//! Supported artifacts: [`DenseArray`](olap_array::DenseArray)`<i64>`/`<f64>`,
//! [`SparseCube`](olap_sparse::SparseCube)`<i64>`, the basic prefix-sum array, the blocked
//! prefix-sum array, and the range-max tree. Every reader validates
//! structure (magic, version, kind, shapes) and fails loudly on
//! corruption; it never panics on malformed input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod formats;

pub use codec::StorageError;
pub use formats::{
    read_blocked_prefix, read_dense_f64, read_dense_i64, read_max_tree, read_min_tree,
    read_prefix_sum, read_sparse_cube, write_blocked_prefix, write_dense_f64, write_dense_i64,
    write_max_tree, write_min_tree, write_prefix_sum, write_sparse_cube,
};
