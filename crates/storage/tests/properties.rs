//! Property tests for the storage format: lossless round-trips for
//! arbitrary artifacts, and no panics on arbitrarily corrupted bytes.

use olap_array::{DenseArray, Shape};
use olap_prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_range_max::NaturalMaxTree;
use olap_storage as storage;
use proptest::prelude::*;

fn arb_cube() -> impl Strategy<Value = DenseArray<i64>> {
    prop::collection::vec(1usize..6, 1..=4).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1_000_000_000_000i64..1_000_000_000_000, len)
            .prop_map(move |data| DenseArray::from_vec(Shape::new(&dims).unwrap(), data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn dense_roundtrip_lossless(a in arb_cube()) {
        let mut buf = Vec::new();
        storage::write_dense_i64(&mut buf, &a).unwrap();
        let back = storage::read_dense_i64(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.shape(), a.shape());
        prop_assert_eq!(back.as_slice(), a.as_slice());
    }

    #[test]
    fn prefix_roundtrip_lossless(a in arb_cube()) {
        let ps = PrefixSumCube::build(&a);
        let mut buf = Vec::new();
        storage::write_prefix_sum(&mut buf, &ps).unwrap();
        let back = storage::read_prefix_sum(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.prefix_array().as_slice(), ps.prefix_array().as_slice());
    }

    #[test]
    fn blocked_roundtrip_lossless((a, b) in (arb_cube(), 1usize..5)) {
        let bp = BlockedPrefixCube::build(&a, b).unwrap();
        let mut buf = Vec::new();
        storage::write_blocked_prefix(&mut buf, &bp).unwrap();
        let back = storage::read_blocked_prefix(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.block_size(), b);
        prop_assert_eq!(back.packed_array().as_slice(), bp.packed_array().as_slice());
    }

    #[test]
    fn max_tree_roundtrip_preserves_answers((a, b) in (arb_cube(), 2usize..4)) {
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        let mut buf = Vec::new();
        storage::write_max_tree(&mut buf, &t).unwrap();
        let back = storage::read_max_tree(&mut buf.as_slice()).unwrap();
        prop_assert!(back.check_invariants(&a).is_ok());
        let q = a.shape().full_region();
        prop_assert_eq!(
            back.range_max(&a, &q).unwrap().1,
            t.range_max(&a, &q).unwrap().1
        );
    }

    #[test]
    fn truncation_never_panics((a, cut) in (arb_cube(), 0usize..200)) {
        let mut buf = Vec::new();
        storage::write_dense_i64(&mut buf, &a).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let slice = &buf[..cut];
        // Any truncation is an error, never a panic or a success.
        prop_assert!(storage::read_dense_i64(&mut &slice[..]).is_err());
    }

    #[test]
    fn byte_flips_never_panic(
        (a, pos, delta) in (arb_cube(), 0usize..10_000, 1u8..=255)
    ) {
        let mut buf = Vec::new();
        storage::write_max_tree(
            &mut buf,
            &NaturalMaxTree::for_values(&a, 2).unwrap(),
        )
        .unwrap();
        let pos = pos % buf.len();
        buf[pos] ^= delta;
        // Readers must terminate without panicking; success is allowed
        // only when the flipped byte did not matter structurally, in which
        // case the artifact must still validate internally.
        if let Ok(t) = storage::read_max_tree(&mut buf.as_slice()) {
            // Structural invariants (shapes, index bounds) must still hold
            // even if values were silently altered.
            let _ = t.export_levels();
        }
    }
}
