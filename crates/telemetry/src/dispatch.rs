//! Global and scoped telemetry contexts, and the one-atomic-load fast
//! path instrumented code relies on.
//!
//! A [`Telemetry`] context bundles a [`Registry`], a [`FlightRecorder`],
//! and an optional [`Subscriber`]. Instrumented call sites ask
//! [`current`] for the active context:
//!
//! - if **no** context is active anywhere in the process, [`current`] is a
//!   single relaxed atomic load returning `None` — the disabled cost the
//!   acceptance bench pins,
//! - a context entered with [`with_scope`] (thread-local, innermost wins)
//!   takes precedence,
//! - otherwise the process-wide context installed by [`enable_global`]
//!   answers.
//!
//! Scoped contexts are how tests and the CLI isolate a workload's metrics
//! from everything else running in the process.

use crate::flight::FlightRecorder;
use crate::registry::Registry;
use crate::span::Subscriber;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A bundle of telemetry sinks: metric registry, flight recorder, and an
/// optional span subscriber.
#[derive(Default)]
pub struct Telemetry {
    registry: Registry,
    recorder: FlightRecorder,
    subscriber: Mutex<Option<Arc<dyn Subscriber>>>,
}

impl Telemetry {
    /// A fresh context with an empty registry and a default-capacity
    /// flight recorder.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// A fresh context whose flight recorder keeps the last `capacity`
    /// records.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Telemetry {
            registry: Registry::new(),
            recorder: FlightRecorder::with_capacity(capacity),
            subscriber: Mutex::new(None),
        }
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Installs a span subscriber (replacing any previous one).
    pub fn set_subscriber(&self, s: Arc<dyn Subscriber>) {
        *self.subscriber.lock().expect("subscriber lock") = Some(s);
    }

    /// The current span subscriber, if any.
    pub fn subscriber(&self) -> Option<Arc<dyn Subscriber>> {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop the subscriber")
        self.subscriber.lock().expect("subscriber lock").clone()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.registry.len())
            .field("flight_records", &self.recorder.len())
            .finish()
    }
}

/// Number of active contexts (global counts as one). Zero ⇒ the fast
/// path: instrumentation is a single load of this atomic.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether the global context is currently enabled.
static GLOBAL_ON: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();

thread_local! {
    static SCOPES: RefCell<Vec<Arc<Telemetry>>> = const { RefCell::new(Vec::new()) };
}

/// Whether any telemetry context is active anywhere in the process. One
/// relaxed atomic load; instrumentation's fast path.
#[inline]
pub fn enabled() -> bool {
    // ordering: Relaxed — ACTIVE is a hint, not a publication channel.
    // The context data itself is published by OnceLock (global) or a
    // thread-local (scoped); a stale zero here only delays the first
    // recording by one query, which the protocol tolerates.
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The process-wide telemetry context (created lazily; recording to it is
/// a no-op for instrumented code until [`enable_global`]).
pub fn global() -> Arc<Telemetry> {
    GLOBAL.get_or_init(|| Arc::new(Telemetry::new())).clone()
}

/// Turns on the process-wide context: every instrumented call site starts
/// recording into [`global`]'s registry and flight recorder.
pub fn enable_global() {
    // ordering: AcqRel — the swap is the sole arbiter of the off→on
    // transition (exactly one caller wins and bumps ACTIVE); AcqRel
    // pairs it with the mirror swap in `disable_global`. The Telemetry
    // value itself is published by the OnceLock inside `global()`, so
    // no SeqCst fence is needed — there is no second independent atomic
    // whose order relative to this one matters.
    if !GLOBAL_ON.swap(true, Ordering::AcqRel) {
        let _ = global(); // materialize before the first hot-path lookup
                          // ordering: Relaxed — pure counter feeding the `enabled()` hint;
                          // see the justification there.
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Turns the process-wide context back off (scoped contexts are
/// unaffected). The registry contents are kept.
pub fn disable_global() {
    // ordering: AcqRel — mirror of the swap in `enable_global`; exactly
    // one caller observes on→off and decrements ACTIVE.
    if GLOBAL_ON.swap(false, Ordering::AcqRel) {
        // ordering: Relaxed — counter hint only; see `enabled()`.
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
        // ordering: Relaxed — counter hint only (see `enabled()`); the
        // scope stack itself is thread-local, so no cross-thread data
        // hangs off this decrement.
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs `f` with `ctx` installed as the current thread's telemetry
/// context. Nestable (innermost wins); unwound correctly on panic.
///
/// Worker threads spawned inside `f` do **not** inherit the scope
/// automatically — executors that fan out must capture [`current`] and
/// re-enter it per worker (as `olap_array::exec` does).
pub fn with_scope<R>(ctx: &Arc<Telemetry>, f: impl FnOnce() -> R) -> R {
    SCOPES.with(|s| s.borrow_mut().push(ctx.clone()));
    // ordering: Relaxed — counter hint only (see `enabled()`); the
    // pushed context is visible to `current()` through the thread-local
    // SCOPES, never through this atomic.
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let _guard = ScopeGuard;
    f()
}

/// The active telemetry context for this thread: the innermost
/// [`with_scope`] context, else the global context when enabled, else
/// `None`. When nothing is active anywhere this is one atomic load.
#[inline]
pub fn current() -> Option<Arc<Telemetry>> {
    if !enabled() {
        return None;
    }
    current_slow()
}

#[inline(never)]
fn current_slow() -> Option<Arc<Telemetry>> {
    let local = SCOPES.with(|s| s.borrow().last().cloned());
    if local.is_some() {
        return local;
    }
    // ordering: Relaxed — `global()` synchronizes through its OnceLock,
    // so this load only decides *whether* to consult it; a stale answer
    // is a missed (or spurious but harmless) lookup, not a data race.
    if GLOBAL_ON.load(Ordering::Relaxed) {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-global ACTIVE counter with every
    // other test in this binary, so they only assert on *scoped* state
    // and on relative transitions, never on absolute disabled-ness.

    #[test]
    fn scoped_context_wins_and_unwinds() {
        let a = Arc::new(Telemetry::new());
        let b = Arc::new(Telemetry::new());
        with_scope(&a, || {
            a.registry().counter("outer", &[]).inc(1);
            let cur = current().expect("scope active");
            cur.registry().counter("via_current", &[]).inc(1);
            with_scope(&b, || {
                let cur = current().expect("scope active");
                cur.registry().counter("inner", &[]).inc(1);
            });
            // Back to the outer scope after the inner one ends.
            let cur = current().expect("scope active");
            cur.registry().counter("outer_again", &[]).inc(1);
        });
        assert_eq!(a.registry().counter("outer", &[]).get(), 1);
        assert_eq!(a.registry().counter("via_current", &[]).get(), 1);
        assert_eq!(a.registry().counter("outer_again", &[]).get(), 1);
        assert_eq!(b.registry().counter("inner", &[]).get(), 1);
        // Nothing leaked across contexts.
        assert_eq!(a.registry().counter("inner", &[]).get(), 0);
    }

    #[test]
    fn scope_survives_panic() {
        let a = Arc::new(Telemetry::new());
        let before = ACTIVE.load(Ordering::SeqCst);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_scope(&a, || panic!("boom"));
        }));
        assert!(r.is_err());
        assert_eq!(ACTIVE.load(Ordering::SeqCst), before, "scope not popped");
    }

    #[test]
    fn scopes_are_thread_local() {
        let a = Arc::new(Telemetry::new());
        with_scope(&a, || {
            let handle = std::thread::spawn(|| {
                // The spawned thread has no scoped context; with the
                // global context off it may still see `None` even though
                // ACTIVE is nonzero because of our scope.
                SCOPES.with(|s| s.borrow().len())
            });
            assert_eq!(handle.join().unwrap(), 0);
        });
    }

    #[test]
    fn global_roundtrip() {
        // Serialise with a local lock so parallel tests in this module
        // don't interleave global enable/disable.
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        enable_global();
        assert!(enabled());
        let ctx = current().expect("global active");
        ctx.registry().counter("global_hits", &[]).inc(1);
        assert!(global().registry().counter("global_hits", &[]).get() >= 1);
        disable_global();
        // Double disable is harmless.
        disable_global();
        enable_global();
        disable_global();
    }
}
