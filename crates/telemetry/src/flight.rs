//! The query flight recorder: a fixed-capacity ring buffer of the last N
//! query outcomes and route decisions.
//!
//! Each [`FlightRecord`] captures one routed query end to end: which
//! operation, which engine answered, what the cost model predicted (raw
//! and calibrated), what was observed (total and per access class), and
//! how long it took. The recorder is the post-hoc debugging view the
//! registry's aggregates can't give — "what were the last 64 decisions
//! and were any of them mispredicted?" — and benches assert on it
//! programmatically via [`FlightRecorder::snapshot`].

use crate::json_escape;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default number of records kept by a fresh recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One routed query's record.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecord {
    /// Monotone sequence number assigned by the recorder (0-based over
    /// the recorder's lifetime, so gaps reveal evicted records).
    pub seq: u64,
    /// Operation name (`range_sum`, `range_max`, …).
    pub op: &'static str,
    /// Label of the engine that answered.
    pub engine: String,
    /// The structure that answered (`EngineKind` display form).
    pub kind: String,
    /// Raw analytic estimate at decision time (paper units).
    pub raw: f64,
    /// Calibrated prediction (`raw × EWMA ratio`) the router compared.
    pub predicted: f64,
    /// Observed total accesses (the §8 cost).
    pub observed: u64,
    /// Cells of the base cube `A` read.
    pub a_cells: u64,
    /// Precomputed cells read.
    pub p_cells: u64,
    /// Tree nodes visited.
    pub tree_nodes: u64,
    /// Wall time of the engine call, in nanoseconds.
    pub latency_ns: u64,
    /// How the semantic cache was involved: `"exact"` (served from a
    /// cached entry), `"assembled"` (±-assembled from a super-region),
    /// `"miss"` (cache consulted, backend answered), or `"bypass"` (no
    /// cache on the path). See [`CacheOutcomeScope`].
    pub cache: &'static str,
}

impl FlightRecord {
    /// `observed / predicted` — the misprediction factor (1.0 is a
    /// perfect calibrated prediction). `None` when the prediction was
    /// non-positive or non-finite.
    pub fn misprediction(&self) -> Option<f64> {
        (self.predicted.is_finite() && self.predicted > 0.0)
            .then(|| self.observed as f64 / self.predicted)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"op\": \"{}\", \"engine\": \"{}\", \"kind\": \"{}\", \
             \"cache\": \"{}\", \
             \"raw\": {}, \"predicted\": {}, \"observed\": {}, \
             \"a_cells\": {}, \"p_cells\": {}, \"tree_nodes\": {}, \"latency_ns\": {}}}",
            self.seq,
            json_escape(self.op),
            json_escape(&self.engine),
            json_escape(&self.kind),
            json_escape(self.cache),
            json_number(self.raw),
            json_number(self.predicted),
            self.observed,
            self.a_cells,
            self.p_cells,
            self.tree_nodes,
            self.latency_ns,
        )
    }
}

thread_local! {
    static CACHE_OUTCOME: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// The cache-outcome annotation in effect on the current thread, `None`
/// outside any [`CacheOutcomeScope`]. Consumers building a
/// [`FlightRecord`] downstream of a cache (the router) read it with
/// `cache_outcome().unwrap_or("bypass")`.
pub fn cache_outcome() -> Option<&'static str> {
    CACHE_OUTCOME.with(Cell::get)
}

/// Annotates the current thread with a cache outcome for the duration of
/// a backend call, so a [`FlightRecord`] built *under* the cache (by the
/// router, several frames down) can say how the cache was involved.
/// Nestable — the innermost scope wins and the previous annotation is
/// restored on drop (panic-safe).
#[derive(Debug)]
pub struct CacheOutcomeScope {
    prev: Option<&'static str>,
}

impl CacheOutcomeScope {
    /// Installs `outcome` (`"exact"`, `"assembled"`, `"miss"`, …) as the
    /// thread's annotation until the guard drops.
    pub fn set(outcome: &'static str) -> CacheOutcomeScope {
        CacheOutcomeScope {
            prev: CACHE_OUTCOME.with(|c| c.replace(Some(outcome))),
        }
    }
}

impl Drop for CacheOutcomeScope {
    fn drop(&mut self) {
        CACHE_OUTCOME.with(|c| c.set(self.prev));
    }
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A thread-safe ring buffer of the last N [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next_seq: u64,
    records: VecDeque<FlightRecord>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum number of records kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn ring buffer")
        self.inner.lock().expect("flight lock").records.len()
    }

    /// Whether no record has been kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight lock").next_seq
    }

    /// Appends a record, evicting the oldest at capacity. The record's
    /// `seq` is overwritten with the recorder's next sequence number.
    pub fn record(&self, mut record: FlightRecord) {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn ring buffer")
        let mut inner = self.inner.lock().expect("flight lock");
        record.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.inner
            .lock()
            // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn ring buffer")
            .expect("flight lock")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Drops every retained record (sequence numbers keep counting).
    pub fn clear(&self) {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn ring buffer")
        self.inner.lock().expect("flight lock").records.clear();
    }

    /// The retained records as a JSON array, oldest first.
    pub fn to_json(&self) -> String {
        let records = self.snapshot();
        let mut out = String::from("[\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "" } else { "," };
            out.push_str(&format!("  {}{sep}\n", r.to_json()));
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(engine: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            op: "range_sum",
            engine: engine.to_string(),
            kind: "basic prefix sum (§3)".to_string(),
            raw: 4.0,
            predicted: 4.2,
            observed: 4,
            a_cells: 0,
            p_cells: 4,
            tree_nodes: 0,
            latency_ns: 1200,
            cache: "bypass",
        }
    }

    #[test]
    fn ring_evicts_oldest_and_sequences() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            rec.record(record(&format!("e{i}")));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        let snap = rec.snapshot();
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(snap[0].engine, "e2");
        assert_eq!(snap[2].engine, "e4");
    }

    #[test]
    fn misprediction_factor() {
        let mut r = record("x");
        assert!((r.misprediction().unwrap() - 4.0 / 4.2).abs() < 1e-12);
        r.predicted = f64::INFINITY;
        assert_eq!(r.misprediction(), None);
        r.predicted = 0.0;
        assert_eq!(r.misprediction(), None);
    }

    #[test]
    fn json_dump_shape() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(record("naive-scan"));
        rec.record(FlightRecord {
            raw: f64::INFINITY,
            ..record("cube-index(blocked b=8)")
        });
        let json = rec.to_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.contains("\"engine\": \"naive-scan\""), "{json}");
        assert!(json.contains("\"raw\": null"), "{json}");
        assert!(json.contains("\"observed\": 4"), "{json}");
        assert!(json.contains("\"seq\": 1"), "{json}");
        assert!(json.contains("\"cache\": \"bypass\""), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn cache_outcome_scope_nests_and_restores() {
        assert_eq!(cache_outcome(), None);
        {
            let _miss = CacheOutcomeScope::set("miss");
            assert_eq!(cache_outcome(), Some("miss"));
            {
                let _assembled = CacheOutcomeScope::set("assembled");
                assert_eq!(cache_outcome(), Some("assembled"));
            }
            assert_eq!(cache_outcome(), Some("miss"));
        }
        assert_eq!(cache_outcome(), None);
        // Restored even when the scope unwinds.
        let r = std::panic::catch_unwind(|| {
            let _g = CacheOutcomeScope::set("exact");
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(cache_outcome(), None);
    }

    #[test]
    fn clear_keeps_sequencing() {
        let rec = FlightRecorder::with_capacity(2);
        rec.record(record("a"));
        rec.clear();
        assert!(rec.is_empty());
        rec.record(record("b"));
        assert_eq!(rec.snapshot()[0].seq, 1);
        assert_eq!(rec.capacity(), 2);
    }
}
