//! Zero-dependency structured telemetry for the OLAP cube workspace.
//!
//! The paper's whole argument is a cost ledger — cell accesses per query
//! (`2^d` vs `3^d` regions, Theorem 3's node bound) — and every engine
//! already *measures* it one query at a time via `AccessStats`. This crate
//! is the persistence layer for those measurements at workload scale:
//!
//! - [`Registry`]: a thread-safe registry of named, labelled [`Counter`]s,
//!   [`Gauge`]s, and log2-bucketed [`Histogram`]s, renderable as
//!   Prometheus-style text or JSON,
//! - [`span!`] / [`Subscriber`]: a lightweight span API timing named code
//!   sections with static fields,
//! - [`FlightRecorder`]: a fixed-capacity ring buffer of the last N query
//!   outcomes + route decisions ([`FlightRecord`]), dumpable as JSON,
//! - [`TraceSpan`] / [`TraceSink`]: end-to-end per-query tracing — span
//!   trees propagated by value across queues and threads, exportable as
//!   Chrome trace-event JSON (see the `trace` module docs),
//! - [`Telemetry`] + the dispatch layer ([`current`], [`with_scope`],
//!   [`enable_global`]): instrumented call sites ask for the current
//!   telemetry context; when none is installed anywhere the check is a
//!   single relaxed atomic load, so instrumentation in hot paths is free
//!   by default.
//!
//! # Cost model of the instrumentation itself
//!
//! Instrumentation sites follow the pattern
//!
//! ```
//! if let Some(ctx) = olap_telemetry::current() {
//!     ctx.registry().counter("queries_total", &[]).inc(1);
//! }
//! ```
//!
//! [`current`] first loads one global atomic; with telemetry disabled
//! (the default) it returns `None` immediately — no allocation, no lock,
//! no thread-local touch. Only when a context is active (globally via
//! [`enable_global`], or scoped via [`with_scope`]) does the full lookup
//! run.
//!
//! # Scoping and determinism
//!
//! [`with_scope`] installs a context for the duration of a closure on the
//! current thread. Executors that fan work out to worker threads re-enter
//! the captured context in each worker (see `olap-array`'s `exec`), so a
//! scoped workload's metrics land in the scoped registry, isolated from
//! every other thread — which is what makes registry contents testable
//! under concurrency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
mod flight;
mod registry;
mod span;
mod trace;

pub use dispatch::{
    current, disable_global, enable_global, enabled, global, with_scope, Telemetry,
};
pub use flight::{
    cache_outcome, CacheOutcomeScope, FlightRecord, FlightRecorder, DEFAULT_FLIGHT_CAPACITY,
};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Registry,
};
pub use span::{CollectingSubscriber, SpanTimer, Subscriber};
pub use trace::{
    current_trace, tracing_active, EnteredTrace, PendingSpan, SlowTrace, SpanId, SpanRecord,
    SpanTree, TraceContext, TraceHandle, TraceId, TraceSink, TraceSpan, DEFAULT_SLOW_RING_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
