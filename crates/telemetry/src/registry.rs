//! The metric registry: named, labelled counters, gauges, and
//! log2-bucketed histograms behind atomics.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! recording is lock-free. Registration (name + sorted label set → handle)
//! takes a mutex, so callers on hot paths should either cache handles or
//! accept one short critical section per recording — both are fine at
//! query granularity.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: bucket 0 holds zeros, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b - 1]`, bucket 64 holds the top of the u64
/// range.
const BUCKETS: usize = 65;

/// A monotone counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (saturating).
    pub fn inc(&self, n: u64) {
        // fetch_update to saturate instead of wrapping on overflow.
        let _ = self
            .0
            // ordering: Relaxed — statistical counter; readers only
            // report its value, no data is published through it.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — reporting read of a statistical counter.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        // ordering: Relaxed — last-writer-wins gauge; the stored bits
        // are self-contained, nothing else is published alongside them.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — reporting read of a self-contained gauge.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A histogram over `u64` samples with log2 buckets.
///
/// Designed for the workspace's two sample kinds — element accesses per
/// query and nanosecond latencies — where order of magnitude is the
/// interesting resolution.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        // ordering: Relaxed — bucket/count/sum are statistical cells; a
        // snapshot racing an observe may see the sample in one cell and
        // not another, which reporting tolerates by design.
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — see above; same statistical protocol.
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum so pathological accumulations pin instead of wrap.
        let _ = self
            .0
            .sum
            // ordering: Relaxed — see above; same statistical protocol.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — reporting read; see `observe`.
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — reporting read; see `observe`.
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (b, cell) in self.0.buckets.iter().enumerate() {
            // ordering: Relaxed — snapshot read; buckets may be mid-update
            // and the protocol tolerates the skew (see `observe`).
            let n = cell.load(Ordering::Relaxed);
            if n > 0 {
                let le = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                buckets.push((le, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, samples in bucket)`,
    /// in increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest bucket upper bound covering quantile `q` (clamped to
    /// `[0, 1]`): the first bound whose cumulative sample count reaches
    /// `⌈q·count⌉`. Resolution is the log2 bucket width — the true
    /// quantile lies somewhere inside the returned bucket. 0 with no
    /// samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(le, n) in &self.buckets {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return le;
            }
        }
        // A racing observe can make `count` run ahead of the bucket
        // cells; answer with the largest populated bound.
        self.buckets.last().map_or(0, |&(le, _)| le)
    }
}

/// A metric's current value in a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One registered metric's identity and current value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name, e.g. `olap_engine_queries_total`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A thread-safe collection of metrics. Cloning shares the underlying
/// storage; a fresh registry starts empty.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<MetricKey, Metric>>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name` with the given labels, registering it on
    /// first use.
    ///
    /// # Panics
    /// If the same name + labels were registered as a different type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop metrics")
        let mut map = self.metrics.lock().expect("registry lock");
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))));
        match entry {
            Metric::Counter(c) => c.clone(),
            // analyzer: allow(panic-site, reason = "metric type mismatch is a programming error in the instrumentation itself; documented under # Panics")
            other => panic!("{name} already registered as {other:?}, not a counter"),
        }
    }

    /// The gauge named `name` with the given labels, registering it on
    /// first use.
    ///
    /// # Panics
    /// If the same name + labels were registered as a different type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop metrics")
        let mut map = self.metrics.lock().expect("registry lock");
        let entry = map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))));
        match entry {
            Metric::Gauge(g) => g.clone(),
            // analyzer: allow(panic-site, reason = "metric type mismatch is a programming error in the instrumentation itself; documented under # Panics")
            other => panic!("{name} already registered as {other:?}, not a gauge"),
        }
    }

    /// The histogram named `name` with the given labels, registering it on
    /// first use.
    ///
    /// # Panics
    /// If the same name + labels were registered as a different type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop metrics")
        let mut map = self.metrics.lock().expect("registry lock");
        let entry = map.entry(key(name, labels)).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            // analyzer: allow(panic-site, reason = "metric type mismatch is a programming error in the instrumentation itself; documented under # Panics")
            other => panic!("{name} already registered as {other:?}, not a histogram"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop metrics")
        self.metrics.lock().expect("registry lock").len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of every metric, in deterministic
    /// (name, labels) order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently drop metrics")
        let map = self.metrics.lock().expect("registry lock");
        map.iter()
            .map(|(k, m)| MetricSnapshot {
                name: k.name.clone(),
                labels: k.labels.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders the registry in Prometheus text exposition style, with a
    /// `# HELP` / `# TYPE` comment pair per metric family (snapshots are
    /// name-sorted, so each family renders contiguously).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut family = String::new();
        for m in self.snapshot() {
            if m.name != family {
                family.clone_from(&m.name);
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", m.name, metric_help(&m.name)));
                out.push_str(&format!("# TYPE {} {kind}\n", m.name));
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, prom_labels(&m.labels, &[])));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, prom_labels(&m.labels, &[])));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0;
                    for &(le, n) in &h.buckets {
                        cumulative += n;
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            m.name,
                            prom_labels(&m.labels, &[("le", &le.to_string())])
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        prom_labels(&m.labels, &[("le", "+Inf")]),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        prom_labels(&m.labels, &[]),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        prom_labels(&m.labels, &[]),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON array of metric objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        let snaps = self.snapshot();
        for (i, m) in snaps.iter().enumerate() {
            let labels: Vec<String> = m
                .labels
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\": \"{}\"",
                        crate::json_escape(k),
                        crate::json_escape(v)
                    )
                })
                .collect();
            let value = match &m.value {
                MetricValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                MetricValue::Gauge(v) => {
                    let v = if v.is_finite() {
                        format!("{v}")
                    } else {
                        "null".to_string()
                    };
                    format!("\"type\": \"gauge\", \"value\": {v}")
                }
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .map(|&(le, n)| format!("[{le}, {n}]"))
                        .collect();
                    format!(
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [{}]",
                        h.count,
                        h.sum,
                        h.mean(),
                        buckets.join(", ")
                    )
                }
            };
            let sep = if i + 1 == snaps.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"labels\": {{{}}}, {value}}}{sep}\n",
                crate::json_escape(&m.name),
                labels.join(", ")
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// One-line `# HELP` text per metric family. The workspace's well-known
/// families get real descriptions; anything else a generic line, so the
/// exposition stays spec-shaped for names registered at runtime.
fn metric_help(name: &str) -> &'static str {
    match name {
        "olap_span_nanos" => "Wall time per completed span, by span name, in nanoseconds.",
        "olap_serve_latency_ns" => "End-to-end query latency observed at fan-out, per shard.",
        "olap_serve_latency_p50_ns" => {
            "Per-shard p50 latency extracted from olap_serve_latency_ns."
        }
        "olap_serve_latency_p95_ns" => {
            "Per-shard p95 latency extracted from olap_serve_latency_ns."
        }
        "olap_serve_latency_p99_ns" => {
            "Per-shard p99 latency extracted from olap_serve_latency_ns."
        }
        "olap_shard_queue_depth" => "Jobs queued to a shard worker and not yet answered.",
        "olap_snapshot_live" => "Live engine snapshot versions not yet reclaimed.",
        "olap_snapshot_epoch_lag" => "Oldest pinned epoch's distance behind the newest install.",
        "olap_cache_hits_total" => "Semantic-cache exact hits.",
        "olap_cache_misses_total" => "Semantic-cache misses answered by the backend.",
        "olap_cache_assemblies_total" => "Semantic-cache answers assembled from a super-region.",
        "olap_cache_invalidations_total" => "Semantic-cache entries invalidated by updates.",
        "olap_cache_entries" => "Semantic-cache entries currently resident.",
        _ => "OLAP workspace metric.",
    }
}

fn prom_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|&(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))),
    );
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        let c = r.counter("queries_total", &[("engine", "naive")]);
        c.inc(3);
        r.counter("queries_total", &[("engine", "naive")]).inc(2);
        assert_eq!(c.get(), 5);
        // A different label set is a different series.
        r.counter("queries_total", &[("engine", "prefix")]).inc(1);
        let g = r.gauge("ratio", &[]);
        g.set(1.25);
        assert_eq!(r.gauge("ratio", &[]).get(), 1.25);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn counter_saturates() {
        let r = Registry::new();
        let c = r.counter("big", &[]);
        c.inc(u64::MAX - 1);
        c.inc(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let r = Registry::new();
        let h = r.histogram("accesses", &[]);
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        let snap = h.snapshot();
        // Buckets: le=0 (one 0), le=1 (one 1), le=3 (2,3), le=7 (4,7),
        // le=15 (8), le=1023 (1000).
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (1023, 1)]
        );
        assert!((snap.mean() - 1025.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn prometheus_render_shape() {
        let r = Registry::new();
        r.counter("q_total", &[("engine", "naive")]).inc(7);
        r.gauge("ratio", &[]).set(0.5);
        r.histogram("lat", &[]).observe(3);
        let text = r.render_prometheus();
        assert!(text.contains("q_total{engine=\"naive\"} 7"), "{text}");
        assert!(text.contains("ratio 0.5"), "{text}");
        assert!(text.contains("lat_bucket{le=\"3\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_sum 3"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
        // One HELP/TYPE pair per family, ahead of its samples.
        assert!(text.contains("# HELP q_total "), "{text}");
        assert!(text.contains("# TYPE q_total counter"), "{text}");
        assert!(text.contains("# TYPE ratio gauge"), "{text}");
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        let type_line = text.find("# TYPE lat histogram").expect("type line");
        let first_sample = text.find("lat_bucket").expect("sample line");
        assert!(type_line < first_sample, "comments precede samples: {text}");
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let r = Registry::new();
        r.counter("q_total", &[("engine", "naive")]).inc(1);
        r.counter("q_total", &[("engine", "prefix")]).inc(1);
        r.counter("olap_cache_hits_total", &[]).inc(1);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE q_total counter").count(), 1, "{text}");
        assert_eq!(text.matches("# HELP q_total ").count(), 1, "{text}");
        // Well-known families get real help text, not the fallback.
        assert!(
            text.contains("# HELP olap_cache_hits_total Semantic-cache exact hits."),
            "{text}"
        );
    }

    #[test]
    fn histogram_quantiles_at_log2_resolution() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        for _ in 0..98 {
            h.observe(100); // bucket le=127
        }
        h.observe(5_000); // bucket le=8191
        h.observe(70_000); // bucket le=131071
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 127);
        assert_eq!(snap.quantile(0.98), 127);
        assert_eq!(snap.quantile(0.99), 8_191);
        assert_eq!(snap.quantile(1.0), 131_071);
        assert_eq!(snap.quantile(0.0), 127, "rank clamps to the first sample");
        let empty = r.histogram("none", &[]).snapshot();
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn json_render_is_parseable_shape() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).inc(1);
        r.histogram("h", &[]).observe(9);
        let json = r.render_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.contains("\"name\": \"c\""), "{json}");
        assert!(json.contains("\"k\": \"v\""), "{json}");
        assert!(json.contains("\"type\": \"histogram\""), "{json}");
        assert!(json.contains("\"buckets\": [[15, 1]]"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn snapshot_is_deterministic_and_labelled() {
        let r = Registry::new();
        r.counter("b", &[]).inc(1);
        r.counter("a", &[("x", "2")]).inc(2);
        r.counter("a", &[("x", "1")]).inc(3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "a", "b"]);
        assert_eq!(snap[0].label("x"), Some("1"));
        assert_eq!(snap[1].label("x"), Some("2"));
        assert_eq!(snap[0].value, MetricValue::Counter(3));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        r.counter("x", &[]).inc(1);
        r.gauge("x", &[]);
    }

    #[test]
    fn shared_storage_across_clones() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("n", &[]).inc(4);
        assert_eq!(r2.counter("n", &[]).get(), 4);
    }
}
