//! The span API: time a named section of code, with static numeric
//! fields, through the current telemetry context.
//!
//! [`span!`](crate::span!) is the entry point:
//!
//! ```
//! fn answer(dims: usize) {
//!     let _span = olap_telemetry::span!("range_sum", dims = dims);
//!     // ... work ...
//! } // on drop: histogram `olap_span_nanos{span="range_sum"}` + subscriber
//! ```
//!
//! With no active context ([`crate::current`] returns `None`) starting a
//! span is one atomic load and the guard is inert. With a context, the
//! drop records the elapsed nanoseconds into the context registry's
//! `olap_span_nanos{span=NAME}` histogram and forwards to the context's
//! [`Subscriber`], if any.

use crate::dispatch::{current, Telemetry};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receives completed spans. Implementations must be cheap and
/// non-blocking — they run inline at the instrumentation point.
pub trait Subscriber: Send + Sync {
    /// Called once per completed span with its static fields and elapsed
    /// wall time in nanoseconds.
    fn record_span(&self, name: &'static str, fields: &[(&'static str, f64)], nanos: u64);
}

/// A completed span as buffered by [`CollectingSubscriber`]:
/// `(name, fields, nanos)`.
pub type CollectedSpan = (&'static str, Vec<(&'static str, f64)>, u64);

/// A subscriber that buffers every span — for tests and debugging.
#[derive(Default)]
pub struct CollectingSubscriber {
    spans: Mutex<Vec<CollectedSpan>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSubscriber::default()
    }

    /// The spans recorded so far as `(name, fields, nanos)`.
    pub fn spans(&self) -> Vec<CollectedSpan> {
        self.spans.lock().expect("spans lock").clone()
    }
}

impl Subscriber for CollectingSubscriber {
    fn record_span(&self, name: &'static str, fields: &[(&'static str, f64)], nanos: u64) {
        self.spans
            .lock()
            // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than drop recorded spans")
            .expect("spans lock")
            .push((name, fields.to_vec(), nanos));
    }
}

/// An active span; records on drop. Construct with [`crate::span!`] or
/// [`SpanTimer::start`].
pub struct SpanTimer {
    state: Option<SpanState>,
}

struct SpanState {
    name: &'static str,
    fields: Vec<(&'static str, f64)>,
    start: Instant,
    ctx: Arc<Telemetry>,
}

impl SpanTimer {
    /// Starts a span against the current telemetry context; inert when no
    /// context is active.
    pub fn start(name: &'static str, fields: &[(&'static str, f64)]) -> SpanTimer {
        let state = current().map(|ctx| SpanState {
            name,
            fields: fields.to_vec(),
            start: Instant::now(),
            ctx,
        });
        SpanTimer { state }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let nanos = state.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        state
            .ctx
            .registry()
            .histogram("olap_span_nanos", &[("span", state.name)])
            .observe(nanos);
        if let Some(sub) = state.ctx.subscriber() {
            sub.record_span(state.name, &state.fields, nanos);
        }
    }
}

/// Starts a [`SpanTimer`] named by a string literal, with optional
/// `key = numeric_value` fields (values are converted with `as f64`).
///
/// ```
/// let d = 3usize;
/// let _span = olap_telemetry::span!("range_sum", dims = d);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::SpanTimer::start($name, &[$((stringify!($key), ($value) as f64)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_scope;

    #[test]
    fn inert_without_context() {
        let span = span!("nothing", k = 1);
        assert!(!span.is_recording());
    }

    #[test]
    fn records_histogram_and_subscriber() {
        let ctx = Arc::new(Telemetry::new());
        let sub = Arc::new(CollectingSubscriber::new());
        ctx.set_subscriber(sub.clone());
        with_scope(&ctx, || {
            let span = span!("range_sum", dims = 2, volume = 100);
            assert!(span.is_recording());
            drop(span);
            // A second span of the same name lands in the same series.
            drop(span!("range_sum", dims = 3, volume = 10));
        });
        let h = ctx
            .registry()
            .histogram("olap_span_nanos", &[("span", "range_sum")]);
        assert_eq!(h.count(), 2);
        let spans = sub.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "range_sum");
        assert_eq!(spans[0].1, vec![("dims", 2.0), ("volume", 100.0)]);
        assert_eq!(spans[1].1[0], ("dims", 3.0));
    }

    #[test]
    fn fieldless_span() {
        let ctx = Arc::new(Telemetry::new());
        with_scope(&ctx, || drop(span!("bare")));
        assert_eq!(
            ctx.registry()
                .histogram("olap_span_nanos", &[("span", "bare")])
                .count(),
            1
        );
    }
}
