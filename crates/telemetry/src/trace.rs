//! End-to-end query tracing: per-query span trees across threads.
//!
//! The registry's aggregates answer "how slow is the p99?"; this module
//! answers "where did *this* query spend its time?". A query is traced as
//! a tree of named spans rooted at the serving entry point:
//!
//! ```text
//! serve_query
//! ├─ queue_wait        (submit → shard worker pickup, crosses the mpsc)
//! ├─ shard_exec
//! │  ├─ cache_lookup
//! │  ├─ cache_assembly (only when the semantic cache ±-assembles)
//! │  └─ router_dispatch
//! │     └─ kernel_exec
//! └─ merge             (fan-out partial combine)
//! ```
//!
//! The design mirrors the dispatch layer's cost model: when no trace
//! scope is entered on the current thread, [`TraceSpan::start`] is a
//! single thread-local read returning an inert guard — cheaper than the
//! dispatch layer's relaxed atomic load, and free of shared-cache-line
//! traffic. A trace is started with [`TraceSpan::root`] against a
//! [`TraceSink`]; the root installs a thread-local scope frame (trace
//! id, current span id, and sink), and nested [`TraceSpan::start`] calls
//! parent themselves under it automatically *without* touching any
//! cross-thread state: a child span borrows the sink from the enclosing
//! frame, so the recording fast path performs no reference-count or
//! shared-counter writes. Two explicit propagation primitives cross
//! threads:
//!
//! - [`PendingSpan`] carries the context *by value* through a queue (the
//!   `CubeServer` job envelope): started on the submitting thread, its
//!   [`PendingSpan::finish_and_enter`] on the receiving thread records the
//!   elapsed time as its own span (queue wait) and re-enters the trace
//!   there, so worker-side spans join the same tree;
//! - [`TraceHandle::enter`] re-enters a captured context in a fan-out
//!   worker (as `olap_array::exec` does for the telemetry scope).
//!
//! Completed spans land in the sink — a bounded store (drop-counted at
//! capacity, never reallocating past it) with a slow-query ring keeping
//! the *full tree* of any trace whose root exceeds a threshold — and are
//! exportable as Chrome trace-event JSON via [`TraceSink::to_chrome_json`]
//! (loadable in `chrome://tracing` or Perfetto). When a telemetry context
//! is also active, every completed span additionally feeds the existing
//! [`Subscriber`](crate::Subscriber) seam and the
//! `olap_span_nanos{span=NAME}` histogram, so aggregate per-stage
//! latencies come from the same instrumentation points.

use crate::json_escape;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default number of span records a [`TraceSink`] retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default number of slow-query span trees retained by the slow ring.
pub const DEFAULT_SLOW_RING_CAPACITY: usize = 16;

/// Identifies one traced query; unique per [`TraceSink`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

/// Identifies one span within a sink; unique per [`TraceSink`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

/// The propagated trace position: which trace, and which span new child
/// spans should parent under. Copied by value across queues and threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// The owning trace.
    pub trace: TraceId,
    /// The span new children parent under.
    pub span: SpanId,
}

/// One completed span as stored by the sink.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span, `None` for the trace root.
    pub parent: Option<SpanId>,
    /// Static span name (`serve_query`, `queue_wait`, …).
    pub name: &'static str,
    /// Start time in nanoseconds since the sink's creation.
    pub start_ns: u64,
    /// Elapsed wall time in nanoseconds.
    pub dur_ns: u64,
    /// Process-local id of the thread the span *ended* on (allocated
    /// lazily, stable per OS thread; Chrome export groups rows by it).
    pub tid: u64,
}

impl SpanRecord {
    /// End time in nanoseconds since the sink's creation (saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Monotone thread-id allocator for the Chrome export; ids are assigned
/// lazily and are stable for an OS thread's lifetime.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// One entry of the thread-local trace scope stack.
///
/// Only *owning* entries — a trace root or a cross-thread re-entry —
/// carry the sink. A child span's entry is just its [`TraceContext`]:
/// the span is scoped strictly inside the frame that spawned it, so it
/// borrows the sink (and its liveness) from the nearest `Frame` beneath
/// it instead of bumping the `Arc` refcount. That keeps starting and
/// dropping a child span free of shared-memory writes other than the
/// record itself.
enum ScopeEntry {
    /// An owning frame: [`TraceSpan::root`], [`TraceHandle::enter`], or
    /// [`PendingSpan::finish_and_enter`].
    Frame(TraceHandle),
    /// A child span started by [`TraceSpan::start`].
    Child(TraceContext),
}

impl ScopeEntry {
    fn ctx(&self) -> TraceContext {
        match self {
            ScopeEntry::Frame(h) => h.ctx,
            ScopeEntry::Child(c) => *c,
        }
    }
}

/// The nearest owning frame's sink at or below the top of `stack`.
fn innermost_sink(stack: &[ScopeEntry]) -> Option<&Arc<TraceSink>> {
    stack.iter().rev().find_map(|e| match e {
        ScopeEntry::Frame(h) => Some(&h.sink),
        ScopeEntry::Child(_) => None,
    })
}

thread_local! {
    static TRACE_SCOPES: RefCell<Vec<ScopeEntry>> = const { RefCell::new(Vec::new()) };
    /// Mirror of `TRACE_SCOPES.len()`, readable without a `RefCell`
    /// borrow — the instrumentation fast path.
    static SCOPE_DEPTH: Cell<usize> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        // ordering: Relaxed — pure id allocator; uniqueness comes from
        // the atomicity of fetch_add, no other memory hangs off the value.
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Whether a trace scope is entered on the *current thread*. One
/// thread-local read; the instrumentation fast path. Scopes are strictly
/// thread-local, so this is exactly the condition under which
/// [`TraceSpan::start`] would record.
#[inline]
pub fn tracing_active() -> bool {
    SCOPE_DEPTH.with(|d| d.get() != 0)
}

/// The innermost trace scope entered on this thread, if any. One
/// thread-local read when no scope is entered.
#[inline]
pub fn current_trace() -> Option<TraceHandle> {
    if !tracing_active() {
        return None;
    }
    current_trace_slow()
}

#[inline(never)]
fn current_trace_slow() -> Option<TraceHandle> {
    TRACE_SCOPES.with(|s| {
        let stack = s.borrow();
        let ctx = stack.last()?.ctx();
        let sink = innermost_sink(&stack)?;
        Some(TraceHandle {
            ctx,
            sink: Arc::clone(sink),
        })
    })
}

fn push_scope(entry: ScopeEntry) {
    TRACE_SCOPES.with(|s| s.borrow_mut().push(entry));
    SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
}

fn pop_scope() -> Option<ScopeEntry> {
    let popped = TRACE_SCOPES.with(|s| s.borrow_mut().pop());
    if popped.is_some() {
        SCOPE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
    popped
}

/// Feeds a completed span through the existing telemetry seam: the
/// `olap_span_nanos{span=NAME}` histogram and the context's
/// [`Subscriber`](crate::Subscriber), when a telemetry context is active.
fn forward_to_telemetry(name: &'static str, nanos: u64) {
    if let Some(ctx) = crate::current() {
        ctx.registry()
            .histogram("olap_span_nanos", &[("span", name)])
            .observe(nanos);
        if let Some(sub) = ctx.subscriber() {
            sub.record_span(name, &[], nanos);
        }
    }
}

/// A cloneable capability to record into one trace: the [`TraceContext`]
/// plus the owning sink. `Send`, so it can be captured and re-entered by
/// fan-out workers ([`TraceHandle::enter`]).
#[derive(Clone)]
pub struct TraceHandle {
    ctx: TraceContext,
    sink: Arc<TraceSink>,
}

impl TraceHandle {
    /// The propagated trace position.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// The sink completed spans are recorded into.
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Re-enters this context on the current thread: until the returned
    /// guard drops, [`TraceSpan::start`] parents under `context().span`.
    /// Nestable (innermost wins); unwound correctly on panic.
    pub fn enter(&self) -> EnteredTrace {
        push_scope(ScopeEntry::Frame(self.clone()));
        EnteredTrace { active: true }
    }

    /// [`TraceHandle::enter`] by value — the handle moves into the scope
    /// frame instead of being cloned, sparing a refcount round-trip on
    /// the per-job propagation path.
    pub fn enter_owned(self) -> EnteredTrace {
        push_scope(ScopeEntry::Frame(self));
        EnteredTrace { active: true }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("ctx", &self.ctx)
            .finish()
    }
}

/// Guard for a re-entered trace scope; pops it on drop.
#[derive(Debug)]
pub struct EnteredTrace {
    active: bool,
}

impl Drop for EnteredTrace {
    fn drop(&mut self) {
        if self.active {
            let _ = pop_scope();
        }
    }
}

/// An active span; records into the sink on drop. The root span of a
/// query comes from [`TraceSpan::root`]; everything below it from
/// [`TraceSpan::start`], which is inert (one thread-local read) when no
/// trace scope is entered on the current thread.
///
/// A span is pinned to the thread that started it (`!Send`): its scope
/// entry lives on that thread's stack, and the drop pops it there. Cross-
/// thread propagation goes through [`PendingSpan`] or
/// [`TraceHandle::enter`], which own their sink reference.
pub struct TraceSpan {
    state: Option<SpanState>,
    /// Spans manipulate the thread-local scope stack on drop, so moving
    /// one across threads would corrupt both threads' scoping.
    _not_send: std::marker::PhantomData<*const ()>,
}

struct SpanState {
    ctx: TraceContext,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    root: bool,
}

impl TraceSpan {
    // analyzer: allow(span-discipline, reason = "INERT has state: None by construction — it records nothing and is the documented no-op placeholder")
    const INERT: TraceSpan = TraceSpan {
        state: None,
        _not_send: std::marker::PhantomData,
    };

    /// Starts a new trace rooted at `name` against `sink`, entering it as
    /// the current thread's trace scope until the span drops.
    pub fn root(sink: &Arc<TraceSink>, name: &'static str) -> TraceSpan {
        let ctx = TraceContext {
            trace: TraceId(sink.alloc_trace()),
            span: SpanId(sink.alloc_span()),
        };
        let start_ns = sink.now_ns();
        push_scope(ScopeEntry::Frame(TraceHandle {
            ctx,
            sink: Arc::clone(sink),
        }));
        TraceSpan {
            state: Some(SpanState {
                ctx,
                parent: None,
                name,
                start_ns,
                root: true,
            }),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Starts a child span under the current thread's trace scope; inert
    /// when no scope is entered. While alive, it is itself the current
    /// scope, so further spans nest under it.
    ///
    /// The recording path touches no cross-thread state beyond the id
    /// allocation and the eventual record: the sink is borrowed from the
    /// enclosing scope frame, not cloned.
    pub fn start(name: &'static str) -> TraceSpan {
        if !tracing_active() {
            return TraceSpan::INERT;
        }
        TRACE_SCOPES.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(parent_ctx) = stack.last().map(ScopeEntry::ctx) else {
                return TraceSpan::INERT;
            };
            let Some(sink) = innermost_sink(&stack) else {
                return TraceSpan::INERT;
            };
            let ctx = TraceContext {
                trace: parent_ctx.trace,
                span: SpanId(sink.alloc_span()),
            };
            let start_ns = sink.now_ns();
            stack.push(ScopeEntry::Child(ctx));
            SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
            TraceSpan {
                state: Some(SpanState {
                    ctx,
                    parent: Some(parent_ctx.span),
                    name,
                    start_ns,
                    root: false,
                }),
                _not_send: std::marker::PhantomData,
            }
        })
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// The recording span's position, `None` when inert.
    pub fn context(&self) -> Option<TraceContext> {
        self.state.as_ref().map(|s| s.ctx)
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        // Pop our own scope entry and resolve the sink: a root carries it
        // in the popped frame; a child borrows it from the nearest frame
        // still on the stack (which outlives the child by RAII).
        let finished = TRACE_SCOPES.with(|s| {
            let mut stack = s.borrow_mut();
            let popped = stack.pop();
            if popped.is_some() {
                SCOPE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            }
            let dur_of = |sink: &TraceSink| {
                let dur_ns = sink.now_ns().saturating_sub(state.start_ns);
                sink.record(SpanRecord {
                    trace: state.ctx.trace,
                    span: state.ctx.span,
                    parent: state.parent,
                    name: state.name,
                    start_ns: state.start_ns,
                    dur_ns,
                    tid: thread_tid(),
                });
                if state.root {
                    sink.finish_root(state.ctx.trace, dur_ns);
                }
                dur_ns
            };
            match popped {
                Some(ScopeEntry::Frame(h)) => Some(dur_of(&h.sink)),
                Some(ScopeEntry::Child(_)) => innermost_sink(&stack).map(|sink| dur_of(sink)),
                None => None,
            }
        });
        if let Some(dur_ns) = finished {
            forward_to_telemetry(state.name, dur_ns);
        }
    }
}

/// A span in flight across a queue: started on the submitting thread,
/// finished on the receiving one. `Send` — it carries the [`TraceContext`]
/// by value inside a request envelope. If dropped unfinished (e.g. the
/// send failed), it records the elapsed time as the span's duration.
pub struct PendingSpan {
    state: Option<PendingState>,
}

struct PendingState {
    handle: TraceHandle,
    name: &'static str,
    start_ns: u64,
}

impl PendingSpan {
    /// Starts a pending span under the current thread's trace scope;
    /// `None` when no scope is entered (so envelopes carry nothing and
    /// the receiver does no work).
    pub fn start(name: &'static str) -> Option<PendingSpan> {
        let cur = current_trace()?;
        let start_ns = cur.sink.now_ns();
        Some(PendingSpan {
            state: Some(PendingState {
                handle: cur,
                name,
                start_ns,
            }),
        })
    }

    /// Ends the pending span (its duration is the queue wait) and
    /// re-enters the carried context on the *current* thread, so spans
    /// started until the guard drops become siblings of the queue-wait
    /// span under the same parent.
    pub fn finish_and_enter(mut self) -> EnteredTrace {
        match self.state.take() {
            Some(state) => PendingSpan::finish(state).enter_owned(),
            None => EnteredTrace { active: false },
        }
    }

    fn finish(state: PendingState) -> TraceHandle {
        let dur_ns = state.handle.sink.now_ns().saturating_sub(state.start_ns);
        let ctx = state.handle.ctx;
        let span = SpanId(state.handle.sink.alloc_span());
        state.handle.sink.record(SpanRecord {
            trace: ctx.trace,
            span,
            parent: Some(ctx.span),
            name: state.name,
            start_ns: state.start_ns,
            dur_ns,
            tid: thread_tid(),
        });
        forward_to_telemetry(state.name, dur_ns);
        state.handle
    }
}

impl Drop for PendingSpan {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let _ = PendingSpan::finish(state);
        }
    }
}

/// Collects completed [`SpanRecord`]s and assembles them into per-query
/// trees. Bounded: past `capacity` records, new spans are counted in
/// [`TraceSink::dropped`] instead of stored. A slow-query ring keeps the
/// full span list of the last few traces whose root duration met a
/// threshold, surviving even after the main store fills.
pub struct TraceSink {
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    capacity: usize,
    slow_threshold_ns: u64,
    slow_capacity: usize,
    store: Mutex<SinkStore>,
}

#[derive(Default)]
struct SinkStore {
    records: Vec<SpanRecord>,
    dropped: u64,
    slow: VecDeque<SlowTrace>,
}

/// A retained slow query: its trace id, root duration, and every span of
/// the trace that was stored when the root completed.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    /// The slow query's trace.
    pub trace: TraceId,
    /// Root span duration in nanoseconds.
    pub root_dur_ns: u64,
    /// All stored spans of the trace, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink {
    /// A sink with default capacity and no slow-query ring.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// A sink retaining at most `capacity` spans (minimum 1), with no
    /// slow-query ring.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            capacity: capacity.max(1),
            slow_threshold_ns: u64::MAX,
            slow_capacity: DEFAULT_SLOW_RING_CAPACITY,
            store: Mutex::new(SinkStore::default()),
        }
    }

    /// A sink whose slow-query ring keeps the span trees of the last
    /// `slow_capacity` traces (minimum 1) with a root duration of at
    /// least `threshold`.
    pub fn with_slow_ring(capacity: usize, threshold: Duration, slow_capacity: usize) -> Self {
        TraceSink {
            slow_threshold_ns: threshold.as_nanos().min(u64::MAX as u128) as u64,
            slow_capacity: slow_capacity.max(1),
            ..TraceSink::with_capacity(capacity)
        }
    }

    fn alloc_trace(&self) -> u64 {
        // ordering: Relaxed — pure id allocator; uniqueness comes from
        // the atomicity of fetch_add, no other memory hangs off it.
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_span(&self) -> u64 {
        // ordering: Relaxed — pure id allocator; see `alloc_trace`.
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the sink was created — the single monotonic
    /// time base for both span endpoints, so a span that drops before
    /// another (RAII nesting) is guaranteed to end no later.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn record(&self, rec: SpanRecord) {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently lose spans")
        let mut store = self.store.lock().expect("trace store lock");
        if store.records.len() >= self.capacity {
            store.dropped = store.dropped.saturating_add(1);
        } else {
            store.records.push(rec);
        }
    }

    /// Called once when a trace's root span completes; retains the full
    /// trace in the slow ring when it met the threshold.
    fn finish_root(&self, trace: TraceId, root_dur_ns: u64) {
        if root_dur_ns < self.slow_threshold_ns {
            return;
        }
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than silently lose spans")
        let mut store = self.store.lock().expect("trace store lock");
        let spans: Vec<SpanRecord> = store
            .records
            .iter()
            .filter(|r| r.trace == trace)
            .cloned()
            .collect();
        if store.slow.len() >= self.slow_capacity {
            store.slow.pop_front();
        }
        store.slow.push_back(SlowTrace {
            trace,
            root_dur_ns,
            spans,
        });
    }

    /// Number of spans currently stored.
    pub fn span_count(&self) -> usize {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn store")
        self.store.lock().expect("trace store lock").records.len()
    }

    /// Spans discarded because the store was full.
    pub fn dropped(&self) -> u64 {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn store")
        self.store.lock().expect("trace store lock").dropped
    }

    /// All stored spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn store")
        self.store.lock().expect("trace store lock").records.clone()
    }

    /// The retained slow traces, oldest first.
    pub fn slow_traces(&self) -> Vec<SlowTrace> {
        // analyzer: allow(panic-site, reason = "mutex poisoning propagates a panic from another telemetry call; fail loud rather than report a torn store")
        let store = self.store.lock().expect("trace store lock");
        store.slow.iter().cloned().collect()
    }

    /// Distinct trace ids with at least one stored span, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.records().iter().map(|r| r.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Assembles the stored spans of `trace` into a tree. `None` when the
    /// trace has no stored root span. Children are ordered by start time
    /// (ties broken by span id).
    pub fn trace_tree(&self, trace: TraceId) -> Option<SpanTree> {
        let records: Vec<SpanRecord> = self
            .records()
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect();
        build_tree(&records)
    }

    /// Every stored span as Chrome trace-event JSON (`ph: "X"` complete
    /// events, microsecond timestamps), loadable in `chrome://tracing`
    /// and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
        for (i, r) in records.iter().enumerate() {
            let sep = if i.saturating_add(1) == records.len() {
                ""
            } else {
                ","
            };
            let parent = r
                .parent
                .map_or_else(|| "null".to_string(), |p| p.0.to_string());
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cat\": \"olap\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"trace\": {}, \"span\": {}, \"parent\": {}}}}}{sep}\n",
                json_escape(r.name),
                r.tid,
                r.start_ns as f64 / 1e3,
                r.dur_ns as f64 / 1e3,
                r.trace.0,
                r.span.0,
                parent,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity)
            .field("spans", &self.span_count())
            .finish()
    }
}

/// A span and its children, as assembled by [`TraceSink::trace_tree`].
#[derive(Clone, Debug)]
pub struct SpanTree {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by `(start_ns, span)`.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Total spans in this subtree (including this node).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanTree::span_count)
            .sum::<usize>()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanTree> {
        if self.record.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Every `(name, parent name)` edge in the subtree, sorted — a
    /// thread-order-independent shape fingerprint for equivalence tests.
    pub fn edge_set(&self) -> Vec<(&'static str, &'static str)> {
        let mut edges = Vec::new();
        self.collect_edges(&mut edges);
        edges.sort_unstable();
        edges
    }

    fn collect_edges(&self, out: &mut Vec<(&'static str, &'static str)>) {
        for c in &self.children {
            out.push((c.record.name, self.record.name));
            c.collect_edges(out);
        }
    }

    /// An indented plain-text rendering (one span per line, durations in
    /// microseconds) for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{} {:.1}µs\n",
            "",
            self.record.name,
            self.record.dur_ns as f64 / 1e3,
            indent = depth.saturating_mul(2),
        ));
        for c in &self.children {
            c.render_into(depth.saturating_add(1), out);
        }
    }
}

fn build_tree(records: &[SpanRecord]) -> Option<SpanTree> {
    let root = records.iter().find(|r| r.parent.is_none())?.clone();
    let mut children: BTreeMap<SpanId, Vec<SpanRecord>> = BTreeMap::new();
    for r in records {
        if let Some(p) = r.parent {
            children.entry(p).or_default().push(r.clone());
        }
    }
    Some(attach(root, &mut children))
}

fn attach(record: SpanRecord, children: &mut BTreeMap<SpanId, Vec<SpanRecord>>) -> SpanTree {
    let mut kids = children.remove(&record.span).unwrap_or_default();
    kids.sort_by_key(|r| (r.start_ns, r.span));
    SpanTree {
        children: kids.into_iter().map(|r| attach(r, children)).collect(),
        record,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_scope, Telemetry};

    #[test]
    fn inert_without_scope() {
        // No root entered on this thread ⇒ starting a child records
        // nothing, even if other tests have traces active concurrently.
        let span = TraceSpan::start("orphan");
        assert!(!span.is_recording());
        assert!(span.context().is_none());
        assert!(PendingSpan::start("orphan").is_none());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let sink = Arc::new(TraceSink::new());
        let trace = {
            let root = TraceSpan::root(&sink, "serve_query");
            let trace = root.context().expect("root records").trace;
            {
                let _lookup = TraceSpan::start("cache_lookup");
                drop(TraceSpan::start("kernel_exec")); // nests under lookup
            }
            drop(TraceSpan::start("merge"));
            trace
        };
        assert_eq!(sink.span_count(), 4);
        let tree = sink.trace_tree(trace).expect("tree assembles");
        assert_eq!(tree.record.name, "serve_query");
        assert_eq!(tree.record.parent, None);
        assert_eq!(tree.span_count(), 4);
        let mut edges = tree.edge_set();
        edges.sort_unstable();
        assert_eq!(
            edges,
            vec![
                ("cache_lookup", "serve_query"),
                ("kernel_exec", "cache_lookup"),
                ("merge", "serve_query"),
            ]
        );
        // Containment: every child starts no earlier and ends no later
        // than its parent.
        fn contained(t: &SpanTree) {
            for c in &t.children {
                assert!(c.record.start_ns >= t.record.start_ns);
                assert!(c.record.end_ns() <= t.record.end_ns());
                contained(c);
            }
        }
        contained(&tree);
    }

    #[test]
    fn pending_span_crosses_a_queue() {
        let sink = Arc::new(TraceSink::new());
        let root = TraceSpan::root(&sink, "serve_query");
        let trace = root.context().expect("root records").trace;
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(PendingSpan::start("queue_wait").expect("trace active"))
            .expect("send");
        let worker = std::thread::spawn(move || {
            let pending = rx.recv().expect("recv");
            let _entered = pending.finish_and_enter();
            drop(TraceSpan::start("shard_exec"));
        });
        worker.join().expect("worker");
        drop(root);
        let tree = sink.trace_tree(trace).expect("tree assembles");
        // queue_wait and shard_exec are *siblings* under the root: the
        // context crossed the queue by value.
        assert_eq!(
            tree.edge_set(),
            vec![("queue_wait", "serve_query"), ("shard_exec", "serve_query"),]
        );
        let qw = tree.find("queue_wait").expect("queue_wait recorded");
        assert!(qw.record.tid != tree.record.tid, "ended on the worker");
    }

    #[test]
    fn handle_reenters_in_workers() {
        let sink = Arc::new(TraceSink::new());
        let root = TraceSpan::root(&sink, "serve_query");
        let trace = root.context().expect("root records").trace;
        let handle = current_trace().expect("scope entered");
        let worker = std::thread::spawn(move || {
            assert!(current_trace_slow().is_none(), "scopes are thread-local");
            let _entered = handle.enter();
            drop(TraceSpan::start("exec_worker"));
        });
        worker.join().expect("worker");
        drop(root);
        let tree = sink.trace_tree(trace).expect("tree assembles");
        assert_eq!(tree.edge_set(), vec![("exec_worker", "serve_query")]);
    }

    #[test]
    fn capacity_drops_are_counted() {
        let sink = Arc::new(TraceSink::with_capacity(2));
        let root = TraceSpan::root(&sink, "serve_query");
        drop(TraceSpan::start("a"));
        drop(TraceSpan::start("b"));
        drop(TraceSpan::start("c"));
        drop(root);
        assert_eq!(sink.span_count(), 2);
        assert_eq!(sink.dropped(), 2, "c and the root were dropped");
    }

    #[test]
    fn slow_ring_retains_full_trees() {
        let sink = Arc::new(TraceSink::with_slow_ring(1024, Duration::ZERO, 1));
        for _ in 0..2 {
            let root = TraceSpan::root(&sink, "serve_query");
            drop(TraceSpan::start("kernel_exec"));
            drop(root);
        }
        let slow = sink.slow_traces();
        assert_eq!(slow.len(), 1, "ring bounded at 1");
        let last = slow.last().expect("one retained");
        assert_eq!(last.spans.len(), 2, "full tree retained");
        assert_eq!(
            sink.trace_ids().last().copied(),
            Some(last.trace),
            "the ring kept the most recent trace"
        );
        // A sink without a ring never retains slow traces.
        let plain = Arc::new(TraceSink::new());
        drop(TraceSpan::root(&plain, "q"));
        assert!(plain.slow_traces().is_empty());
    }

    #[test]
    fn abandoned_pending_span_still_records() {
        let sink = Arc::new(TraceSink::new());
        let root = TraceSpan::root(&sink, "serve_query");
        let trace = root.context().expect("root records").trace;
        drop(PendingSpan::start("queue_wait").expect("trace active"));
        drop(root);
        let tree = sink.trace_tree(trace).expect("tree assembles");
        assert_eq!(tree.edge_set(), vec![("queue_wait", "serve_query")]);
    }

    #[test]
    fn chrome_export_shape() {
        let sink = Arc::new(TraceSink::new());
        let root = TraceSpan::root(&sink, "serve_query");
        drop(TraceSpan::start("kernel_exec"));
        drop(root);
        let json = sink.to_chrome_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"displayTimeUnit\": \"ns\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"name\": \"kernel_exec\""), "{json}");
        assert!(json.contains("\"parent\": null"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        assert_eq!(json.matches("\"ph\"").count(), 2, "one event per span");
    }

    #[test]
    fn spans_feed_the_subscriber_seam() {
        let ctx = Arc::new(Telemetry::new());
        let sub = Arc::new(crate::CollectingSubscriber::new());
        ctx.set_subscriber(sub.clone());
        let sink = Arc::new(TraceSink::new());
        with_scope(&ctx, || {
            let root = TraceSpan::root(&sink, "serve_query");
            drop(TraceSpan::start("kernel_exec"));
            drop(root);
        });
        assert_eq!(
            ctx.registry()
                .histogram("olap_span_nanos", &[("span", "kernel_exec")])
                .count(),
            1
        );
        let names: Vec<&str> = sub.spans().iter().map(|s| s.0).collect();
        assert_eq!(names, vec!["kernel_exec", "serve_query"]);
    }

    #[test]
    fn scope_unwinds_on_panic() {
        let sink = Arc::new(TraceSink::new());
        assert!(!tracing_active());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _root = TraceSpan::root(&sink, "serve_query");
            let _child = TraceSpan::start("kernel_exec");
            assert!(tracing_active());
            panic!("boom");
        }));
        assert!(r.is_err());
        assert!(!tracing_active(), "scopes popped during unwind");
        assert_eq!(sink.span_count(), 2, "both spans recorded on unwind");
    }
}
