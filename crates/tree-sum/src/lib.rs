//! Tree hierarchies for range-**sum** queries — the baseline of §8.
//!
//! §8 asks whether the block tree used for range-max is a good structure
//! for range-sum too: each node stores the sum over the region it covers,
//! and a query adds (and, "for a fair comparison", subtracts) node values
//! that collectively tile the query region. Crucially the branch-and-bound
//! optimisation of §6 **cannot** apply to SUM, and the paper's cost
//! analysis shows the structure is strictly worse than prefix sums:
//!
//! - prefix-sum cost ≈ `2^d + S·F(b)`,
//! - tree cost ≈ `F(b) · Σ_{k=0}^{t−1} S / b^{k(d−1)}`,
//!
//! with `F(b) ≈ b/4`. This crate implements the tree so the comparison
//! (Figure 11) can be *measured*, not just modelled. The complement
//! optimisation ("subtraction may be used") is a toggle so the fair and
//! unfair variants can both be benchmarked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed errors; panicking escape
// hatches are denied outside test builds (tests and benches may unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use olap_aggregate::{AbelianGroup, NumericValue, SumOp};
use olap_array::{ArrayError, BudgetMeter, DenseArray, Range, Region, Shape};
use olap_query::AccessStats;

/// One level of the sum tree: a contracted array whose cells hold the sum
/// over the covered block.
#[derive(Debug, Clone)]
struct Level<V> {
    shape: Shape,
    sums: Box<[V]>,
}

/// A block tree whose nodes store region sums (§8).
///
/// # Examples
///
/// ```
/// use olap_array::{DenseArray, Region, Shape};
/// use olap_tree_sum::SumTreeCube;
///
/// let cube = DenseArray::from_fn(Shape::new(&[16]).unwrap(), |i| i[0] as i64);
/// let tree = SumTreeCube::build(&cube, 2).unwrap();
/// let q = Region::from_bounds(&[(3, 12)]).unwrap();
/// assert_eq!(tree.range_sum(&cube, &q).unwrap(), (3..=12).sum::<i64>());
/// ```
#[derive(Debug, Clone)]
pub struct SumTree<G: AbelianGroup> {
    op: G,
    shape: Shape,
    b: usize,
    levels: Vec<Level<G::Value>>,
}

/// The SUM-specialised tree.
pub type SumTreeCube<T> = SumTree<SumOp<T>>;

impl<T: NumericValue> SumTreeCube<T> {
    /// Builds the SUM tree with per-dimension fanout `b`.
    ///
    /// # Errors
    /// Rejects `b < 2` (the tree must shrink per level).
    pub fn build(a: &DenseArray<T>, b: usize) -> Result<Self, ArrayError> {
        SumTree::with_op(a, SumOp::new(), b)
    }
}

impl<G: AbelianGroup> SumTree<G> {
    /// Builds the tree bottom-up: level 1 contracts `A` by `b` (block
    /// sums), level `i+1` contracts level `i`.
    ///
    /// # Errors
    /// Rejects `b < 2` via [`ArrayError::ZeroBlock`]-style validation.
    pub fn with_op(a: &DenseArray<G::Value>, op: G, b: usize) -> Result<Self, ArrayError> {
        if b < 2 {
            return Err(ArrayError::ZeroBlock);
        }
        let shape = a.shape().clone();
        let mut levels: Vec<Level<G::Value>> = Vec::new();
        loop {
            let done = match levels.last() {
                None => shape.dims().iter().all(|&n| n == 1),
                Some(l) => l.shape.dims().iter().all(|&n| n == 1),
            };
            if done {
                break;
            }
            let next = match levels.last() {
                None => a.contract_blocks(b, op.identity(), |acc, x, _| op.combine(acc, x))?,
                Some(l) => {
                    let arr = DenseArray::from_vec(l.shape.clone(), l.sums.to_vec())?;
                    arr.contract_blocks(b, op.identity(), |acc, x, _| op.combine(acc, x))?
                }
            };
            let (s, v) = (next.shape().clone(), next.as_slice().to_vec());
            levels.push(Level {
                shape: s,
                sums: v.into(),
            });
        }
        Ok(SumTree {
            op,
            shape,
            b,
            levels,
        })
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Per-dimension fanout.
    pub fn fanout(&self) -> usize {
        self.b
    }

    /// Tree height (levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total precomputed nodes — the structure's space overhead, which §8
    /// compares against a blocked prefix sum of the same `b`.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.sums.len()).sum()
    }

    /// The region of `A` covered by a node (level 0 = a cell).
    fn node_region(&self, level: usize, coords: &[usize]) -> Result<Region, ArrayError> {
        let side = self.b.pow(level as u32);
        let ranges = coords
            .iter()
            .zip(self.shape.dims())
            .map(|(&c, &n)| Range::new(c * side, ((c + 1) * side - 1).min(n - 1)))
            .collect::<Result<Vec<_>, _>>()?;
        Region::new(ranges)
    }

    /// Answers a range-sum query by tree traversal.
    ///
    /// # Errors
    /// Validates the region and cube shape.
    pub fn range_sum(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
    ) -> Result<G::Value, ArrayError> {
        self.range_sum_with_stats(a, region, true).map(|(v, _)| v)
    }

    /// Full entry point: `use_complement` enables the subtraction trick
    /// the paper grants the tree for a fair comparison.
    ///
    /// # Errors
    /// Validates the region and cube shape.
    pub fn range_sum_with_stats(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
        use_complement: bool,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        self.range_sum_with_stats_budget(a, region, use_complement, &BudgetMeter::unlimited())
    }

    /// [`SumTree::range_sum_with_stats`] under a [`BudgetMeter`]: the
    /// meter is checked before the traversal starts and at every internal
    /// node, and each node visit or cube-cell read is charged one access.
    /// An exhausted budget, elapsed deadline, or cancelled token surfaces
    /// as [`ArrayError::Interrupted`].
    ///
    /// # Errors
    /// Validates the region and cube shape; propagates budget interrupts.
    pub fn range_sum_with_stats_budget(
        &self,
        a: &DenseArray<G::Value>,
        region: &Region,
        use_complement: bool,
        meter: &BudgetMeter,
    ) -> Result<(G::Value, AccessStats), ArrayError> {
        if a.shape() != &self.shape {
            return Err(ArrayError::DimMismatch {
                expected: self.shape.ndim(),
                actual: a.shape().ndim(),
            });
        }
        self.shape.check_region(region)?;
        meter.check()?;
        let mut stats = AccessStats::new();
        // Start at the lowest node covering the query (same addressing as
        // the max tree).
        let mut level = 1;
        while level < self.height() {
            let side = self.b.pow(level as u32);
            if region
                .ranges()
                .iter()
                .all(|r| r.lo() / side == r.hi() / side)
            {
                break;
            }
            level += 1;
        }
        if self.height() == 0 {
            // Single-cell cube.
            meter.charge(1)?;
            stats.read_a(1);
            return Ok((a.get_flat(0).clone(), stats));
        }
        let side = self.b.pow(level as u32);
        let coords: Vec<usize> = region.lower_corner().iter().map(|&l| l / side).collect();
        let v = self.sum_in(a, level, &coords, region, use_complement, &mut stats, meter)?;
        Ok((v, stats))
    }

    /// Sum over `region`, which must be a non-empty box inside `C(node)`.
    #[allow(clippy::too_many_arguments)]
    fn sum_in(
        &self,
        a: &DenseArray<G::Value>,
        level: usize,
        coords: &[usize],
        region: &Region,
        use_complement: bool,
        stats: &mut AccessStats,
        meter: &BudgetMeter,
    ) -> Result<G::Value, ArrayError> {
        let covered = self.node_region(level, coords)?;
        debug_assert!(covered.contains_region(region));
        if &covered == region {
            if level == 0 {
                meter.charge(1)?;
                stats.read_a(1);
                return Ok(a.get(coords).clone());
            }
            meter.charge(1)?;
            stats.visit_nodes(1);
            let l = &self.levels[level - 1];
            return Ok(l.sums[l.shape.flatten(coords)].clone());
        }
        debug_assert!(level >= 1, "level-0 node region is a single cell");
        let vol = region.volume();
        let comp_vol = covered.volume() - vol;
        if use_complement && comp_vol < vol {
            // Node total minus the holes.
            meter.charge(1)?;
            stats.visit_nodes(1);
            let l = &self.levels[level - 1];
            let mut acc = l.sums[l.shape.flatten(coords)].clone();
            for hole in covered.subtract(region) {
                let h = self.sum_children(a, level, coords, &hole, use_complement, stats, meter)?;
                acc = self.op.uncombine(&acc, &h);
            }
            Ok(acc)
        } else {
            self.sum_children(a, level, coords, region, use_complement, stats, meter)
        }
    }

    /// Sums `box_region` (⊆ `C(node)`) by recursing into the node's
    /// children that intersect it.
    #[allow(clippy::too_many_arguments)]
    fn sum_children(
        &self,
        a: &DenseArray<G::Value>,
        level: usize,
        coords: &[usize],
        box_region: &Region,
        use_complement: bool,
        stats: &mut AccessStats,
        meter: &BudgetMeter,
    ) -> Result<G::Value, ArrayError> {
        meter.check()?;
        let child_dims: Vec<usize> = if level == 1 {
            self.shape.dims().to_vec()
        } else {
            self.levels[level - 2].shape.dims().to_vec()
        };
        let lo: Vec<usize> = coords.iter().map(|&c| c * self.b).collect();
        let hi: Vec<usize> = coords
            .iter()
            .zip(&child_dims)
            .map(|(&c, &n)| ((c + 1) * self.b - 1).min(n - 1))
            .collect();
        let mut acc = self.op.identity();
        let mut cur = lo.clone();
        loop {
            let child_covered = if level == 1 {
                Region::point(&cur)?
            } else {
                self.node_region(level - 1, &cur)?
            };
            if let Some(inter) = child_covered.intersect(box_region) {
                let v = self.sum_in(a, level - 1, &cur, &inter, use_complement, stats, meter)?;
                acc = self.op.combine(&acc, &v);
                stats.step(1);
            }
            let mut axis = cur.len();
            // analyzer: allow(budget-coverage, reason = "odometer advance: at most ndim steps per child; sum_in charges the meter per node")
            loop {
                if axis == 0 {
                    return Ok(acc);
                }
                axis -= 1;
                if cur[axis] < hi[axis] {
                    cur[axis] += 1;
                    break;
                }
                cur[axis] = lo[axis];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube2d() -> DenseArray<i64> {
        DenseArray::from_fn(Shape::new(&[9, 9]).unwrap(), |i| {
            (i[0] * 17 + i[1] * 5) as i64 % 13 - 6
        })
    }

    #[test]
    fn exhaustive_one_dim() {
        let a = DenseArray::from_fn(Shape::new(&[14]).unwrap(), |i| (i[0] * 7 % 11) as i64 - 5);
        let t = SumTreeCube::build(&a, 3).unwrap();
        for l in 0..14 {
            for h in l..14 {
                let q = Region::from_bounds(&[(l, h)]).unwrap();
                let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
                for comp in [true, false] {
                    let (v, _) = t.range_sum_with_stats(&a, &q, comp).unwrap();
                    assert_eq!(v, naive, "{q} complement={comp}");
                }
            }
        }
    }

    #[test]
    fn exhaustive_two_dim() {
        let a = cube2d();
        for b in [2usize, 3] {
            let t = SumTreeCube::build(&a, b).unwrap();
            for l0 in 0..9 {
                for h0 in l0..9 {
                    for l1 in (0..9).step_by(2) {
                        for h1 in (l1..9).step_by(2) {
                            let q = Region::from_bounds(&[(l0, h0), (l1, h1)]).unwrap();
                            let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
                            assert_eq!(t.range_sum(&a, &q).unwrap(), naive, "b={b} {q}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn node_count_is_geometric() {
        let a = DenseArray::filled(Shape::new(&[16, 16]).unwrap(), 1i64);
        let t = SumTreeCube::build(&a, 2).unwrap();
        // Levels: 8², 4², 2², 1² = 64 + 16 + 4 + 1.
        assert_eq!(t.height(), 4);
        assert_eq!(t.node_count(), 64 + 16 + 4 + 1);
    }

    #[test]
    fn aligned_node_query_is_one_access() {
        let a = DenseArray::filled(Shape::new(&[16]).unwrap(), 2i64);
        let t = SumTreeCube::build(&a, 2).unwrap();
        let q = Region::from_bounds(&[(8, 15)]).unwrap();
        let (v, stats) = t.range_sum_with_stats(&a, &q, true).unwrap();
        assert_eq!(v, 16);
        assert_eq!(stats.total_accesses(), 1);
    }

    #[test]
    fn complement_helps_near_full_queries() {
        let a = DenseArray::from_fn(Shape::new(&[81]).unwrap(), |i| i[0] as i64);
        let t = SumTreeCube::build(&a, 3).unwrap();
        let q = Region::from_bounds(&[(1, 79)]).unwrap();
        let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
        let (v1, with) = t.range_sum_with_stats(&a, &q, true).unwrap();
        let (v2, without) = t.range_sum_with_stats(&a, &q, false).unwrap();
        assert_eq!(v1, naive);
        assert_eq!(v2, naive);
        assert!(with.total_accesses() <= without.total_accesses());
    }

    #[test]
    fn three_dim_correctness() {
        let a = DenseArray::from_fn(Shape::new(&[5, 6, 7]).unwrap(), |i| {
            (i[0] * 3 + i[1] * 5 + i[2] * 7) as i64 % 11 - 5
        });
        let t = SumTreeCube::build(&a, 2).unwrap();
        let queries = [
            [(0, 4), (0, 5), (0, 6)],
            [(1, 3), (2, 4), (3, 5)],
            [(4, 4), (5, 5), (6, 6)],
            [(0, 0), (0, 5), (2, 3)],
        ];
        for qb in queries {
            let q = Region::from_bounds(&qb).unwrap();
            let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
            for comp in [true, false] {
                let (v, _) = t.range_sum_with_stats(&a, &q, comp).unwrap();
                assert_eq!(v, naive, "{q}");
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        let a = cube2d();
        let t = SumTreeCube::build(&a, 3).unwrap();
        assert!(t
            .range_sum(&a, &Region::from_bounds(&[(0, 9), (0, 8)]).unwrap())
            .is_err());
        assert!(SumTreeCube::build(&a, 1).is_err());
        let other = DenseArray::filled(Shape::new(&[3]).unwrap(), 0i64);
        assert!(t
            .range_sum(&other, &Region::from_bounds(&[(0, 2)]).unwrap())
            .is_err());
    }

    #[test]
    fn budget_exhaustion_interrupts_traversal() {
        use olap_array::{Interrupt, QueryBudget};
        let a = cube2d();
        let t = SumTreeCube::build(&a, 3).unwrap();
        let q = Region::from_bounds(&[(1, 7), (2, 8)]).unwrap();
        let (_, stats) = t.range_sum_with_stats(&a, &q, true).unwrap();
        let needed = stats.a_cells + stats.tree_nodes;
        // One access short of what the traversal needs: must be cut off.
        let meter = QueryBudget::unlimited()
            .max_accesses(needed.saturating_sub(1))
            .start(None);
        let err = t
            .range_sum_with_stats_budget(&a, &q, true, &meter)
            .unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Interrupted(Interrupt::BudgetExhausted { .. })
        ));
        // A sufficient budget answers identically to the unbudgeted path.
        let meter = QueryBudget::unlimited().max_accesses(needed).start(None);
        let (v, s) = t.range_sum_with_stats_budget(&a, &q, true, &meter).unwrap();
        let (v0, s0) = t.range_sum_with_stats(&a, &q, true).unwrap();
        assert_eq!(v, v0);
        assert_eq!(s.total_accesses(), s0.total_accesses());
    }

    #[test]
    fn zero_deadline_kills_before_traversal() {
        use olap_array::{Interrupt, QueryBudget};
        let a = cube2d();
        let t = SumTreeCube::build(&a, 3).unwrap();
        let q = Region::from_bounds(&[(0, 8), (0, 8)]).unwrap();
        let meter = QueryBudget::unlimited()
            .deadline(std::time::Duration::ZERO)
            .start(None);
        let err = t
            .range_sum_with_stats_budget(&a, &q, true, &meter)
            .unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Interrupted(Interrupt::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn single_cell_cube() {
        let a = DenseArray::filled(Shape::new(&[1]).unwrap(), 7i64);
        let t = SumTreeCube::build(&a, 2).unwrap();
        let q = Region::from_bounds(&[(0, 0)]).unwrap();
        assert_eq!(t.range_sum(&a, &q).unwrap(), 7);
    }
}
