//! Property tests: the tree-sum baseline agrees with a naive scan for
//! arbitrary cubes, fanouts, and queries, with and without the complement
//! optimisation, and its cost never exceeds the naive cost by more than
//! the tree-walk overhead.

use olap_array::{DenseArray, Region, Shape};
use olap_tree_sum::SumTreeCube;
use proptest::prelude::*;

fn arb_cube() -> impl Strategy<Value = DenseArray<i64>> {
    prop::collection::vec(2usize..9, 1..=3).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-100i64..100, len)
            .prop_map(move |data| DenseArray::from_vec(Shape::new(&dims).unwrap(), data).unwrap())
    })
}

fn arb_region(shape: &Shape) -> impl Strategy<Value = Region> {
    let dims = shape.dims().to_vec();
    let per_dim: Vec<_> = dims
        .iter()
        .map(|&n| (0..n, 0..n).prop_map(|(a, b)| (a.min(b), a.max(b))))
        .collect();
    per_dim.prop_map(|bounds| Region::from_bounds(&bounds).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn matches_naive_under_both_modes(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 2usize..5)
        })
    ) {
        let t = SumTreeCube::build(&a, b).unwrap();
        let expected = a.fold_region(&q, 0i64, |s, &x| s + x);
        for complement in [true, false] {
            let (v, _) = t.range_sum_with_stats(&a, &q, complement).unwrap();
            prop_assert_eq!(v, expected, "b={} complement={}", b, complement);
        }
    }

    #[test]
    fn access_cost_is_bounded(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 2usize..5)
        })
    ) {
        // The direct tree walk never reads more leaves than the query
        // volume, and node overhead is bounded by the tree size.
        let t = SumTreeCube::build(&a, b).unwrap();
        let (_, stats) = t.range_sum_with_stats(&a, &q, false).unwrap();
        prop_assert!(stats.a_cells <= q.volume() as u64);
        prop_assert!(stats.tree_nodes <= (t.node_count() + 1) as u64);
    }

    #[test]
    fn complement_mode_never_reads_more_leaves_than_node_region(
        (a, q, b) in arb_cube().prop_flat_map(|a| {
            let q = arb_region(a.shape());
            (Just(a), q, 2usize..4)
        })
    ) {
        let t = SumTreeCube::build(&a, b).unwrap();
        let (_, stats) = t.range_sum_with_stats(&a, &q, true).unwrap();
        prop_assert!(stats.a_cells <= a.len() as u64);
    }
}
