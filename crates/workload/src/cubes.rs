//! Cube generators.

use olap_array::{DenseArray, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense cube with i.i.d. uniform values in `[0, max_value)`.
pub fn uniform_cube(shape: Shape, max_value: i64, seed: u64) -> DenseArray<i64> {
    assert!(max_value > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    DenseArray::from_fn(shape, |_| rng.random_range(0..max_value))
}

/// A dense cube with a heavy-tailed ("80/20") value distribution: most
/// cells are small, a few are large — closer to real measure attributes
/// than uniform data, and the interesting case for branch-and-bound.
pub fn skewed_cube(shape: Shape, max_value: i64, seed: u64) -> DenseArray<i64> {
    assert!(max_value > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    DenseArray::from_fn(shape, |_| {
        // Inverse-power sampling: u^4 concentrates mass near zero.
        let u: f64 = rng.random_range(0.0..1.0);
        (u.powi(4) * max_value as f64) as i64
    })
}

/// A dense cube with trend + weekly seasonality along the first
/// dimension (a "time" axis) — the natural input for ROLLING aggregates.
/// Other dimensions modulate amplitude so stores/categories differ.
pub fn seasonal_cube(shape: Shape, base: i64, seed: u64) -> DenseArray<i64> {
    assert!(base > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    DenseArray::from_fn(shape, |idx| {
        let t = idx[0] as f64;
        let weekly = (t * std::f64::consts::TAU / 7.0).sin() * 0.3;
        let trend = t * 0.002;
        let modulation: f64 = idx[1..]
            .iter()
            .enumerate()
            .map(|(j, &x)| ((x + j + 2) as f64).ln() * 0.1)
            .sum();
        let noise: f64 = rng.random_range(-0.1..0.1);
        ((base as f64) * (1.0 + weekly + trend + modulation + noise)).max(0.0) as i64
    })
}

/// A sparse cube shaped like the paper's description of OLAP data: dense
/// rectangular clusters over a lightly-populated background.
///
/// Returns `(shape, points)` ready for
/// [`olap_sparse::SparseCube::new`](https://docs.rs) construction by the
/// caller (this crate avoids depending on `olap-sparse`).
pub fn clustered_sparse_cube(
    shape: &Shape,
    clusters: usize,
    cluster_side: usize,
    background_points: usize,
    max_value: i64,
    seed: u64,
) -> Vec<(Vec<usize>, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = shape.ndim();
    let mut seen = std::collections::BTreeSet::new();
    let mut points = Vec::new();
    for _ in 0..clusters {
        // Pick a corner so the cluster fits.
        let corner: Vec<usize> = (0..d)
            .map(|j| {
                let n = shape.dim(j);
                let side = cluster_side.min(n);
                rng.random_range(0..=(n - side))
            })
            .collect();
        let side_per_dim: Vec<usize> = (0..d).map(|j| cluster_side.min(shape.dim(j))).collect();
        let vol: usize = side_per_dim.iter().product();
        for k in 0..vol {
            let mut rest = k;
            let mut idx = corner.clone();
            for j in (0..d).rev() {
                idx[j] += rest % side_per_dim[j];
                rest /= side_per_dim[j];
            }
            if seen.insert(idx.clone()) {
                points.push((idx, rng.random_range(1..=max_value)));
            }
        }
    }
    let mut placed = 0;
    while placed < background_points {
        let idx: Vec<usize> = (0..d).map(|j| rng.random_range(0..shape.dim(j))).collect();
        if seen.insert(idx.clone()) {
            points.push((idx, rng.random_range(1..=max_value)));
            placed += 1;
        }
    }
    points
}

/// The insurance data cube of §1: age (1–100) × year (1987–1996) ×
/// state (50) × type {home, auto, health}, cells holding total revenue.
#[derive(Debug, Clone)]
pub struct InsuranceCube {
    /// The revenue cube, indexed by rank: `[age−1, year−1987, state, type]`.
    pub revenue: DenseArray<i64>,
}

/// State abbreviations used by [`InsuranceCube`].
pub const STATES: [&str; 50] = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// Insurance types of the §1 example.
pub const INSURANCE_TYPES: [&str; 3] = ["home", "auto", "health"];

impl InsuranceCube {
    /// Dimensions: age × year × state × type.
    pub const DIMS: [usize; 4] = [100, 10, 50, 3];

    /// Generates a seeded instance with a mild age/year structure so that
    /// range queries return visibly different numbers.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = Shape::new(&Self::DIMS).expect("static dims");
        let revenue = DenseArray::from_fn(shape, |idx| {
            let age = idx[0] + 1;
            // Premiums peak in middle age and grow slowly per year.
            let age_factor = 100 - (age as i64 - 45).abs();
            let year_factor = 100 + idx[1] as i64 * 3;
            let noise = rng.random_range(0..50);
            age_factor * year_factor / 40 + noise
        });
        InsuranceCube { revenue }
    }

    /// Maps an age in years (1–100) to its rank index.
    pub fn age_rank(age: usize) -> usize {
        assert!((1..=100).contains(&age));
        age - 1
    }

    /// Maps a calendar year (1987–1996) to its rank index.
    pub fn year_rank(year: usize) -> usize {
        assert!((1987..=1996).contains(&year));
        year - 1987
    }

    /// Index of a state abbreviation.
    pub fn state_rank(state: &str) -> Option<usize> {
        STATES.iter().position(|s| *s == state)
    }

    /// Index of an insurance type.
    pub fn type_rank(kind: &str) -> Option<usize> {
        INSURANCE_TYPES.iter().position(|s| *s == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let shape = Shape::new(&[4, 4]).unwrap();
        let a = uniform_cube(shape.clone(), 100, 7);
        let b = uniform_cube(shape.clone(), 100, 7);
        let c = uniform_cube(shape, 100, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.as_slice().iter().all(|&v| (0..100).contains(&v)));
    }

    #[test]
    fn skewed_is_mostly_small() {
        let shape = Shape::new(&[1000]).unwrap();
        let a = skewed_cube(shape, 1000, 3);
        let small = a.as_slice().iter().filter(|&&v| v < 100).count();
        assert!(small > 500, "{small} small values");
    }

    #[test]
    fn seasonal_cube_has_weekly_structure() {
        let shape = Shape::new(&[70, 3]).unwrap();
        let a = seasonal_cube(shape, 1000, 5);
        // Peaks and troughs differ systematically: compare the mean of the
        // high-phase days (t mod 7 ∈ {1,2}) against the low phase (4,5).
        let mut high = 0i64;
        let mut low = 0i64;
        for t in 0..70usize {
            match t % 7 {
                1 | 2 => high += *a.get(&[t, 0]),
                4 | 5 => low += *a.get(&[t, 0]),
                _ => {}
            }
        }
        assert!(high > low, "high {high} vs low {low}");
        assert!(a.as_slice().iter().all(|&v| v >= 0));
    }

    #[test]
    fn clustered_cube_has_clusters_and_noise() {
        let shape = Shape::new(&[100, 100]).unwrap();
        let pts = clustered_sparse_cube(&shape, 2, 10, 30, 50, 11);
        assert!(pts.len() >= 2 * 100 + 30 - 10); // allow a little overlap
                                                 // All points in range and unique.
        let mut set = std::collections::BTreeSet::new();
        for (idx, v) in &pts {
            assert!(shape.contains(idx));
            assert!((1..=50).contains(v));
            assert!(set.insert(idx.clone()), "duplicate {idx:?}");
        }
    }

    #[test]
    fn insurance_cube_shape_and_ranks() {
        let c = InsuranceCube::generate(1);
        assert_eq!(c.revenue.shape().dims(), &InsuranceCube::DIMS);
        assert_eq!(InsuranceCube::age_rank(37), 36);
        assert_eq!(InsuranceCube::year_rank(1988), 1);
        assert_eq!(InsuranceCube::state_rank("CA"), Some(4));
        assert_eq!(InsuranceCube::type_rank("auto"), Some(1));
        assert_eq!(InsuranceCube::type_rank("boat"), None);
    }
}
