//! Seeded synthetic cubes and query workloads for tests, examples, and
//! benchmarks.
//!
//! The paper's own evaluation is analytic plus a prototype run on
//! unspecified data; these generators provide the reproducible stand-ins:
//! uniform and skewed dense cubes, the clustered ~20%-density sparse cubes
//! the paper calls canonical for OLAP (§1, §10), the motivating insurance
//! cube of §1, and query workloads (uniform regions, fixed-side `α·b`
//! regions for the Figure-11 sweep, Zipf-skewed repeat-heavy regions for
//! semantic-cache studies, and multi-cuboid logs for §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cubes;
mod queries;

pub use cubes::{
    clustered_sparse_cube, seasonal_cube, skewed_cube, uniform_cube, InsuranceCube,
    INSURANCE_TYPES, STATES,
};
pub use queries::{sided_regions, synthetic_log, uniform_regions, zipf_regions, CuboidMix};
