//! Query-workload generators.

use olap_array::{Range, Region, Shape};
use olap_query::{DimSelection, QueryLog, RangeQuery};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Uniformly random regions: both endpoints drawn uniformly per dimension.
pub fn uniform_regions(shape: &Shape, count: usize, seed: u64) -> Vec<Region> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Region::new(
                shape
                    .dims()
                    .iter()
                    .map(|&n| {
                        let a = rng.random_range(0..n);
                        let b = rng.random_range(0..n);
                        Range::new(a.min(b), a.max(b)).expect("ordered")
                    })
                    .collect(),
            )
            .expect("d ≥ 1")
        })
        .collect()
}

/// Zipf-skewed regions: a pool of `pool` distinct uniform regions sampled
/// with frequency ∝ 1/rank^exponent. The repeat-heavy locality workload a
/// semantic result cache exploits — hot regions recur, the cold tail
/// misses.
///
/// # Panics
/// Panics when `pool == 0`.
pub fn zipf_regions(
    shape: &Shape,
    count: usize,
    pool: usize,
    exponent: f64,
    seed: u64,
) -> Vec<Region> {
    assert!(pool >= 1, "pool must hold at least one region");
    let candidates = uniform_regions(shape, pool, seed ^ 0x9e37_79b9_7f4a_7c15);
    let weights: Vec<f64> = (0..pool)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // Inverse-CDF walk on a uniform draw in [0, total).
            let mut x = (rng.next_u64() as f64 / u64::MAX as f64) * total;
            let mut pick = pool - 1;
            for (rank, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = rank;
                    break;
                }
                x -= w;
            }
            candidates[pick].clone()
        })
        .collect()
}

/// Regions with a fixed side length per dimension (clipped to the cube) at
/// uniformly random positions — the `α·b`-sided queries of Figure 11.
pub fn sided_regions(shape: &Shape, side: usize, count: usize, seed: u64) -> Vec<Region> {
    assert!(side >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Region::new(
                shape
                    .dims()
                    .iter()
                    .map(|&n| {
                        let s = side.min(n);
                        let lo = rng.random_range(0..=(n - s));
                        Range::new(lo, lo + s - 1).expect("ordered")
                    })
                    .collect(),
            )
            .expect("d ≥ 1")
        })
        .collect()
}

/// Specification of one query class in a synthetic log: which dimensions
/// carry ranges (the rest are `all`), how long those ranges are, and the
/// class's share of the log.
#[derive(Debug, Clone)]
pub struct CuboidMix {
    /// Dimensions that carry an active range.
    pub dims: Vec<usize>,
    /// Average range length per active dimension.
    pub side: usize,
    /// Number of queries of this class.
    pub count: usize,
}

/// Builds a multi-cuboid query log (the §9 planner's input).
pub fn synthetic_log(shape: &Shape, mixes: &[CuboidMix], seed: u64) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = QueryLog::new(shape.clone());
    for mix in mixes {
        for _ in 0..mix.count {
            let sels: Vec<DimSelection> = (0..shape.ndim())
                .map(|j| {
                    if mix.dims.contains(&j) {
                        let n = shape.dim(j);
                        let s = mix.side.clamp(2, n.saturating_sub(1).max(2));
                        let lo = rng.random_range(0..=(n - s));
                        DimSelection::span(lo, lo + s - 1).expect("ordered")
                    } else {
                        DimSelection::All
                    }
                })
                .collect();
            log.push(RangeQuery::new(sels).expect("d ≥ 1"));
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_regions_fit_shape() {
        let shape = Shape::new(&[30, 40]).unwrap();
        for r in uniform_regions(&shape, 50, 5) {
            assert!(shape.check_region(&r).is_ok());
        }
    }

    #[test]
    fn sided_regions_have_exact_side() {
        let shape = Shape::new(&[100, 100]).unwrap();
        for r in sided_regions(&shape, 17, 20, 5) {
            assert_eq!(r.side_lengths(), vec![17, 17]);
            assert!(shape.check_region(&r).is_ok());
        }
    }

    #[test]
    fn sided_regions_clip_to_small_dims() {
        let shape = Shape::new(&[5, 100]).unwrap();
        for r in sided_regions(&shape, 17, 10, 5) {
            assert_eq!(r.side_lengths(), vec![5, 17]);
        }
    }

    #[test]
    fn synthetic_log_assigns_cuboids() {
        let shape = Shape::new(&[100, 100, 100]).unwrap();
        let log = synthetic_log(
            &shape,
            &[
                CuboidMix {
                    dims: vec![0, 1],
                    side: 20,
                    count: 30,
                },
                CuboidMix {
                    dims: vec![2],
                    side: 50,
                    count: 10,
                },
            ],
            9,
        );
        assert_eq!(log.len(), 40);
        let stats = log.cuboid_stats();
        assert_eq!(stats.len(), 2);
        let c01 = stats
            .get(&olap_query::CuboidId::from_dims(&[0, 1]))
            .expect("⟨d1,d2⟩ present");
        assert_eq!(c01.num_queries, 30);
        assert!((c01.avg.side_lengths[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_regions_skew_toward_low_ranks() {
        let shape = Shape::new(&[60, 60]).unwrap();
        let regions = zipf_regions(&shape, 400, 16, 1.1, 7);
        assert_eq!(regions.len(), 400);
        for r in &regions {
            assert!(shape.check_region(r).is_ok());
        }
        // The pool bounds distinct regions, and repetition dominates: the
        // most frequent region must beat the uniform share by a wide
        // margin for the cache to have anything to hit.
        let mut counts = std::collections::HashMap::new();
        for r in &regions {
            *counts.entry(format!("{r}")).or_insert(0usize) += 1;
        }
        assert!(counts.len() <= 16);
        let top = counts.values().copied().max().unwrap();
        assert!(top * 16 > 2 * 400, "top region repeated only {top}×");
        assert_eq!(
            zipf_regions(&shape, 50, 8, 1.1, 3),
            zipf_regions(&shape, 50, 8, 1.1, 3)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let shape = Shape::new(&[50, 50]).unwrap();
        assert_eq!(uniform_regions(&shape, 5, 1), uniform_regions(&shape, 5, 1));
        assert_ne!(uniform_regions(&shape, 5, 1), uniform_regions(&shape, 5, 2));
    }
}
