//! The §9 physical-design advisor: given a query log and a space budget,
//! choose the dimensions, cuboids, and block sizes to precompute.
//!
//! ```text
//! cargo run --example advisor
//! ```

use olap_cube::array::Shape;
use olap_cube::planner::{
    choose_dimensions_exact, choose_dimensions_heuristic, optimal_block_size, selection_cost,
    GreedyPlanner,
};
use olap_cube::workload::{synthetic_log, CuboidMix};

fn main() {
    // A 5-dimensional cube (the paper: "typically 5 to 10" attributes).
    let shape = Shape::new(&[1000, 500, 100, 50, 20]).expect("valid shape");

    // A log dominated by range queries on d1×d2 and d1, with occasional
    // point lookups on d3 (passive).
    let log = synthetic_log(
        &shape,
        &[
            CuboidMix {
                dims: vec![0, 1],
                side: 100,
                count: 60,
            },
            CuboidMix {
                dims: vec![0],
                side: 400,
                count: 30,
            },
            CuboidMix {
                dims: vec![2],
                side: 2,
                count: 10,
            },
        ],
        2024,
    );
    println!("log: {} queries over a {:?} cube", log.len(), shape.dims());

    // §9.1 — which dimensions should carry prefix sums at all?
    let heuristic = choose_dimensions_heuristic(&log);
    let exact = choose_dimensions_exact(&log);
    println!(
        "dimension selection: heuristic X' = {heuristic:?} (cost {:.0}), exact X' = {exact:?} (cost {:.0})",
        selection_cost(&log, &heuristic),
        selection_cost(&log, &exact)
    );

    // §9.3 — the closed-form best block size for the dominant query class.
    let stats = log.cuboid_stats();
    for cs in stats.values() {
        if cs.cuboid.ndim() == 0 {
            continue;
        }
        let b = optimal_block_size(cs.avg.volume, cs.avg.surface, cs.cuboid.ndim());
        println!(
            "cuboid {}: {} queries, avg V={:.0} S={:.0} → optimal b = {}",
            cs.cuboid,
            cs.num_queries,
            cs.avg.volume,
            cs.avg.surface,
            b.map(|x| x.to_string())
                .unwrap_or_else(|| "1 (no blocking)".into())
        );
    }

    // §9.2 — greedy cuboid selection under shrinking space budgets.
    for budget in [1e9, 1e6, 5e4] {
        let planner = GreedyPlanner::new(shape.clone(), stats.clone(), budget);
        let plan = planner.plan();
        println!("budget {budget:>12.0} cells:");
        if plan.choices.is_empty() {
            println!("  (nothing fits — all queries scan)");
        }
        for c in &plan.choices {
            println!("  prefix sum on {} with block size {}", c.cuboid, c.block);
        }
        println!(
            "  expected cost {:.0} accesses (naive: {:.0}); space used {:.0}",
            plan.total_cost,
            planner.total_cost(&[]),
            plan.space_used
        );
    }

    // Materialize a plan end-to-end and answer the log with it (cuboid
    // slices + blocked prefix sums + routing). The advisory cube above is
    // 50 billion cells — planning needs only its statistics — so the
    // materialization demo runs on a laptop-sized cube of the same shape
    // family.
    use olap_cube::engine::PlannedIndex;
    use olap_cube::workload::uniform_cube;
    let small_shape = Shape::new(&[100, 50, 20, 10, 5]).expect("valid shape");
    let log = synthetic_log(
        &small_shape,
        &[
            CuboidMix {
                dims: vec![0, 1],
                side: 10,
                count: 60,
            },
            CuboidMix {
                dims: vec![0],
                side: 40,
                count: 30,
            },
            CuboidMix {
                dims: vec![2],
                side: 2,
                count: 10,
            },
        ],
        2025,
    );
    let stats = log.cuboid_stats();
    let cube = uniform_cube(small_shape.clone(), 100, 77);
    let planner = GreedyPlanner::new(small_shape, stats, 1e5);
    let plan = planner.plan();
    let index = PlannedIndex::build(cube.clone(), &plan.choices).expect("valid plan");
    let mut routed = 0usize;
    let mut accesses = 0u64;
    for q in log.queries() {
        if index.route(q).is_some() {
            routed += 1;
        }
        let (v, s) = index.range_sum(q).expect("valid query");
        let region = q.to_region(cube.shape()).expect("in domain");
        assert_eq!(v, cube.fold_region(&region, 0i64, |acc, &x| acc + x));
        accesses += s.total_accesses();
    }
    println!(
        "materialized plan: {}/{} queries routed to a structure; {} accesses total ({} prefix cells + {} slice cells of storage)",
        routed,
        log.len(),
        accesses,
        index.prefix_cells(),
        index.slice_cells()
    );

    println!("advisor example OK");
}
