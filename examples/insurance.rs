//! The paper's §1 motivating scenario: an insurance data cube with
//! dimensions age × year × state × type, and the range query
//! "revenue from customers aged 37–52, years 1988–1996, all of the U.S.,
//! auto insurance".
//!
//! Shows the cost gap the paper opens with: the extended-cube approach
//! needs 16·9 = 144 cell accesses, the prefix-sum approach at most 2^d.
//!
//! ```text
//! cargo run --example insurance
//! ```

use olap_aggregate::SumOp;
use olap_cube::engine::naive;
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::query::{DimSelection, RangeQuery};
use olap_cube::workload::InsuranceCube;

fn main() {
    let cube = InsuranceCube::generate(42);
    let a = &cube.revenue;
    println!(
        "insurance cube: {:?} = {} cells",
        a.shape().dims(),
        a.shape().len()
    );

    // The paper's query, written against attribute domains and mapped to
    // rank domains exactly as §2 prescribes.
    let query = RangeQuery::new(vec![
        DimSelection::span(InsuranceCube::age_rank(37), InsuranceCube::age_rank(52))
            .expect("age range"),
        DimSelection::span(
            InsuranceCube::year_rank(1988),
            InsuranceCube::year_rank(1996),
        )
        .expect("year range"),
        DimSelection::All,
        DimSelection::Single(InsuranceCube::type_rank("auto").expect("known type")),
    ])
    .expect("4 selections");
    let region = query.to_region(a.shape()).expect("in domain");
    println!("query: {region} (volume {})", region.volume());

    // Naive: scan every selected cell.
    let (naive_sum, naive_stats) =
        naive::range_aggregate(a, &SumOp::<i64>::new(), &region).expect("valid region");
    println!(
        "naive scan:        revenue = {naive_sum:>12}   cells accessed = {}",
        naive_stats.total_accesses()
    );

    // Basic prefix sums (§3): at most 2^d = 16 accesses, any query size.
    let ps = PrefixSumCube::build(a);
    let (ps_sum, ps_stats) = ps.range_sum_with_stats(&region).expect("valid region");
    println!(
        "prefix sum (§3):   revenue = {ps_sum:>12}   cells accessed = {}",
        ps_stats.total_accesses()
    );
    assert_eq!(ps_sum, naive_sum);

    // Blocked prefix sums (§4) with b = 10: 1/10^4 of the space… but the
    // cube has small dimensions, so storage is ⌈n_j/b⌉ per dimension.
    let bp = BlockedPrefixCube::build(a, 10).expect("valid block");
    let (bp_sum, bp_stats) = bp.range_sum_with_stats(a, &region).expect("valid region");
    println!(
        "blocked b=10 (§4): revenue = {bp_sum:>12}   cells accessed = {}   (P storage: {} cells vs {} basic)",
        bp_stats.total_accesses(),
        bp.packed_array().len(),
        ps.prefix_array().len(),
    );
    assert_eq!(bp_sum, naive_sum);
    // Note: b = 10 meets or exceeds three of this cube's four dimension
    // sizes (10, 50, 3), so almost no query sub-cube contains a complete
    // block and the blocked algorithm degrades toward the naive scan —
    // exactly why §9.3 chooses block sizes from the query statistics
    // rather than fixing one. See `examples/advisor.rs`.

    // The paper's singleton query "(all, 1995, all, auto)" — one cell in
    // the extended cube; here a range query over the rank domains.
    let singleton = RangeQuery::new(vec![
        DimSelection::All,
        DimSelection::Single(InsuranceCube::year_rank(1995)),
        DimSelection::All,
        DimSelection::Single(InsuranceCube::type_rank("auto").expect("known type")),
    ])
    .expect("4 selections");
    let sregion = singleton.to_region(a.shape()).expect("in domain");
    let (srev, sstats) = ps.range_sum_with_stats(&sregion).expect("valid region");
    println!(
        "(all, 1995, all, auto): revenue = {srev}   prefix accesses = {}",
        sstats.total_accesses()
    );

    println!("insurance example OK");
}
