//! The operator algebra of §1: the prefix-sum technique works for any
//! invertible ⊕ — SUM, COUNT, AVERAGE (via (sum, count) pairs), XOR,
//! PRODUCT on a zero-free domain — while MAX/MIN need only a total order.
//! Also shows ROLLING aggregates and the §11 progressive bounds.
//!
//! ```text
//! cargo run --example operators
//! ```

use olap_cube::aggregate::{AvgOp, AvgPair, NaturalOrder, ProductOp, ReverseOrder, XorOp};
use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::engine::rolling::rolling_aggregate;
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumArray, PrefixSumCube};
use olap_cube::range_max::MaxTree;

fn main() {
    let shape = Shape::new(&[8, 8]).expect("valid shape");
    let q = Region::from_bounds(&[(2, 5), (1, 6)]).expect("in bounds");

    // AVERAGE via (sum, count) pairs — one structure, exact averages.
    let sales = DenseArray::from_fn(shape.clone(), |i| {
        AvgPair::of((i[0] * 8 + i[1]) as f64 * 1.5)
    });
    let avg_ps = PrefixSumArray::with_op(&sales, AvgOp::<f64>::new());
    let pair = avg_ps.range_sum(&q).expect("valid query");
    println!(
        "AVERAGE over {q}: mean = {:.3} from sum {:.1} / count {}",
        pair.mean().expect("non-empty"),
        pair.sum,
        pair.count
    );

    // XOR — a self-inverse group (checksums over regions).
    let words = DenseArray::from_fn(shape.clone(), |i| {
        ((i[0] * 2654435761 + i[1]) % 4096) as u32
    });
    let xor_ps = PrefixSumArray::with_op(&words, XorOp::<u32>::new());
    let checksum = xor_ps.range_sum(&q).expect("valid query");
    println!("XOR checksum over {q}: {checksum:#06x}");

    // PRODUCT with division as ⊖ (zero-free domain): compound growth.
    let growth = DenseArray::from_fn(shape.clone(), |i| 1.0 + ((i[0] + i[1]) as f64) / 1000.0);
    let prod_ps = PrefixSumArray::with_op(&growth, ProductOp::new());
    println!(
        "PRODUCT (compound factor) over {q}: {:.6}",
        prod_ps.range_sum(&q).expect("valid query")
    );

    // MIN is MAX under the reversed order (§1).
    let temps = DenseArray::from_fn(shape.clone(), |i| (i[0] as i64 - 3) * (i[1] as i64 - 4));
    let min_tree = MaxTree::build(&temps, 2, ReverseOrder::new(NaturalOrder::<i64>::new()))
        .expect("fanout ≥ 2");
    let (at, v) = min_tree.range_max(&temps, &q).expect("valid query");
    println!("MIN over {q}: {v} at {at:?}");

    // ROLLING SUM (§1): slide a width-3 window along one dimension.
    let series = DenseArray::from_fn(Shape::new(&[12]).expect("valid"), |i| (i[0] * i[0]) as i64);
    let ps = PrefixSumCube::build(&series);
    let base = Region::from_bounds(&[(0, 11)]).expect("in bounds");
    let (windows, _) = rolling_aggregate(&ps, &base, 0, 3).expect("window fits");
    println!("ROLLING SUM (w=3) of squares: {windows:?}");

    // §11 progressive answers: bounds now, exact later.
    let revenue = DenseArray::from_fn(shape, |i| ((i[0] * 13 + i[1] * 7) % 90) as i64);
    let bp = BlockedPrefixCube::build(&revenue, 3).expect("valid block");
    let (bounds, stats) = bp.range_sum_bounds(&q).expect("valid query");
    let exact = bp.range_sum(&revenue, &q).expect("valid query");
    println!(
        "PROGRESSIVE over {q}: [{}, {}] from P alone ({} lookups), exact = {exact}",
        bounds.lower, bounds.upper, stats.p_cells
    );
    assert!(bounds.lower <= exact && exact <= bounds.upper);

    println!("operators example OK");
}
