//! The `Parallelism` knob, end to end: the same cube indexed under the
//! sequential default and under `Threads(4)`, with every answer and every
//! access count asserted identical at runtime.
//!
//! ```text
//! cargo run --example parallel_demo
//! cargo run --features parallel --example parallel_demo
//! ```
//!
//! Both invocations print byte-identical output: without the `parallel`
//! feature `Threads(n)` degrades to the sequential path, and with it the
//! same kernels are fanned across scoped threads — the executor only
//! changes *where* chunks run, never what they compute.

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::engine::{CubeIndex, IndexConfig, Parallelism, PrefixChoice};

fn build_index(par: Parallelism) -> CubeIndex<i64> {
    // A deterministic 48×48 cube: values from a small linear recurrence.
    let shape = Shape::new(&[48, 48]).expect("valid shape");
    let mut v = Vec::with_capacity(shape.len());
    let mut x: i64 = 7;
    for _ in 0..shape.len() {
        x = (x * 1103515245 + 12345) % 1000;
        v.push(x);
    }
    let a = DenseArray::from_vec(shape, v).expect("cell count matches");
    CubeIndex::build(
        a,
        IndexConfig {
            prefix: PrefixChoice::Blocked(8),
            max_tree_fanout: Some(4),
            parallelism: par,
            ..IndexConfig::default()
        },
    )
    .expect("valid config")
}

fn main() {
    let mut seq = build_index(Parallelism::Sequential);
    let mut par = build_index(Parallelism::Threads(4));

    let queries = [
        Region::from_bounds(&[(3, 17), (5, 40)]).expect("in bounds"),
        Region::from_bounds(&[(0, 47), (0, 47)]).expect("in bounds"),
        Region::from_bounds(&[(8, 8), (8, 8)]).expect("in bounds"),
    ];
    for q in &queries {
        let (s0, st0) = seq.range_sum(q).expect("valid query");
        let (s1, st1) = par.range_sum(q).expect("valid query");
        assert_eq!((s0, &st0), (s1, &st1), "sum diverged under Threads(4)");
        let (at0, m0, _) = seq.range_max(q).expect("valid query");
        let (at1, m1, _) = par.range_max(q).expect("valid query");
        assert_eq!((&at0, m0), (&at1, m1), "max diverged under Threads(4)");
        println!(
            "Sum{q} = {s0} ({} prefix + {} cube cells)   Max{q} = {m0} at {at0:?}",
            st0.p_cells, st0.a_cells
        );
    }

    // Batched updates route through the same executor: both indexes stay
    // identical after a §5 batch is applied under each strategy.
    let updates = [(vec![10usize, 10], 500i64), (vec![40, 3], -7)];
    seq.apply_updates_in_place(&updates).expect("valid updates");
    par.apply_updates_in_place(&updates).expect("valid updates");
    let all = seq.shape().full_region();
    let (t0, _) = seq.range_sum(&all).expect("valid query");
    let (t1, _) = par.range_sum(&all).expect("valid query");
    assert_eq!(t0, t1, "post-update totals diverged");
    println!("total after updates = {t0}");

    println!("parallel_demo OK (sequential and Threads(4) agree)");
}
