//! Persistence: build the precomputed structures once, write them to
//! disk, reload, and serve queries — the deployment cycle of an OLAP
//! system (precompute at night, serve all day).
//!
//! ```text
//! cargo run --example persistence
//! ```

use olap_cube::array::{Region, Shape};
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::range_max::NaturalMaxTree;
use olap_cube::storage;
use olap_cube::workload::uniform_cube;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let dir = std::env::temp_dir().join("olap-cube-persistence-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = |name: &str| dir.join(name);

    // Night: build everything and persist it.
    let a = uniform_cube(Shape::new(&[128, 128]).expect("valid"), 1000, 2024);
    let ps = PrefixSumCube::build(&a);
    let bp = BlockedPrefixCube::build(&a, 16).expect("valid block");
    let tree = NaturalMaxTree::for_values(&a, 4).expect("valid fanout");

    storage::write_dense_i64(
        &mut BufWriter::new(File::create(path("cube.olap")).expect("create")),
        &a,
    )
    .expect("write cube");
    storage::write_prefix_sum(
        &mut BufWriter::new(File::create(path("cube.psum")).expect("create")),
        &ps,
    )
    .expect("write prefix");
    storage::write_blocked_prefix(
        &mut BufWriter::new(File::create(path("cube.bps")).expect("create")),
        &bp,
    )
    .expect("write blocked");
    storage::write_max_tree(
        &mut BufWriter::new(File::create(path("cube.maxt")).expect("create")),
        &tree,
    )
    .expect("write tree");
    for name in ["cube.olap", "cube.psum", "cube.bps", "cube.maxt"] {
        let bytes = std::fs::metadata(path(name)).expect("stat").len();
        println!("wrote {name}: {bytes} bytes");
    }

    // Day: a fresh process reloads and serves.
    let a2 = storage::read_dense_i64(&mut BufReader::new(
        File::open(path("cube.olap")).expect("open"),
    ))
    .expect("read cube");
    let ps2 = storage::read_prefix_sum(&mut BufReader::new(
        File::open(path("cube.psum")).expect("open"),
    ))
    .expect("read prefix");
    let bp2 = storage::read_blocked_prefix(&mut BufReader::new(
        File::open(path("cube.bps")).expect("open"),
    ))
    .expect("read blocked");
    let tree2 = storage::read_max_tree(&mut BufReader::new(
        File::open(path("cube.maxt")).expect("open"),
    ))
    .expect("read tree");
    tree2
        .check_invariants(&a2)
        .expect("reloaded tree is consistent");

    let q = Region::from_bounds(&[(10, 100), (37, 90)]).expect("in bounds");
    let naive = a2.fold_region(&q, 0i64, |s, &x| s + x);
    assert_eq!(ps2.range_sum(&q).expect("valid"), naive);
    assert_eq!(bp2.range_sum(&a2, &q).expect("valid"), naive);
    let (at, max) = tree2.range_max(&a2, &q).expect("valid");
    println!("reloaded structures agree: sum = {naive}, max = {max} at {at:?}");

    println!("persistence example OK");
}
