//! Quickstart: the paper's Figure-1 cube, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::engine::{CubeIndex, IndexConfig};

fn main() {
    // Figure 1 of the paper: a 3×6 cube A (rows × columns).
    let a = DenseArray::from_vec(
        Shape::new(&[3, 6]).expect("valid shape"),
        vec![
            3, 5, 1, 2, 2, 3, //
            7, 3, 2, 6, 8, 2, //
            2, 4, 2, 3, 3, 5,
        ],
    )
    .expect("18 cells");

    // Build an index: basic prefix sums (§3) + a range-max tree (§6).
    let mut index = CubeIndex::build(a, IndexConfig::default()).expect("valid config");

    // The worked example under Theorem 1: Sum(2:3, 1:2) = 13
    // (the paper's first coordinate runs along Figure 1's columns; in our
    // row-major layout that query is rows 1:2 × columns 2:3).
    let q = Region::from_bounds(&[(1, 2), (2, 3)]).expect("in bounds");
    let (sum, stats) = index.range_sum(&q).expect("valid query");
    println!("Sum{q} = {sum}  ({} prefix cells read)", stats.p_cells);
    assert_eq!(sum, 13);

    // Range-max over the same region.
    let (at, max, _) = index.range_max(&q).expect("valid query");
    println!("Max{q} = {max} at {at:?}");

    // Batched updates keep every structure consistent (§5, §7).
    index
        .apply_updates_in_place(&[(vec![0, 0], 10), (vec![2, 5], 0)])
        .expect("valid updates");
    let all = index.shape().full_region();
    let (total, _) = index.range_sum(&all).expect("valid query");
    println!("total after updates = {total}");
    assert_eq!(total, 63 + (10 - 3) + (0 - 5));

    println!("quickstart OK");
}
