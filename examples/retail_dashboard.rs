//! A retail "dashboard" session: an attribute schema over a sales cube,
//! attribute-level queries (the §2 rank mapping), rolling windows, MIN and
//! MAX, and the §11 progressive bounds — the interactive exploration
//! setting the paper's introduction motivates.
//!
//! ```text
//! cargo run --example retail_dashboard
//! ```

use olap_cube::array::Shape;
use olap_cube::engine::rolling::rolling_aggregate;
use olap_cube::engine::{CubeIndex, IndexConfig, PrefixChoice};
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::query::CubeSchema;
use olap_cube::workload::seasonal_cube;

fn main() {
    // Schema: day (1..=364) × store (12) × category (8).
    let schema = CubeSchema::new(vec![
        CubeSchema::integer("day", 1, 364),
        CubeSchema::categorical(
            "store",
            &[
                "SEA-1", "SEA-2", "PDX-1", "SFO-1", "SFO-2", "LAX-1", "LAX-2", "DEN-1", "CHI-1",
                "NYC-1", "NYC-2", "BOS-1",
            ],
        ),
        CubeSchema::categorical(
            "category",
            &[
                "produce",
                "dairy",
                "bakery",
                "meat",
                "frozen",
                "household",
                "beauty",
                "pharmacy",
            ],
        ),
    ]);
    let shape: Shape = schema.shape().expect("valid schema");
    println!(
        "sales cube: {:?} = {} cells ({} attributes)",
        shape.dims(),
        shape.len(),
        schema.attributes().len()
    );
    let sales = seasonal_cube(shape.clone(), 1_000, 7);

    // Index: basic prefix sums + max and min trees.
    let index = CubeIndex::build(
        sales.clone(),
        IndexConfig {
            prefix: PrefixChoice::Basic,
            max_tree_fanout: Some(4),
            min_tree_fanout: Some(4),
            sum_tree_fanout: None,
            ..IndexConfig::default()
        },
    )
    .expect("valid config");

    // Q1: total Q1 revenue for dairy across all stores.
    let q1 = schema
        .query()
        .range("day", 1, 90)
        .expect("in domain")
        .eq("category", "dairy")
        .expect("known category")
        .build()
        .expect("valid query")
        .to_region(&shape)
        .expect("in shape");
    let (total, stats) = index.range_sum(&q1).expect("valid region");
    println!(
        "Q1 dairy, all stores: {total} ({} lookups for a {}-cell region)",
        stats.total_accesses(),
        q1.volume()
    );
    println!("  {}", index.explain_sum(&q1).expect("valid region"));

    // Q2: best and worst single day×store cell for produce in summer.
    let summer = schema
        .query()
        .range("day", 152, 243)
        .expect("in domain")
        .eq("category", "produce")
        .expect("known category")
        .build()
        .expect("valid query")
        .to_region(&shape)
        .expect("in shape");
    let (at_max, best, _) = index.range_max(&summer).expect("valid region");
    let (at_min, worst, _) = index.range_min(&summer).expect("valid region");
    let store_name = |i: usize| schema.attributes()[1].name.clone() + ":" + &i.to_string();
    println!(
        "summer produce: best cell {best} at day {} {}, worst {worst} at day {} {}",
        at_max[0] + 1,
        store_name(at_max[1]),
        at_min[0] + 1,
        store_name(at_min[1])
    );

    // Q3: 7-day rolling revenue for one store, all categories (ROLLING
    // SUM is a special case of range-sum, §1).
    let ps = PrefixSumCube::build(&sales);
    let nyc = schema.rank_category("store", "NYC-1").expect("known store");
    let base =
        olap_cube::array::Region::from_bounds(&[(0, 27), (nyc, nyc), (0, 7)]).expect("in bounds");
    let (weekly, _) = rolling_aggregate(&ps, &base, 0, 7).expect("window fits");
    println!(
        "NYC-1 7-day rolling revenue, first 4 weeks: {:?} …",
        &weekly[..4.min(weekly.len())]
    );

    // Q4: progressive answer on a space-constrained replica (§11).
    let bp = BlockedPrefixCube::build(&sales, 16).expect("valid block");
    let (bounds, s) = bp.range_sum_bounds(&q1).expect("valid region");
    println!(
        "progressive Q1 bounds from a 1/16³-space replica: [{}, {}] after {} lookups",
        bounds.lower,
        bounds.upper,
        s.total_accesses()
    );
    assert!(bounds.lower <= total && total <= bounds.upper);

    println!("retail dashboard OK");
}
