//! Sparse cubes (§10): dense-region discovery, region-local prefix sums
//! behind an R*-tree, and branch-and-bound range-max over an R-tree.
//!
//! ```text
//! cargo run --example sparse_cube
//! ```

use olap_array::Range;
use olap_cube::array::{Region, Shape};
use olap_cube::sparse::{Sparse1dPrefixSum, SparseCube, SparseRangeMax, SparseRangeSum};
use olap_cube::workload::clustered_sparse_cube;

fn main() {
    // A 500×500 cube with 4 dense 20×20 clusters plus background noise —
    // the "dense sub-clusters" shape the paper calls canonical (§1).
    let shape = Shape::new(&[500, 500]).expect("valid shape");
    let points = clustered_sparse_cube(&shape, 4, 20, 400, 100, 99);
    let cube = SparseCube::new(shape.clone(), points).expect("valid points");
    println!(
        "sparse cube: {} points in {} cells (density {:.2}%)",
        cube.len(),
        shape.len(),
        cube.density() * 100.0
    );

    // §10.2: dense regions + R*-tree + per-region prefix sums.
    let sum_engine = SparseRangeSum::build(&cube).expect("valid cube");
    println!(
        "found {} dense regions ({} outliers); prefix storage {} cells vs {} if densified",
        sum_engine.region_count(),
        sum_engine.outlier_count(),
        sum_engine.prefix_cells(),
        shape.len()
    );

    let queries = [
        Region::from_bounds(&[(0, 499), (0, 499)]).expect("in bounds"),
        Region::from_bounds(&[(100, 299), (100, 299)]).expect("in bounds"),
        Region::from_bounds(&[(0, 49), (450, 499)]).expect("in bounds"),
    ];
    for q in &queries {
        let (sum, stats) = sum_engine.range_sum_with_stats(q).expect("valid query");
        let naive: i64 = cube.points_in(q).map(|(_, v)| *v).sum();
        assert_eq!(sum, naive);
        println!(
            "Sum{q} = {sum}  (R*-tree nodes: {}, prefix cells: {})",
            stats.tree_nodes, stats.p_cells
        );
    }

    // §10.3: range-max via a max-annotated R-tree with branch-and-bound.
    let max_engine = SparseRangeMax::build(&cube);
    for q in &queries {
        let (result, stats) = max_engine.range_max_with_stats(q).expect("valid query");
        match result {
            Some((at, v)) => println!(
                "Max{q} = {v} at {at:?}  ({} nodes visited)",
                stats.tree_nodes
            ),
            None => println!("Max{q}: region holds no points"),
        }
    }

    // §10.1: the one-dimensional case over a B+-tree of sparse prefixes.
    let n = 1_000_000;
    let pts: Vec<(usize, i64)> = (0..2000).map(|i| (i * 499, (i % 97) as i64)).collect();
    let one_d = Sparse1dPrefixSum::build(n, &pts).expect("valid points");
    let (v, stats) = one_d
        .range_sum_with_stats(Range::new(250_000, 750_000).expect("ordered"))
        .expect("in domain");
    println!(
        "1-d sparse: Sum(250000:750000) = {v} with {} B+-tree node visits over {} stored prefixes",
        stats.tree_nodes,
        one_d.len()
    );

    println!("sparse cube example OK");
}
