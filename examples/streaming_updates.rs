//! The §5/§7 OLAP update model: queries all day, one combined batch of
//! updates at midnight.
//!
//! Compares the Theorem-2 batched prefix-sum update against applying the
//! same updates one at a time, and shows the max tree absorbing the batch
//! via the tag protocol.
//!
//! ```text
//! cargo run --example streaming_updates
//! ```

use olap_cube::array::Shape;
use olap_cube::prefix_sum::batch::{self, CellUpdate};
use olap_cube::prefix_sum::PrefixSumCube;
use olap_cube::range_max::{NaturalMaxTree, PointUpdate};
use olap_cube::workload::{uniform_cube, uniform_regions};

fn main() {
    let shape = Shape::new(&[64, 64, 16]).expect("valid shape");
    let mut a = uniform_cube(shape.clone(), 1000, 7);
    let mut ps = PrefixSumCube::build(&a);
    let mut tree = NaturalMaxTree::for_values(&a, 4).expect("fanout ≥ 2");

    // Simulate 5 "days": daytime queries, then a nightly update batch.
    for day in 1..=5u64 {
        // Daytime: answer some ad-hoc range queries.
        let queries = uniform_regions(&shape, 50, day);
        let mut total_accesses = 0u64;
        for q in &queries {
            let (_, s) = ps.range_sum_with_stats(q).expect("valid query");
            total_accesses += s.total_accesses();
        }
        println!(
            "day {day}: answered {} queries with {} total accesses ({}/query; naive would need {} cells/query on average)",
            queries.len(),
            total_accesses,
            total_accesses / queries.len() as u64,
            queries.iter().map(|q| q.volume()).sum::<usize>() / queries.len(),
        );

        // Midnight: k updates cumulated during the day.
        let k = 8;
        let updates: Vec<CellUpdate<i64>> = (0..k)
            .map(|i| {
                let idx = vec![
                    ((day * 13 + i * 7) % 64) as usize,
                    ((day * 29 + i * 3) % 64) as usize,
                    ((day * 5 + i) % 16) as usize,
                ];
                CellUpdate::new(&idx, (day as i64 * 10 + i as i64) - 25)
            })
            .collect();

        // Theorem-2 bound vs actual region count.
        let regions = batch::apply_batch(&mut ps, &updates).expect("valid updates");
        println!(
            "  nightly batch: k={k} updates → {regions} update regions (Theorem 2 bound: {:.0})",
            batch::max_regions(k as usize, 3)
        );

        // The max tree takes (index, new-value) points; reuse the deltas as
        // absolute assignments relative to the current cube.
        let points: Vec<PointUpdate<i64>> = updates
            .iter()
            .map(|u| PointUpdate::new(&u.index, *a.get(&u.index) + u.delta))
            .collect();
        // Keep the cube in sync for the prefix structure's ground truth.
        let stats = tree.batch_update(&mut a, &points).expect("valid updates");
        println!(
            "  max tree: absorbed the batch touching {} nodes (height {})",
            stats.total_accesses(),
            tree.height()
        );
        tree.check_invariants(&a).expect("tree stays consistent");

        // Verify consistency: prefix-sum results equal a fresh rebuild.
        let fresh = PrefixSumCube::build(&a);
        assert_eq!(
            ps.prefix_array().as_slice(),
            fresh.prefix_array().as_slice(),
            "incremental P must equal rebuilt P"
        );
    }

    println!("streaming updates OK");
}
