//! # olap-cube
//!
//! A production-quality Rust reproduction of **"Range Queries in OLAP Data
//! Cubes"** (Ching-Tien Ho, Rakesh Agrawal, Nimrod Megiddo, Ramakrishnan
//! Srikant; SIGMOD 1997).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! | Module | Contents | Paper section |
//! |---|---|---|
//! | [`array`](mod@array) | dense d-dimensional array substrate | §2 |
//! | [`aggregate`] | operator algebra (SUM/COUNT/AVG/XOR/PRODUCT/MAX/MIN) | §1–§2 |
//! | [`query`] | ranges, regions, query statistics and logs | §2, Table 1 |
//! | [`prefix_sum`] | prefix-sum & blocked prefix-sum range-sum, batch updates | §3–§5 |
//! | [`range_max`] | branch-and-bound block-tree range-max, batch updates | §6–§7 |
//! | [`tree_sum`] | tree-hierarchy range-sum baseline | §8 |
//! | [`planner`] | cost models, dimension/cuboid/block-size selection | §8–§9 |
//! | [`sparse`] | R*-tree, B+-tree, dense-region finder, sparse engines | §10 |
//! | [`workload`] | seeded cube and query generators | evaluation |
//! | [`engine`] | unified engines, planned indexes, naive baselines | all |
//! | [`server`] | sharded snapshot-isolated serving, load driver | deployment |
//! | [`storage`] | binary persistence for cubes and structures | deployment |
//!
//! ## Quickstart
//!
//! ```
//! use olap_cube::array::{DenseArray, Region, Shape};
//! use olap_cube::prefix_sum::PrefixSumCube;
//!
//! // Figure 1 of the paper: a 3×6 cube.
//! let a = DenseArray::from_vec(
//!     Shape::new(&[3, 6]).unwrap(),
//!     vec![3i64, 5, 1, 2, 2, 3, 7, 3, 2, 6, 8, 2, 2, 4, 2, 3, 3, 5],
//! )
//! .unwrap();
//! let ps = PrefixSumCube::build(&a);
//! // Sum(2:3, 1:2) — the worked example below Theorem 1 (note the paper
//! // indexes dimension 1 along the horizontal axis of Figure 1).
//! let q = Region::from_bounds(&[(1, 2), (2, 3)]).unwrap();
//! assert_eq!(ps.range_sum(&q).unwrap(), 13);
//! ```

pub use olap_aggregate as aggregate;
pub use olap_array as array;
pub use olap_engine as engine;
pub use olap_planner as planner;
pub use olap_prefix_sum as prefix_sum;
pub use olap_query as query;
pub use olap_range_max as range_max;
pub use olap_server as server;
pub use olap_sparse as sparse;
pub use olap_storage as storage;
pub use olap_tree_sum as tree_sum;
pub use olap_workload as workload;
