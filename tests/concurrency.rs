//! Read-path concurrency: the OLAP setting is read-mostly, so all query
//! structures must be shareable across threads (`Send + Sync`) and give
//! identical answers under concurrent access. No locking is involved —
//! queries take `&self`.

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::range_max::NaturalMaxTree;
use olap_cube::sparse::{SparseCube, SparseRangeSum};
use olap_cube::workload::{uniform_cube, uniform_regions};
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn structures_are_send_and_sync() {
    assert_send_sync::<DenseArray<i64>>();
    assert_send_sync::<PrefixSumCube<i64>>();
    assert_send_sync::<BlockedPrefixCube<i64>>();
    assert_send_sync::<NaturalMaxTree<i64>>();
    assert_send_sync::<SparseRangeSum<olap_cube::aggregate::SumOp<i64>>>();
}

#[test]
fn concurrent_queries_agree_with_serial() {
    let shape = Shape::new(&[128, 96]).unwrap();
    let a = Arc::new(uniform_cube(shape.clone(), 1000, 77));
    let ps = Arc::new(PrefixSumCube::build(&a));
    let bp = Arc::new(BlockedPrefixCube::build(&a, 8).unwrap());
    let tree = Arc::new(NaturalMaxTree::for_values(&a, 4).unwrap());
    let queries = Arc::new(uniform_regions(&shape, 200, 78));

    // Serial ground truth.
    let expected: Vec<(i64, i64)> = queries
        .iter()
        .map(|q| {
            (
                a.fold_region(q, 0i64, |s, &x| s + x),
                a.fold_region(q, i64::MIN, |m, &x| m.max(x)),
            )
        })
        .collect();
    let expected = Arc::new(expected);

    let mut handles = Vec::new();
    for t in 0..4usize {
        let (a, ps, bp, tree, queries, expected) = (
            Arc::clone(&a),
            Arc::clone(&ps),
            Arc::clone(&bp),
            Arc::clone(&tree),
            Arc::clone(&queries),
            Arc::clone(&expected),
        );
        handles.push(std::thread::spawn(move || {
            // Each thread walks the queries from a different offset.
            for i in 0..queries.len() {
                let k = (i + t * 53) % queries.len();
                let q: &Region = &queries[k];
                let (want_sum, want_max) = expected[k];
                assert_eq!(ps.range_sum(q).unwrap(), want_sum);
                assert_eq!(bp.range_sum(&a, q).unwrap(), want_sum);
                assert_eq!(tree.range_max(&a, q).unwrap().1, want_max);
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
}

#[test]
fn concurrent_sparse_queries() {
    let shape = Shape::new(&[200, 200]).unwrap();
    let pts = olap_cube::workload::clustered_sparse_cube(&shape, 3, 15, 300, 50, 5);
    let cube = Arc::new(SparseCube::new(shape.clone(), pts).unwrap());
    let engine = Arc::new(SparseRangeSum::build(&cube).unwrap());
    let queries = Arc::new(uniform_regions(&shape, 60, 6));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let (cube, engine, queries) =
            (Arc::clone(&cube), Arc::clone(&engine), Arc::clone(&queries));
        handles.push(std::thread::spawn(move || {
            for q in queries.iter() {
                let expected: i64 = cube.points_in(q).map(|(_, v)| *v).sum();
                assert_eq!(engine.range_sum(q).unwrap(), expected);
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
}
