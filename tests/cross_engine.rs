//! Cross-crate integration: every backend family answers the same
//! [`RangeQuery`] through the [`RangeEngine`] trait, and they must all
//! agree — on sums, extrema, and after updates applied through the trait.

use olap_cube::aggregate::SumOp;
use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::engine::{
    CubeIndex, EngineError, ExtendedCube, IndexConfig, NaiveEngine, Parallelism, PlannedIndex,
    PrefixChoice, RangeEngine, SparseMaxEngine, SparseSumEngine, SumTreeEngine,
};
use olap_cube::planner::PrefixSumChoice;
use olap_cube::query::{CuboidId, RangeQuery};
use olap_cube::workload::{skewed_cube, uniform_cube, uniform_regions};

type Engines = Vec<Box<dyn RangeEngine<i64>>>;

fn config(prefix: PrefixChoice, sum_tree: Option<usize>) -> IndexConfig {
    IndexConfig {
        prefix,
        max_tree_fanout: None,
        min_tree_fanout: None,
        sum_tree_fanout: sum_tree,
        parallelism: Parallelism::Sequential,
        ..IndexConfig::default()
    }
}

/// Every range-sum backend family over one dense cube: the naive scan,
/// `CubeIndex` in each §3/§4/§8 configuration, the standalone tree-sum
/// engine, the \[GBLP96\] extended cube, the §9 planned index, and the
/// §10.2 sparse engine.
fn sum_engines(a: &DenseArray<i64>) -> Engines {
    let full_cuboid: Vec<usize> = (0..a.shape().ndim()).collect();
    let mut engines: Engines = vec![
        Box::new(NaiveEngine::new(a.clone())),
        Box::new(CubeIndex::build(a.clone(), config(PrefixChoice::Basic, None)).unwrap()),
        Box::new(CubeIndex::build(a.clone(), config(PrefixChoice::None, Some(3))).unwrap()),
        Box::new(CubeIndex::build(a.clone(), config(PrefixChoice::None, None)).unwrap()),
        Box::new(SumTreeEngine::build(a.clone(), 3).unwrap()),
        Box::new(ExtendedCube::build(a, SumOp::new()).unwrap()),
        Box::new(
            PlannedIndex::build(
                a.clone(),
                &[PrefixSumChoice {
                    cuboid: CuboidId::from_dims(&full_cuboid),
                    block: 4,
                }],
            )
            .unwrap(),
        ),
        Box::new(SparseSumEngine::from_dense(a).unwrap()),
    ];
    for b in [2usize, 5, 8, 16] {
        engines.push(Box::new(
            CubeIndex::build(a.clone(), config(PrefixChoice::Blocked(b), None)).unwrap(),
        ));
    }
    engines
}

fn ground_truth_sum(a: &DenseArray<i64>, region: &Region) -> i64 {
    a.fold_region(region, 0i64, |s, &x| s + x)
}

#[test]
fn all_sum_engines_agree_2d() {
    let shape = Shape::new(&[40, 33]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 1);
    let engines = sum_engines(&a);
    for region in uniform_regions(&shape, 60, 2) {
        let q = RangeQuery::from_region(&region);
        let expected = ground_truth_sum(&a, &region);
        for e in &engines {
            let out = e.range_sum(&q).unwrap();
            assert_eq!(out.value(), Some(&expected), "{} {region}", e.label());
            assert!(
                e.estimate(&q).is_finite() && e.estimate(&q) > 0.0,
                "{} estimate for {region}",
                e.label()
            );
        }
    }
}

#[test]
fn all_sum_engines_agree_4d() {
    let shape = Shape::new(&[7, 6, 5, 4]).unwrap();
    let a = uniform_cube(shape.clone(), 50, 3);
    let engines = sum_engines(&a);
    for region in uniform_regions(&shape, 80, 4) {
        let q = RangeQuery::from_region(&region);
        let expected = ground_truth_sum(&a, &region);
        for e in &engines {
            let out = e.range_sum(&q).unwrap();
            assert_eq!(out.value(), Some(&expected), "{} {region}", e.label());
        }
    }
}

#[test]
fn all_extremum_engines_agree() {
    let shape = Shape::new(&[50, 30]).unwrap();
    let a = skewed_cube(shape.clone(), 10_000, 5);
    let mut max_engines: Engines = vec![
        Box::new(NaiveEngine::new(a.clone())),
        Box::new(SparseMaxEngine::from_dense(&a)),
    ];
    for b in [2usize, 3, 4] {
        let cfg = IndexConfig {
            prefix: PrefixChoice::None,
            max_tree_fanout: Some(b),
            min_tree_fanout: Some(b),
            sum_tree_fanout: None,
            parallelism: Parallelism::Sequential,
            ..IndexConfig::default()
        };
        max_engines.push(Box::new(CubeIndex::build(a.clone(), cfg).unwrap()));
    }
    for region in uniform_regions(&shape, 60, 6) {
        let q = RangeQuery::from_region(&region);
        let emax = a.fold_region(&region, i64::MIN, |m, &x| m.max(x));
        let emin = a.fold_region(&region, i64::MAX, |m, &x| m.min(x));
        for e in &max_engines {
            let out = e.range_max(&q).unwrap();
            assert_eq!(out.value(), Some(&emax), "max {} {region}", e.label());
            if e.capabilities().range_min {
                let out = e.range_min(&q).unwrap();
                assert_eq!(out.value(), Some(&emin), "min {} {region}", e.label());
            }
        }
    }
}

#[test]
fn capabilities_are_honest() {
    let a = uniform_cube(Shape::new(&[12, 12]).unwrap(), 100, 7);
    let engines = sum_engines(&a);
    let q = RangeQuery::from_region(&Region::from_bounds(&[(1, 8), (2, 9)]).unwrap());
    for e in &engines {
        let caps = e.capabilities();
        assert!(caps.range_sum, "{}", e.label());
        if !caps.range_max {
            assert!(
                matches!(e.range_max(&q), Err(EngineError::Unsupported { .. })),
                "{} advertises no range_max but answered",
                e.label()
            );
        }
        if !caps.range_min {
            assert!(matches!(
                e.range_min(&q),
                Err(EngineError::Unsupported { .. })
            ));
        }
    }
}

#[test]
fn updates_flow_through_the_trait() {
    let shape = Shape::new(&[16, 12]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 8);
    let mut engines: Engines = sum_engines(&a)
        .into_iter()
        .filter(|e| e.capabilities().updates)
        .collect();
    assert!(engines.len() >= 4, "naive, cube-index, tree-sum, sparse");
    let updates: Vec<(Vec<usize>, i64)> = vec![
        (vec![0, 0], 5000),
        (vec![15, 11], -77),
        (vec![7, 7], 0),
        (vec![7, 7], 123), // later update to the same cell wins
    ];
    let mut shadow = a.clone();
    for (idx, v) in &updates {
        *shadow.get_mut(idx) = *v;
    }
    for e in &mut engines {
        let derived = e.apply_updates(&updates).unwrap();
        *e = derived.engine;
    }
    for region in uniform_regions(&shape, 30, 9) {
        let q = RangeQuery::from_region(&region);
        let expected = ground_truth_sum(&shadow, &region);
        for e in &engines {
            let out = e.range_sum(&q).unwrap();
            assert_eq!(out.value(), Some(&expected), "{} {region}", e.label());
        }
    }
}

#[test]
fn prefix_sum_cost_is_constant_while_naive_grows() {
    // The §11 claim, observed through the trait's AccessStats: the naive
    // scan's cost grows with query volume while the §3 prefix sum stays at
    // 2^d, and the analytic estimates track the same shape.
    let shape = Shape::new(&[256, 256]).unwrap();
    let a = uniform_cube(shape, 100, 11);
    let naive: Box<dyn RangeEngine<i64>> = Box::new(NaiveEngine::new(a.clone()));
    let prefix: Box<dyn RangeEngine<i64>> =
        Box::new(CubeIndex::build(a, config(PrefixChoice::Basic, None)).unwrap());
    let mut last_naive = 0u64;
    for side in [4usize, 16, 64, 192] {
        let region = Region::from_bounds(&[(10, 9 + side), (20, 19 + side)]).unwrap();
        let q = RangeQuery::from_region(&region);
        let ncost = naive.range_sum(&q).unwrap().cost();
        assert!(ncost > last_naive);
        last_naive = ncost;
        assert!(naive.estimate(&q) >= (side * side) as f64);
        let pout = prefix.range_sum(&q).unwrap();
        assert!(pout.cost() <= 4, "prefix stays ≤ 2^d");
        assert_eq!(prefix.estimate(&q), 4.0);
    }
}
