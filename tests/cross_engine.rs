//! Cross-crate integration: every range-sum engine and every range-max
//! engine in the workspace must agree on the same cubes and queries.

use olap_array::Shape;
use olap_cube::aggregate::{NaturalOrder, SumOp};
use olap_cube::engine::{naive, CubeIndex, IndexConfig, PrefixChoice};
use olap_cube::prefix_sum::{BlockedPrefixCube, BoundaryPolicy, PrefixSumCube};
use olap_cube::range_max::{NaturalMaxTree, SearchOptions};
use olap_cube::sparse::{SparseCube, SparseRangeMax, SparseRangeSum};
use olap_cube::tree_sum::SumTreeCube;
use olap_cube::workload::{skewed_cube, uniform_cube, uniform_regions};

#[test]
fn all_sum_engines_agree_2d() {
    let shape = Shape::new(&[40, 33]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 1);
    let ps = PrefixSumCube::build(&a);
    let blocked: Vec<_> = [2usize, 5, 8, 16]
        .iter()
        .map(|&b| BlockedPrefixCube::build(&a, b).unwrap())
        .collect();
    let st = SumTreeCube::build(&a, 3).unwrap();
    let sparse = SparseRangeSum::build(&SparseCube::from_dense(&a, |&v| v == 0)).unwrap();
    for q in uniform_regions(&shape, 60, 2) {
        let (expected, _) = naive::range_aggregate(&a, &SumOp::<i64>::new(), &q).unwrap();
        assert_eq!(ps.range_sum(&q).unwrap(), expected, "prefix {q}");
        for bp in &blocked {
            for policy in [
                BoundaryPolicy::Auto,
                BoundaryPolicy::AlwaysDirect,
                BoundaryPolicy::AlwaysComplement,
            ] {
                let (v, _) = bp.range_sum_with_policy(&a, &q, policy).unwrap();
                assert_eq!(v, expected, "blocked b={} {q} {policy:?}", bp.block_size());
            }
        }
        for complement in [true, false] {
            let (v, _) = st.range_sum_with_stats(&a, &q, complement).unwrap();
            assert_eq!(v, expected, "tree-sum {q}");
        }
        assert_eq!(sparse.range_sum(&q).unwrap(), expected, "sparse {q}");
    }
}

#[test]
fn all_sum_engines_agree_4d() {
    let shape = Shape::new(&[7, 6, 5, 4]).unwrap();
    let a = uniform_cube(shape.clone(), 50, 3);
    let ps = PrefixSumCube::build(&a);
    let bp = BlockedPrefixCube::build(&a, 3).unwrap();
    let st = SumTreeCube::build(&a, 2).unwrap();
    for q in uniform_regions(&shape, 80, 4) {
        let (expected, _) = naive::range_aggregate(&a, &SumOp::<i64>::new(), &q).unwrap();
        assert_eq!(ps.range_sum(&q).unwrap(), expected);
        assert_eq!(bp.range_sum(&a, &q).unwrap(), expected);
        assert_eq!(st.range_sum(&a, &q).unwrap(), expected);
    }
}

#[test]
fn all_max_engines_agree() {
    let shape = Shape::new(&[50, 30]).unwrap();
    let a = skewed_cube(shape.clone(), 10_000, 5);
    let trees: Vec<_> = [2usize, 3, 4]
        .iter()
        .map(|&b| NaturalMaxTree::for_values(&a, b).unwrap())
        .collect();
    let sparse = SparseRangeMax::build(&SparseCube::from_dense(&a, |_| false));
    for q in uniform_regions(&shape, 60, 6) {
        let (_, expected, _) = naive::range_max(&a, &NaturalOrder::<i64>::new(), &q).unwrap();
        for t in &trees {
            for bb in [true, false] {
                let opts = SearchOptions {
                    branch_and_bound: bb,
                    ..Default::default()
                };
                let (_, v, _) = t.range_max_with_options(&a, &q, opts).unwrap();
                assert_eq!(v, expected, "tree b={} {q}", t.fanout());
            }
        }
        let got = sparse
            .range_max(&q)
            .unwrap()
            .expect("dense-derived cube has points");
        assert_eq!(got.1, expected, "sparse {q}");
    }
}

#[test]
fn cube_index_routes_like_direct_engines() {
    let shape = Shape::new(&[20, 20, 8]).unwrap();
    let a = uniform_cube(shape.clone(), 200, 9);
    let configs = [
        IndexConfig {
            prefix: PrefixChoice::Basic,
            max_tree_fanout: Some(2),
            min_tree_fanout: None,
            sum_tree_fanout: None,
            ..IndexConfig::default()
        },
        IndexConfig {
            prefix: PrefixChoice::Blocked(4),
            max_tree_fanout: Some(4),
            min_tree_fanout: Some(3),
            sum_tree_fanout: Some(2),
            ..IndexConfig::default()
        },
        IndexConfig {
            prefix: PrefixChoice::None,
            max_tree_fanout: None,
            min_tree_fanout: None,
            sum_tree_fanout: Some(3),
            ..IndexConfig::default()
        },
        IndexConfig {
            prefix: PrefixChoice::None,
            max_tree_fanout: None,
            min_tree_fanout: None,
            sum_tree_fanout: None,
            ..IndexConfig::default()
        },
    ];
    let indexes: Vec<_> = configs
        .iter()
        .map(|&cfg| CubeIndex::build(a.clone(), cfg).unwrap())
        .collect();
    for q in uniform_regions(&shape, 40, 10) {
        let (expected, _) = naive::range_aggregate(&a, &SumOp::<i64>::new(), &q).unwrap();
        let (_, emax, _) = naive::range_max(&a, &NaturalOrder::<i64>::new(), &q).unwrap();
        for (idx, cfg) in indexes.iter().zip(&configs) {
            let (s, _) = idx.range_sum(&q).unwrap();
            assert_eq!(s, expected, "{cfg:?} {q}");
            let (_, m, _) = idx.range_max(&q).unwrap();
            assert_eq!(m, emax, "{cfg:?} {q}");
        }
    }
}

#[test]
fn prefix_sum_cost_is_constant_while_naive_grows() {
    // The §11 claim: precomputation wins more as query volume grows.
    let shape = Shape::new(&[256, 256]).unwrap();
    let a = uniform_cube(shape, 100, 11);
    let ps = PrefixSumCube::build(&a);
    let mut last_naive = 0u64;
    for side in [4usize, 16, 64, 192] {
        let q = olap_array::Region::from_bounds(&[(10, 9 + side), (20, 19 + side)]).unwrap();
        let (_, ns) = naive::range_aggregate(&a, &SumOp::<i64>::new(), &q).unwrap();
        let (_, ps_stats) = ps.range_sum_with_stats(&q).unwrap();
        assert!(ns.total_accesses() > last_naive);
        last_naive = ns.total_accesses();
        assert!(ps_stats.total_accesses() <= 4, "prefix stays ≤ 2^d");
    }
}
