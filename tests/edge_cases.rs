//! Edge cases across the whole stack: degenerate shapes, extreme block
//! sizes, float pathologies, and hostile inputs.

use olap_cube::aggregate::NaturalOrder;
use olap_cube::array::{ArrayError, DenseArray, Region, Shape};
use olap_cube::engine::{CubeIndex, IndexConfig, PrefixChoice};
use olap_cube::prefix_sum::{batch, BlockedPrefixCube, PrefixSumCube};
use olap_cube::range_max::{MaxTree, NaturalMaxTree};
use olap_cube::sparse::{SparseCube, SparseRangeSum};
use olap_cube::tree_sum::SumTreeCube;

#[test]
fn single_cell_cube_everywhere() {
    let a = DenseArray::from_vec(Shape::new(&[1]).unwrap(), vec![42i64]).unwrap();
    let q = Region::from_bounds(&[(0, 0)]).unwrap();
    assert_eq!(PrefixSumCube::build(&a).range_sum(&q).unwrap(), 42);
    let bp = BlockedPrefixCube::build(&a, 5).unwrap();
    assert_eq!(bp.range_sum(&a, &q).unwrap(), 42);
    let t = NaturalMaxTree::for_values(&a, 2).unwrap();
    assert_eq!(t.range_max(&a, &q).unwrap(), (vec![0], 42));
    let st = SumTreeCube::build(&a, 2).unwrap();
    assert_eq!(st.range_sum(&a, &q).unwrap(), 42);
}

#[test]
fn one_by_n_ribbon_cubes() {
    // Dimensions of extent 1 exercise the degenerate-collapse paths.
    let a = DenseArray::from_fn(Shape::new(&[1, 17, 1]).unwrap(), |i| i[1] as i64);
    let ps = PrefixSumCube::build(&a);
    let bp = BlockedPrefixCube::build(&a, 4).unwrap();
    let t = NaturalMaxTree::for_values(&a, 3).unwrap();
    for lo in 0..17 {
        for hi in lo..17 {
            let q = Region::from_bounds(&[(0, 0), (lo, hi), (0, 0)]).unwrap();
            let expected: i64 = (lo..=hi).map(|x| x as i64).sum();
            assert_eq!(ps.range_sum(&q).unwrap(), expected);
            assert_eq!(bp.range_sum(&a, &q).unwrap(), expected);
            assert_eq!(t.range_max(&a, &q).unwrap().1, hi as i64);
        }
    }
}

#[test]
fn block_size_larger_than_every_dimension() {
    let a = DenseArray::from_fn(Shape::new(&[5, 7]).unwrap(), |i| (i[0] * 7 + i[1]) as i64);
    let bp = BlockedPrefixCube::build(&a, 1000).unwrap();
    assert_eq!(bp.packed_array().len(), 1);
    for q in [
        Region::from_bounds(&[(0, 4), (0, 6)]).unwrap(),
        Region::from_bounds(&[(1, 3), (2, 5)]).unwrap(),
        Region::from_bounds(&[(4, 4), (6, 6)]).unwrap(),
    ] {
        let naive = a.fold_region(&q, 0i64, |s, &x| s + x);
        assert_eq!(bp.range_sum(&a, &q).unwrap(), naive, "{q}");
    }
}

#[test]
fn extreme_values_do_not_wrap_in_practice() {
    // Large magnitudes close to the i64 range of real aggregates.
    let a = DenseArray::from_vec(
        Shape::new(&[2, 2]).unwrap(),
        vec![1_000_000_007i64, -999_999_937, 3, -11],
    )
    .unwrap();
    let ps = PrefixSumCube::build(&a);
    let q = a.shape().full_region();
    assert_eq!(
        ps.range_sum(&q).unwrap(),
        1_000_000_007 - 999_999_937 + 3 - 11
    );
}

#[test]
fn nan_and_infinity_in_max_trees() {
    // total_cmp puts NaN above +inf; the tree must stay consistent.
    let a = DenseArray::from_vec(
        Shape::new(&[6]).unwrap(),
        vec![
            1.0f64,
            f64::NEG_INFINITY,
            f64::NAN,
            0.0,
            f64::INFINITY,
            -5.0,
        ],
    )
    .unwrap();
    let t = MaxTree::build(&a, 2, NaturalOrder::<f64>::new()).unwrap();
    t.check_invariants(&a).unwrap();
    let q = Region::from_bounds(&[(0, 5)]).unwrap();
    let (idx, v) = t.range_max(&a, &q).unwrap();
    assert_eq!(idx, vec![2]);
    assert!(v.is_nan());
    // Excluding the NaN: +inf wins.
    let q = Region::from_bounds(&[(3, 5)]).unwrap();
    assert_eq!(t.range_max(&a, &q).unwrap().1, f64::INFINITY);
}

#[test]
fn empty_update_batches_and_identity_deltas() {
    let a = DenseArray::from_fn(Shape::new(&[4, 4]).unwrap(), |i| (i[0] + i[1]) as i64);
    let mut ps = PrefixSumCube::build(&a);
    let before = ps.prefix_array().as_slice().to_vec();
    // Zero-delta updates leave P unchanged.
    batch::apply_batch(&mut ps, &[batch::CellUpdate::new(&[2, 2], 0)]).unwrap();
    assert_eq!(ps.prefix_array().as_slice(), before.as_slice());
}

#[test]
fn shape_validation_reports_the_exact_problem() {
    assert_eq!(Shape::new(&[]), Err(ArrayError::EmptyShape));
    assert_eq!(Shape::new(&[4, 0]), Err(ArrayError::ZeroDim { axis: 1 }));
    let s = Shape::new(&[3, 3]).unwrap();
    assert_eq!(
        s.check_region(&Region::from_bounds(&[(0, 3), (0, 2)]).unwrap()),
        Err(ArrayError::OutOfBounds {
            axis: 0,
            index: 3,
            extent: 3
        })
    );
}

#[test]
fn sparse_engine_with_one_point() {
    let shape = Shape::new(&[100, 100]).unwrap();
    let cube = SparseCube::new(shape, vec![(vec![37, 42], 7i64)]).unwrap();
    let engine = SparseRangeSum::build(&cube).unwrap();
    assert_eq!(
        engine
            .range_sum(&Region::from_bounds(&[(0, 99), (0, 99)]).unwrap())
            .unwrap(),
        7
    );
    assert_eq!(
        engine
            .range_sum(&Region::from_bounds(&[(0, 36), (0, 99)]).unwrap())
            .unwrap(),
        0
    );
}

#[test]
fn many_duplicate_updates_last_wins() {
    let a = DenseArray::filled(Shape::new(&[4, 4]).unwrap(), 0i64);
    let mut idx = CubeIndex::build(
        a,
        IndexConfig {
            prefix: PrefixChoice::Basic,
            max_tree_fanout: Some(2),
            min_tree_fanout: None,
            sum_tree_fanout: None,
            ..IndexConfig::default()
        },
    )
    .unwrap();
    let updates: Vec<(Vec<usize>, i64)> = (0..20).map(|k| (vec![1, 1], k as i64)).collect();
    idx.apply_updates_in_place(&updates).unwrap();
    assert_eq!(*idx.cube().get(&[1, 1]), 19);
    let q = idx.shape().full_region();
    assert_eq!(idx.range_sum(&q).unwrap().0, 19);
    assert_eq!(idx.range_max(&q).unwrap().1, 19);
}

#[test]
fn high_dimensional_small_cube() {
    // d = 6 exercises the 2^d corner machinery (64 corners).
    let dims = vec![2usize; 6];
    let a = DenseArray::from_fn(Shape::new(&dims).unwrap(), |i| {
        i.iter().sum::<usize>() as i64
    });
    let ps = PrefixSumCube::build(&a);
    let q = Region::from_bounds(&[(1, 1); 6]).unwrap();
    let (v, stats) = ps.range_sum_with_stats(&q).unwrap();
    assert_eq!(v, 6);
    assert_eq!(stats.p_cells, 64);
    let full = a.shape().full_region();
    let expected: i64 = a.as_slice().iter().sum();
    assert_eq!(ps.range_sum(&full).unwrap(), expected);
}

#[test]
fn batched_updates_at_every_corner_of_the_cube() {
    let a = DenseArray::filled(Shape::new(&[3, 3, 3]).unwrap(), 1i64);
    let mut ps = PrefixSumCube::build(&a);
    // Update all 8 corners at once.
    let corners: Vec<batch::CellUpdate<i64>> = [0usize, 2]
        .iter()
        .flat_map(|&x| {
            [0usize, 2].iter().flat_map(move |&y| {
                [0usize, 2]
                    .iter()
                    .map(move |&z| batch::CellUpdate::new(&[x, y, z], 10))
            })
        })
        .collect();
    batch::apply_batch(&mut ps, &corners).unwrap();
    let mut a2 = a.clone();
    for c in &corners {
        *a2.get_mut(&c.index) += 10;
    }
    assert_eq!(
        ps.prefix_array().as_slice(),
        PrefixSumCube::build(&a2).prefix_array().as_slice()
    );
}
