//! The paper's §1 insurance scenario as a deep integration test: the
//! extended cube, the prefix-sum approaches, the schema layer, and the
//! engines must all tell the same story with the paper's exact costs.

use olap_cube::aggregate::SumOp;
use olap_cube::engine::{CubeIndex, ExtendedCube, IndexConfig};
use olap_cube::prefix_sum::PrefixSumCube;
use olap_cube::query::{CubeSchema, DimSelection, RangeQuery};
use olap_cube::workload::{InsuranceCube, INSURANCE_TYPES, STATES};

fn schema() -> CubeSchema {
    CubeSchema::new(vec![
        CubeSchema::integer("age", 1, 100),
        CubeSchema::integer("year", 1987, 1996),
        CubeSchema::categorical("state", &STATES),
        CubeSchema::categorical("type", &INSURANCE_TYPES),
    ])
}

#[test]
fn schema_matches_the_generated_cube() {
    let s = schema();
    let cube = InsuranceCube::generate(3);
    assert_eq!(s.shape().unwrap().dims(), cube.revenue.shape().dims());
    assert_eq!(s.rank_int("age", 37).unwrap(), InsuranceCube::age_rank(37));
    assert_eq!(
        s.rank_category("type", "auto").unwrap(),
        InsuranceCube::type_rank("auto").unwrap()
    );
}

#[test]
fn paper_costs_reproduce_exactly() {
    let s = schema();
    let cube = InsuranceCube::generate(1997);
    let a = &cube.revenue;
    let extended = ExtendedCube::build(a, SumOp::<i64>::new()).unwrap();
    // "the data cube will be extended to 101 × 11 × 51 × 4".
    assert_eq!(extended.len(), 101 * 11 * 51 * 4);

    // The singleton query (all, 1995, all, auto): one cell access.
    let singleton = s
        .query()
        .eq_int("year", 1995)
        .unwrap()
        .eq("type", "auto")
        .unwrap()
        .build()
        .unwrap();
    let (v_ext, stats) = extended.aggregate(&singleton).unwrap();
    assert_eq!(stats.total_accesses(), 1);

    // "one needs to access 16·9·1·1 cells in the extended data cube".
    let range_q = s
        .query()
        .range("age", 37, 52)
        .unwrap()
        .range("year", 1988, 1996)
        .unwrap()
        .eq("type", "auto")
        .unwrap()
        .build()
        .unwrap();
    let (v_range, stats) = extended.aggregate(&range_q).unwrap();
    assert_eq!(stats.total_accesses(), 16 * 9);

    // Prefix sums answer both within 2^d accesses, same values.
    let ps = PrefixSumCube::build(a);
    let r1 = singleton.to_region(a.shape()).unwrap();
    let r2 = range_q.to_region(a.shape()).unwrap();
    let (p1, s1) = ps.range_sum_with_stats(&r1).unwrap();
    let (p2, s2) = ps.range_sum_with_stats(&r2).unwrap();
    assert_eq!(p1, v_ext);
    assert_eq!(p2, v_range);
    assert!(s1.total_accesses() <= 16);
    assert!(s2.total_accesses() <= 16);
}

#[test]
fn the_full_stack_agrees_on_many_insurance_queries() {
    let s = schema();
    let cube = InsuranceCube::generate(8);
    let a = cube.revenue.clone();
    let extended = ExtendedCube::build(&a, SumOp::<i64>::new()).unwrap();
    let index = CubeIndex::build(a.clone(), IndexConfig::default()).unwrap();
    // A spread of query shapes: every combination of
    // (age range / all) × (year range / singleton / all) × state × type.
    let mut queries: Vec<RangeQuery> = Vec::new();
    for age in [
        DimSelection::All,
        DimSelection::span(InsuranceCube::age_rank(20), InsuranceCube::age_rank(65)).unwrap(),
    ] {
        for year in [
            DimSelection::All,
            DimSelection::Single(InsuranceCube::year_rank(1990)),
            DimSelection::span(
                InsuranceCube::year_rank(1988),
                InsuranceCube::year_rank(1993),
            )
            .unwrap(),
        ] {
            for state in [
                DimSelection::All,
                DimSelection::Single(s.rank_category("state", "CA").unwrap()),
            ] {
                for kind in [
                    DimSelection::All,
                    DimSelection::Single(s.rank_category("type", "health").unwrap()),
                ] {
                    queries.push(RangeQuery::new(vec![age, year, state, kind]).unwrap());
                }
            }
        }
    }
    assert_eq!(queries.len(), 24);
    for q in &queries {
        let region = q.to_region(a.shape()).unwrap();
        let naive = a.fold_region(&region, 0i64, |acc, &x| acc + x);
        assert_eq!(extended.aggregate(q).unwrap().0, naive, "{q:?}");
        assert_eq!(index.range_sum(&region).unwrap().0, naive, "{q:?}");
    }
}
