//! The §1 operator family exercised across every range-sum structure:
//! the same invertible-operator machinery must work identically for SUM,
//! XOR, AVERAGE pairs, and PRODUCT through the basic, blocked, and
//! partial prefix arrays.

use olap_cube::aggregate::{AvgOp, AvgPair, Monoid, ProductOp, XorOp};
use olap_cube::array::{DenseArray, Shape};
use olap_cube::prefix_sum::{BlockedPrefixSum, PartialPrefixSum, PrefixSumArray};
use olap_cube::workload::uniform_regions;

fn shape() -> Shape {
    Shape::new(&[17, 13]).unwrap()
}

#[test]
fn xor_across_structures() {
    let a = DenseArray::from_fn(shape(), |i| {
        ((i[0] * 2654435761 + i[1] * 97) % 65536) as u32
    });
    let op = XorOp::<u32>::new();
    let basic = PrefixSumArray::with_op(&a, op);
    let blocked = BlockedPrefixSum::with_op(&a, op, 4).unwrap();
    let partial = PartialPrefixSum::with_op(&a, op, &[0]).unwrap();
    for q in uniform_regions(a.shape(), 60, 1) {
        let naive = a.fold_region(&q, 0u32, |s, &x| s ^ x);
        assert_eq!(basic.range_sum(&q).unwrap(), naive, "basic {q}");
        assert_eq!(blocked.range_sum(&a, &q).unwrap(), naive, "blocked {q}");
        assert_eq!(partial.range_sum(&q).unwrap(), naive, "partial {q}");
    }
}

#[test]
fn average_pairs_across_structures() {
    let a = DenseArray::from_fn(shape(), |i| AvgPair::of((i[0] * 13 + i[1] * 7) as f64));
    let op = AvgOp::<f64>::new();
    let basic = PrefixSumArray::with_op(&a, op);
    let blocked = BlockedPrefixSum::with_op(&a, op, 5).unwrap();
    for q in uniform_regions(a.shape(), 40, 2) {
        let naive = a.fold_region(&q, op.identity(), |acc, x| op.combine(&acc, x));
        let b1 = basic.range_sum(&q).unwrap();
        let b2 = blocked.range_sum(&a, &q).unwrap();
        assert_eq!(b1.count, naive.count, "{q}");
        assert_eq!(b2.count, naive.count, "{q}");
        assert!((b1.mean().unwrap() - naive.mean().unwrap()).abs() < 1e-9);
        assert!((b2.mean().unwrap() - naive.mean().unwrap()).abs() < 1e-9);
        assert_eq!(b1.count as usize, q.volume());
    }
}

#[test]
fn product_on_zero_free_domain() {
    // Small factors near 1.0 keep the products stable.
    let a = DenseArray::from_fn(shape(), |i| 1.0 + ((i[0] + 2 * i[1]) % 7) as f64 / 100.0);
    let op = ProductOp::new();
    let basic = PrefixSumArray::with_op(&a, op);
    for q in uniform_regions(a.shape(), 40, 3) {
        let naive = a.fold_region(&q, 1.0f64, |acc, &x| acc * x);
        let got = basic.range_sum(&q).unwrap();
        assert!(
            (got / naive - 1.0).abs() < 1e-9,
            "{q}: got {got}, naive {naive}"
        );
    }
}

#[test]
fn batch_updates_preserve_xor_group() {
    use olap_cube::prefix_sum::batch::{self, CellUpdate};
    let mut a = DenseArray::from_fn(shape(), |i| ((i[0] * 31 + i[1]) % 256) as u32);
    let op = XorOp::<u32>::new();
    let mut ps = PrefixSumArray::with_op(&a, op);
    // XOR deltas: value-to-add = old ^ new (self-inverse).
    let updates = [
        (vec![3usize, 4usize], 0xdeadu32),
        (vec![0, 0], 0xbeef),
        (vec![16, 12], 0x1234),
    ];
    let deltas: Vec<CellUpdate<u32>> = updates
        .iter()
        .map(|(idx, new)| CellUpdate::new(idx, a.get(idx) ^ new))
        .collect();
    batch::apply_batch(&mut ps, &deltas).unwrap();
    for (idx, new) in &updates {
        *a.get_mut(idx) = *new;
    }
    let rebuilt = PrefixSumArray::with_op(&a, op);
    assert_eq!(
        ps.prefix_array().as_slice(),
        rebuilt.prefix_array().as_slice()
    );
}
