//! End-to-end reproduction of the paper's worked examples and analytic
//! claims, spanning crates.

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::planner;
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::range_max::NaturalMaxTree;
use olap_cube::tree_sum::SumTreeCube;
use olap_cube::workload::{sided_regions, uniform_cube, uniform_regions};

/// Figure 1 / Theorem 1 example, checked through the public facade.
#[test]
fn figure1_and_theorem1() {
    let a = DenseArray::from_vec(
        Shape::new(&[3, 6]).unwrap(),
        vec![3, 5, 1, 2, 2, 3, 7, 3, 2, 6, 8, 2, 2, 4, 2, 3, 3, 5],
    )
    .unwrap();
    let ps = PrefixSumCube::build(&a);
    // P's corner values from Figure 1 (our rows = the paper's 2nd dim).
    assert_eq!(*ps.prefix(&[2, 5]), 63);
    assert_eq!(*ps.prefix(&[1, 3]), 29);
    // Sum(2:3, 1:2) = 40 − 11 − 24 + 8 = 13.
    let q = Region::from_bounds(&[(1, 2), (2, 3)]).unwrap();
    assert_eq!(ps.range_sum(&q).unwrap(), 13);
}

/// Theorem 3's average-case bound `b + 7 + 1/b`, measured on random data.
#[test]
fn theorem3_average_case_bound() {
    for b in [3usize, 4, 8] {
        let n = 4096;
        let a = uniform_cube(Shape::new(&[n]).unwrap(), 1_000_000, b as u64);
        let t = NaturalMaxTree::for_values(&a, b).unwrap();
        let mut total = 0u64;
        let mut count = 0u64;
        for q in uniform_regions(a.shape(), 400, 17 + b as u64) {
            let (_, _, stats) = t.range_max_with_stats(&a, &q).unwrap();
            total += stats.total_accesses();
            count += 1;
        }
        let avg = total as f64 / count as f64;
        let bound = b as f64 + 7.0 + 1.0 / b as f64;
        // Allow measurement slack: our counting includes the initial
        // covering-node access and the ℓ-cell read.
        assert!(
            avg <= bound + 2.0,
            "b={b}: measured average {avg:.2} vs bound {bound:.2}"
        );
    }
}

/// Figure 11's direction, measured: for queries of side α·b with α ≥ 2,
/// the tree-sum structure accesses more elements than the blocked prefix
/// sum of the same block size.
#[test]
fn figure11_tree_loses_to_prefix_measured() {
    let n = 512;
    let b = 8;
    let shape = Shape::new(&[n, n]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 23);
    let bp = BlockedPrefixCube::build(&a, b).unwrap();
    let st = SumTreeCube::build(&a, b).unwrap();
    for alpha in [2usize, 4, 8, 16] {
        let side = alpha * b;
        let mut prefix_total = 0u64;
        let mut tree_total = 0u64;
        for q in sided_regions(&shape, side, 30, alpha as u64) {
            let (v1, s1) = bp.range_sum_with_stats(&a, &q).unwrap();
            let (v2, s2) = st.range_sum_with_stats(&a, &q, true).unwrap();
            assert_eq!(v1, v2);
            prefix_total += s1.total_accesses();
            tree_total += s2.total_accesses();
        }
        if alpha >= 4 {
            assert!(
                tree_total > prefix_total,
                "α={alpha}: tree {tree_total} vs prefix {prefix_total}"
            );
        } else {
            // §8: "for small queries … the cost would be comparable for
            // both methods" — only require the same order of magnitude.
            let ratio = tree_total as f64 / prefix_total as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "α={alpha}: tree {tree_total} vs prefix {prefix_total}"
            );
        }
    }
}

/// Figure 12's heuristic example and the exact optimizer, through the
/// workload/query/planner stack.
#[test]
fn figure12_dimension_selection() {
    use olap_cube::query::{DimSelection, QueryLog, RangeQuery};
    let shape = Shape::new(&[1000; 5]).unwrap();
    let rows = [
        [1usize, 100, 1, 3, 1],
        [200, 1, 100, 1, 1],
        [500, 500, 1, 1, 1],
    ];
    let mut log = QueryLog::new(shape);
    for row in rows {
        log.push(
            RangeQuery::new(
                row.iter()
                    .map(|&len| {
                        if len == 1 {
                            DimSelection::Single(0)
                        } else {
                            DimSelection::span(0, len - 1).unwrap()
                        }
                    })
                    .collect(),
            )
            .unwrap(),
        );
    }
    assert_eq!(planner::choose_dimensions_heuristic(&log), vec![0, 1, 2]);
    let exact = planner::choose_dimensions_exact(&log);
    assert!(planner::selection_cost(&log, &exact) <= planner::selection_cost(&log, &[0, 1, 2]));
}

/// Figure 14 / §9.3: the measured best block size tracks the closed form.
#[test]
fn figure14_block_size_optimum_is_real() {
    // Queries of fixed 40×40 side on a 400×400 cube: V = 1600, S = 160,
    // b* = (1600−4)/40 · 2/3 ≈ 26.6.
    let shape = Shape::new(&[400, 400]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 31);
    let queries = sided_regions(&shape, 40, 40, 33);
    let predicted = planner::optimal_block_size(1600.0, 160.0, 2).expect("blocking pays off");
    // Measure benefit/space for a few block sizes including b*.
    let mut best_measured = (0usize, f64::MIN);
    for b in [4usize, 8, 16, predicted, 64, 128] {
        let bp = BlockedPrefixCube::build(&a, b).unwrap();
        let mut cost = 0u64;
        for q in &queries {
            let (_, s) = bp.range_sum_with_stats(&a, q).unwrap();
            cost += s.total_accesses();
        }
        let naive_cost: u64 = queries.iter().map(|q| q.volume() as u64).sum();
        let benefit = naive_cost as f64 - cost as f64;
        let space = bp.packed_array().len() as f64;
        let ratio = benefit / space;
        if ratio > best_measured.1 {
            best_measured = (b, ratio);
        }
    }
    // The measured optimum must be within a factor ~2 of the closed form
    // (F(b)=b/4 is itself an average-case approximation).
    let (b_meas, _) = best_measured;
    assert!(
        b_meas >= predicted / 2 && b_meas <= predicted * 2,
        "measured best b = {b_meas}, predicted {predicted}"
    );
}

/// §3.4: the cube can be discarded — singleton queries run off P alone.
#[test]
fn storage_tradeoff_end_to_end() {
    let shape = Shape::new(&[9, 9, 9]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 37);
    let ps = PrefixSumCube::build(&a);
    drop(a.clone()); // conceptually discard A
    for idx in [[0, 0, 0], [8, 8, 8], [4, 7, 2], [1, 0, 8]] {
        assert_eq!(ps.cell(&idx).unwrap(), *a.get(&idx));
    }
}
