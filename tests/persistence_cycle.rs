//! The full deployment cycle across crates: build structures, update them
//! incrementally, persist everything, reload in "another process", and
//! verify each reloaded structure answers exactly like a shadow cube.

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::prefix_sum::batch::{self, CellUpdate};
use olap_cube::prefix_sum::{BlockedPrefixCube, PrefixSumCube};
use olap_cube::range_max::{NaturalMaxTree, NaturalMinTree, PointUpdate};
use olap_cube::storage;
use olap_cube::workload::{uniform_cube, uniform_regions};

fn roundtrip<T>(
    write: impl FnOnce(&mut Vec<u8>) -> Result<(), storage::StorageError>,
    read: impl FnOnce(&mut &[u8]) -> Result<T, storage::StorageError>,
) -> T {
    let mut buf = Vec::new();
    write(&mut buf).expect("write");
    read(&mut buf.as_slice()).expect("read")
}

#[test]
fn update_persist_reload_query() {
    let shape = Shape::new(&[48, 36]).unwrap();
    let mut a = uniform_cube(shape.clone(), 500, 11);
    let mut ps = PrefixSumCube::build(&a);
    let mut bp = BlockedPrefixCube::build(&a, 6).unwrap();
    let mut maxt = NaturalMaxTree::for_values(&a, 3).unwrap();
    let mut mint = NaturalMinTree::for_min_values(&a, 3).unwrap();

    // Several update rounds before persisting.
    for round in 0..5i64 {
        let updates: Vec<(Vec<usize>, i64)> = (0..6)
            .map(|k| {
                (
                    vec![
                        ((round * 17 + k * 7) % 48) as usize,
                        ((round * 5 + k) % 36) as usize,
                    ],
                    round * 100 - k * 13,
                )
            })
            .collect();
        let deltas: Vec<CellUpdate<i64>> = updates
            .iter()
            .map(|(idx, v)| CellUpdate::new(idx, v - a.get(idx)))
            .collect();
        batch::apply_batch(&mut ps, &deltas).unwrap();
        batch::apply_batch_blocked(&mut bp, &deltas).unwrap();
        let pts: Vec<PointUpdate<i64>> = updates
            .iter()
            .map(|(i, v)| PointUpdate::new(i, *v))
            .collect();
        let mut shadow_for_min = a.clone();
        mint.batch_update(&mut shadow_for_min, &pts).unwrap();
        maxt.batch_update(&mut a, &pts).unwrap(); // applies writes to `a`
    }

    // Persist and reload everything.
    let a2: DenseArray<i64> = roundtrip(
        |w| storage::write_dense_i64(w, &a),
        |r| storage::read_dense_i64(r),
    );
    let ps2 = roundtrip(
        |w| storage::write_prefix_sum(w, &ps),
        |r| storage::read_prefix_sum(r),
    );
    let bp2 = roundtrip(
        |w| storage::write_blocked_prefix(w, &bp),
        |r| storage::read_blocked_prefix(r),
    );
    let maxt2 = roundtrip(
        |w| storage::write_max_tree(w, &maxt),
        |r| storage::read_max_tree(r),
    );
    let mint2 = roundtrip(
        |w| storage::write_min_tree(w, &mint),
        |r| storage::read_min_tree(r),
    );

    maxt2.check_invariants(&a2).unwrap();
    mint2.check_invariants(&a2).unwrap();
    assert_eq!(a2.as_slice(), a.as_slice());

    for q in uniform_regions(&shape, 80, 12) {
        let sum = a2.fold_region(&q, 0i64, |s, &x| s + x);
        let max = a2.fold_region(&q, i64::MIN, |m, &x| m.max(x));
        let min = a2.fold_region(&q, i64::MAX, |m, &x| m.min(x));
        assert_eq!(ps2.range_sum(&q).unwrap(), sum, "{q}");
        assert_eq!(bp2.range_sum(&a2, &q).unwrap(), sum, "{q}");
        assert_eq!(maxt2.range_max(&a2, &q).unwrap().1, max, "{q}");
        assert_eq!(mint2.range_max(&a2, &q).unwrap().1, min, "{q}");
    }
}

#[test]
fn cross_kind_reads_fail_cleanly() {
    let a = uniform_cube(Shape::new(&[8, 8]).unwrap(), 100, 1);
    let maxt = NaturalMaxTree::for_values(&a, 2).unwrap();
    let mint = NaturalMinTree::for_min_values(&a, 2).unwrap();
    let mut max_buf = Vec::new();
    storage::write_max_tree(&mut max_buf, &maxt).unwrap();
    let mut min_buf = Vec::new();
    storage::write_min_tree(&mut min_buf, &mint).unwrap();
    // A min tree must never deserialize as a max tree (the order would be
    // silently wrong) and vice versa.
    assert!(storage::read_max_tree(&mut min_buf.as_slice()).is_err());
    assert!(storage::read_min_tree(&mut max_buf.as_slice()).is_err());
    // And neither reads as a cube.
    assert!(storage::read_dense_i64(&mut max_buf.as_slice()).is_err());
}

#[test]
fn reloaded_structures_keep_accepting_updates() {
    let shape = Shape::new(&[20, 20]).unwrap();
    let mut a = uniform_cube(shape.clone(), 100, 9);
    let ps = PrefixSumCube::build(&a);
    let mut ps2 = roundtrip(
        |w| storage::write_prefix_sum(w, &ps),
        |r| storage::read_prefix_sum(r),
    );
    let u = CellUpdate::new(&[5, 5], 42);
    batch::apply_batch(&mut ps2, std::slice::from_ref(&u)).unwrap();
    *a.get_mut(&[5, 5]) += 42;
    let q = Region::from_bounds(&[(0, 19), (0, 19)]).unwrap();
    assert_eq!(
        ps2.range_sum(&q).unwrap(),
        a.fold_region(&q, 0i64, |s, &x| s + x)
    );
}
