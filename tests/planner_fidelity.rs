//! Model calibration: the §9 planner's Equation-3 predictions vs the
//! accesses a materialized plan actually performs — the check that the
//! analytic machinery the paper plans with describes the implementation
//! it plans for.

use olap_cube::array::Shape;
use olap_cube::engine::PlannedIndex;
use olap_cube::planner::{cost, GreedyPlanner};
use olap_cube::workload::{synthetic_log, uniform_cube, CuboidMix};

#[test]
fn planned_cost_tracks_measured_accesses() {
    let shape = Shape::new(&[120, 80, 10]).unwrap();
    let cube = uniform_cube(shape.clone(), 100, 21);
    let log = synthetic_log(
        &shape,
        &[
            CuboidMix {
                dims: vec![0, 1],
                side: 24,
                count: 40,
            },
            CuboidMix {
                dims: vec![0],
                side: 60,
                count: 20,
            },
        ],
        22,
    );
    let planner = GreedyPlanner::new(shape, log.cuboid_stats(), 3_000.0);
    let plan = planner.plan();
    assert!(!plan.choices.is_empty());
    let index = PlannedIndex::build(cube.clone(), &plan.choices).unwrap();
    let mut measured = 0u64;
    for q in log.queries() {
        let (v, s) = index.range_sum(q).unwrap();
        let region = q.to_region(cube.shape()).unwrap();
        assert_eq!(v, cube.fold_region(&region, 0i64, |acc, &x| acc + x));
        measured += s.total_accesses();
    }
    // The model is an average-case approximation (F(b) ≈ b/4 of the
    // surface); require agreement within a factor of 3 in both directions.
    let predicted = plan.total_cost;
    let measured = measured as f64;
    assert!(
        measured <= predicted * 3.0 && predicted <= measured * 3.0,
        "predicted {predicted:.0} vs measured {measured:.0}"
    );
}

#[test]
fn equation3_describes_the_blocked_implementation() {
    use olap_cube::prefix_sum::BlockedPrefixCube;
    use olap_cube::workload::sided_regions;
    // Fixed-side queries so Table-1 statistics are exact, not averaged.
    let shape = Shape::new(&[400, 400]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 31);
    for (b, side) in [(8usize, 64usize), (16, 96), (32, 128)] {
        let bp = BlockedPrefixCube::build(&a, b).unwrap();
        let queries = sided_regions(&shape, side, 40, (b + side) as u64);
        let mut total = 0u64;
        for q in &queries {
            let (_, s) = bp.range_sum_with_stats(&a, q).unwrap();
            total += s.total_accesses();
        }
        let measured = total as f64 / queries.len() as f64;
        let surface = 4.0 * side as f64; // 2d · V / x, d = 2, square query
        let predicted = cost::prefix_sum_cost(2, surface, b);
        assert!(
            measured <= predicted * 2.0 && predicted <= measured * 2.0,
            "b={b} side={side}: predicted {predicted:.0}, measured {measured:.0}"
        );
    }
}
