//! The adaptive router's two promises, checked end to end:
//!
//! 1. On a mixed workload, routing per query is never much worse than the
//!    best *static* single-structure choice — the whole point of carrying
//!    several structures and the §8/§9 cost model.
//! 2. Replaying a [`QueryLog`] demonstrably tightens the EWMA calibration:
//!    late predictions track observed access counts better than early ones.

use olap_cube::array::{DenseArray, Region, Shape};
use olap_cube::engine::{
    AdaptiveRouter, CubeIndex, IndexConfig, NaiveEngine, Parallelism, PrefixChoice, RangeEngine,
    SumTreeEngine,
};
use olap_cube::query::{QueryLog, RangeQuery};
use olap_cube::workload::{sided_regions, uniform_cube, uniform_regions};

/// Router ≤ BOUND × best static engine, in total observed accesses. The
/// slack covers calibration warm-up (the first queries route on the
/// uncorrected analytic model) plus residual model error.
const BOUND: f64 = 1.25;

fn engines(a: &DenseArray<i64>) -> Vec<Box<dyn RangeEngine<i64>>> {
    let cfg = |prefix, sum_tree| IndexConfig {
        prefix,
        max_tree_fanout: None,
        min_tree_fanout: None,
        sum_tree_fanout: sum_tree,
        parallelism: Parallelism::Sequential,
        ..IndexConfig::default()
    };
    vec![
        Box::new(NaiveEngine::new(a.clone())),
        Box::new(CubeIndex::build(a.clone(), cfg(PrefixChoice::Blocked(4), None)).unwrap()),
        Box::new(CubeIndex::build(a.clone(), cfg(PrefixChoice::Blocked(16), None)).unwrap()),
        Box::new(SumTreeEngine::build(a.clone(), 4).unwrap()),
    ]
}

/// A mixed workload: uniformly random boxes (favouring precomputation)
/// plus small `b`-sided boxes (favouring the naive scan) — no single
/// static structure wins both halves.
fn mixed_workload(shape: &Shape) -> Vec<RangeQuery> {
    let mut queries = Vec::new();
    for region in uniform_regions(shape, 40, 21) {
        queries.push(RangeQuery::from_region(&region));
    }
    for region in sided_regions(shape, 3, 40, 22) {
        queries.push(RangeQuery::from_region(&region));
    }
    // Interleave so calibration sees both kinds throughout.
    let (a, b) = queries.split_at(40);
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| [x.clone(), y.clone()])
        .collect()
}

#[test]
fn router_tracks_best_static_choice_on_mixed_workload() {
    let shape = Shape::new(&[96, 96]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 20);
    let queries = mixed_workload(&shape);

    // Total observed cost of each engine answering the whole workload
    // alone (the static alternatives).
    let statics = engines(&a);
    let mut static_totals = Vec::new();
    for e in &statics {
        let total: u64 = queries.iter().map(|q| e.range_sum(q).unwrap().cost()).sum();
        static_totals.push((e.label(), total));
    }
    let best_static = static_totals.iter().map(|&(_, t)| t).min().unwrap();

    // The router over the same engine set.
    let router = AdaptiveRouter::new();
    for e in engines(&a) {
        router.push(e);
    }
    let mut routed_total = 0u64;
    for q in &queries {
        routed_total += router.range_sum(q).unwrap().cost();
    }

    assert!(
        (routed_total as f64) <= BOUND * best_static as f64,
        "router spent {routed_total}, best static {best_static} ({static_totals:?})"
    );
    // Sanity: the workload is genuinely mixed — each half has a different
    // best static engine, so routing must actually switch.
    let labels = router.labels();
    let chosen: Vec<&str> = queries
        .iter()
        .map(|q| {
            let cands = router.candidates(q, olap_cube::engine::EngineOp::Sum);
            let best = cands
                .iter()
                .min_by(|x, y| x.calibrated.partial_cmp(&y.calibrated).unwrap())
                .unwrap();
            labels[best.index].as_str()
        })
        .collect();
    let distinct: std::collections::BTreeSet<&str> = chosen.into_iter().collect();
    assert!(distinct.len() >= 2, "routing never switched: {distinct:?}");
}

#[test]
fn replay_tightens_predicted_vs_observed() {
    let shape = Shape::new(&[128, 128]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 30);
    // One engine whose analytic model has systematic error the EWMA must
    // learn: the §8 tree cost formula is an average-case surface bound.
    let router: AdaptiveRouter<i64> =
        AdaptiveRouter::new().with_engine(Box::new(SumTreeEngine::build(a, 4).unwrap()));

    // An OLAP dashboard's steady state: the same handful of report
    // queries re-issued over and over. Replaying them lets the EWMA learn
    // each recurring shape's true cost.
    let base = sided_regions(&shape, 40, 3, 31);
    let mut log = QueryLog::new(shape.clone());
    for round in 0..20 {
        let region = &base[round % base.len()];
        log.push(RangeQuery::from_region(region));
    }
    let records = router.replay(&log).unwrap();
    assert_eq!(records.len(), 20);

    let mean_err = |slice: &[olap_cube::engine::ReplayRecord]| -> f64 {
        slice.iter().map(|r| r.relative_error()).sum::<f64>() / slice.len() as f64
    };
    let early = mean_err(&records[..5]);
    let late = mean_err(&records[15..]);
    assert!(
        late < early,
        "calibration did not tighten: early err {early:.4}, late err {late:.4}"
    );
    // And the learned ratio is no longer the uninformed 1.0.
    let ratio = router.calibration()[0];
    assert!((ratio - 1.0).abs() > 1e-3, "ratio stayed at 1.0: {ratio}");
}

#[test]
fn explain_candidates_match_direct_estimates() {
    let shape = Shape::new(&[64, 64]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 40);
    let router = AdaptiveRouter::new();
    for e in engines(&a) {
        router.push(e);
    }
    let q = RangeQuery::from_region(&Region::from_bounds(&[(4, 51), (8, 55)]).unwrap());
    let explain = router.explain(&q).unwrap();
    assert_eq!(explain.candidates.len(), 4);
    // Fresh router: ratios are all 1.0, so calibrated == raw, and the
    // chosen engine is the raw argmin.
    for c in &explain.candidates {
        assert_eq!(c.ratio, 1.0);
        assert_eq!(c.calibrated, c.raw);
    }
    let argmin = explain
        .candidates
        .iter()
        .min_by(|x, y| x.calibrated.partial_cmp(&y.calibrated).unwrap())
        .unwrap();
    assert_eq!(explain.chosen, argmin.index);
    assert!(explain.observed() > 0);
}
