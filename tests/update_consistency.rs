//! Long-running interleavings of queries and batched updates across every
//! maintained structure — the §5/§7 OLAP day/night cycle, hammered.
//!
//! The `concurrent_*` property tests at the bottom drive real threads
//! against the snapshot-isolation machinery (`VersionCell`, the sharded
//! `CubeServer`) and belong to the ThreadSanitizer CI leg.

use olap_cube::array::Shape;
use olap_cube::engine::{CubeIndex, IndexConfig, PrefixChoice};
use olap_cube::workload::{uniform_cube, uniform_regions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn naive_sum(a: &olap_cube::array::DenseArray<i64>, q: &olap_cube::array::Region) -> i64 {
    a.fold_region(q, 0i64, |s, &x| s + x)
}

fn naive_max(a: &olap_cube::array::DenseArray<i64>, q: &olap_cube::array::Region) -> i64 {
    a.fold_region(q, i64::MIN, |m, &x| m.max(x))
}

#[test]
fn twenty_rounds_of_mixed_queries_and_updates() {
    let shape = Shape::new(&[32, 24, 6]).unwrap();
    let a = uniform_cube(shape.clone(), 500, 100);
    let mut shadow = a.clone(); // ground truth maintained naively
    let cfg = IndexConfig {
        prefix: PrefixChoice::Basic,
        max_tree_fanout: Some(3),
        min_tree_fanout: None,
        sum_tree_fanout: Some(2),
        ..IndexConfig::default()
    };
    let mut index = CubeIndex::build(a, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(7);

    for round in 0..20u64 {
        // Queries.
        for q in uniform_regions(&shape, 10, 1000 + round) {
            let (s, _) = index.range_sum(&q).unwrap();
            assert_eq!(s, naive_sum(&shadow, &q), "round {round} {q}");
            let (at, m, _) = index.range_max(&q).unwrap();
            assert_eq!(m, naive_max(&shadow, &q), "round {round} {q}");
            assert!(q.contains(&at));
            assert_eq!(*shadow.get(&at), m);
        }
        // A batch of updates (with occasional duplicates).
        let k = rng.random_range(1..10usize);
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            let idx = vec![
                rng.random_range(0..32usize),
                rng.random_range(0..24usize),
                rng.random_range(0..6usize),
            ];
            let v = rng.random_range(-500i64..500);
            batch.push((idx, v));
        }
        if k > 2 {
            // Force a duplicate: last entry overwrites the first.
            let first = batch[0].0.clone();
            batch.push((first, rng.random_range(-500i64..500)));
        }
        index.apply_updates_in_place(&batch).unwrap();
        for (idx, v) in &batch {
            *shadow.get_mut(idx) = *v;
        }
    }

    // Final deep check: the index's cube equals the shadow exactly.
    assert_eq!(index.cube().as_slice(), shadow.as_slice());
}

#[test]
fn blocked_index_update_cycle() {
    let shape = Shape::new(&[45, 45]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 5);
    let mut shadow = a.clone();
    let cfg = IndexConfig {
        prefix: PrefixChoice::Blocked(7),
        max_tree_fanout: None,
        min_tree_fanout: None,
        sum_tree_fanout: None,
        ..IndexConfig::default()
    };
    let mut index = CubeIndex::build(a, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for round in 0..15u64 {
        let batch: Vec<(Vec<usize>, i64)> = (0..5)
            .map(|_| {
                (
                    vec![rng.random_range(0..45usize), rng.random_range(0..45usize)],
                    rng.random_range(0..100i64),
                )
            })
            .collect();
        index.apply_updates_in_place(&batch).unwrap();
        for (idx, v) in &batch {
            *shadow.get_mut(idx) = *v;
        }
        for q in uniform_regions(&shape, 8, 2000 + round) {
            let (s, _) = index.range_sum(&q).unwrap();
            assert_eq!(s, naive_sum(&shadow, &q), "round {round} {q}");
        }
    }
}

mod concurrent {
    //! Threads hammering snapshot installs: any answer observed while an
    //! update batch is in flight must be bit-identical to the pre- or
    //! post-update sequential oracle — never a mix.

    use super::naive_sum;
    use olap_cube::array::{Region, Shape};
    use olap_cube::engine::{CubeIndex, IndexConfig, RangeEngine, VersionCell};
    use olap_cube::query::RangeQuery;
    use olap_cube::server::{CubeServer, ServeConfig};
    use olap_cube::workload::{uniform_cube, uniform_regions};
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Cube dims, an update batch inside them, and a region seed.
    type UpdateCase = (Vec<usize>, Vec<(Vec<usize>, i64)>, u64);

    fn arb_case() -> impl Strategy<Value = UpdateCase> {
        prop::collection::vec(3usize..9, 2..=3).prop_flat_map(|dims| {
            let cell: Vec<_> = dims.iter().map(|&n| 0..n).collect();
            let batch = prop::collection::vec((cell, -900i64..900), 1..6);
            (Just(dims), batch, any::<u64>())
        })
    }

    fn sum_through(engine: &dyn RangeEngine<i64>, r: &Region) -> i64 {
        let out = engine.range_sum(&RangeQuery::from_region(r)).unwrap();
        *out.answer.value().expect("sum answers carry a value")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Readers loading live snapshots from a [`VersionCell`] while a
        /// writer installs a successor: every observed sum is the pre- or
        /// post-update oracle, a snapshot pinned before the install keeps
        /// answering pre exactly, and the install is visible afterwards.
        #[test]
        fn concurrent_snapshot_readers_see_pre_or_post_values(
            (dims, batch, seed) in arb_case(),
            readers in 2usize..4,
        ) {
            let shape = Shape::new(&dims).unwrap();
            let pre = uniform_cube(shape.clone(), 700, seed);
            let mut post = pre.clone();
            for (idx, v) in &batch {
                *post.get_mut(idx) = *v;
            }
            let index = CubeIndex::build(pre.clone(), IndexConfig::default()).unwrap();
            let cell = VersionCell::new(Box::new(index));
            let pinned = cell.load();
            let regions = uniform_regions(&shape, 12, seed ^ 0x5eed);
            let observed: Mutex<Vec<(usize, i64)>> = Mutex::new(Vec::new());

            std::thread::scope(|scope| {
                for r in 0..readers {
                    let cell = &cell;
                    let regions = &regions;
                    let observed = &observed;
                    scope.spawn(move || {
                        for (i, region) in
                            regions.iter().enumerate().skip(r).step_by(readers)
                        {
                            let got = sum_through(cell.load().engine(), region);
                            observed.lock().unwrap().push((i, got));
                        }
                    });
                }
                scope.spawn(|| {
                    cell.update(&batch).unwrap();
                });
            });

            for (i, got) in observed.into_inner().unwrap() {
                let (a, b) = (naive_sum(&pre, &regions[i]), naive_sum(&post, &regions[i]));
                prop_assert!(got == a || got == b, "region {i}: {got} ∉ {{{a}, {b}}}");
            }
            // Snapshot isolation proper: the pinned pre-install version is
            // untouched by the concurrent install.
            for region in &regions {
                prop_assert_eq!(sum_through(pinned.engine(), region), naive_sum(&pre, region));
            }
            prop_assert_eq!(cell.epoch(), 1);
            for region in &regions {
                prop_assert_eq!(
                    sum_through(cell.load().engine(), region),
                    naive_sum(&post, region)
                );
            }
        }

        /// The sharded server under a mid-flight single-shard batch (one
        /// snapshot swap ⇒ globally atomic): concurrent readers never see
        /// a torn sum.
        #[test]
        fn concurrent_sharded_server_updates_never_tear_answers(
            (dims, mut batch, seed) in arb_case(),
            shards in 2usize..5,
            readers in 2usize..4,
        ) {
            let shape = Shape::new(&dims).unwrap();
            let pre = uniform_cube(shape.clone(), 700, seed);
            // Confine the batch to one row of axis 0 so it lands in a
            // single shard and the install is one atomic swap.
            let row = batch[0].0[0];
            for (idx, _) in &mut batch {
                idx[0] = row;
            }
            let mut post = pre.clone();
            for (idx, v) in &batch {
                *post.get_mut(idx) = *v;
            }
            let srv = CubeServer::build(
                &pre,
                ServeConfig { shards, ..ServeConfig::default() },
            )
            .unwrap();
            let regions = uniform_regions(&shape, 12, seed ^ 0xca11);
            let observed: Mutex<Vec<(usize, i64)>> = Mutex::new(Vec::new());

            std::thread::scope(|scope| {
                for r in 0..readers {
                    let srv = &srv;
                    let regions = &regions;
                    let observed = &observed;
                    scope.spawn(move || {
                        for (i, region) in
                            regions.iter().enumerate().skip(r).step_by(readers)
                        {
                            let got = srv
                                .range_sum(&RangeQuery::from_region(region))
                                .unwrap()
                                .value;
                            observed.lock().unwrap().push((i, got));
                        }
                    });
                }
                scope.spawn(|| {
                    srv.apply_updates(&batch).unwrap();
                });
            });

            for (i, got) in observed.into_inner().unwrap() {
                let (a, b) = (naive_sum(&pre, &regions[i]), naive_sum(&post, &regions[i]));
                prop_assert!(got == a || got == b, "region {i}: {got} ∉ {{{a}, {b}}}");
            }
            for region in &regions {
                prop_assert_eq!(
                    srv.range_sum(&RangeQuery::from_region(region)).unwrap().value,
                    naive_sum(&post, region)
                );
            }
        }
    }
}
