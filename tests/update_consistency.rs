//! Long-running interleavings of queries and batched updates across every
//! maintained structure — the §5/§7 OLAP day/night cycle, hammered.

use olap_cube::array::Shape;
use olap_cube::engine::{CubeIndex, IndexConfig, PrefixChoice};
use olap_cube::workload::{uniform_cube, uniform_regions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn naive_sum(a: &olap_cube::array::DenseArray<i64>, q: &olap_cube::array::Region) -> i64 {
    a.fold_region(q, 0i64, |s, &x| s + x)
}

fn naive_max(a: &olap_cube::array::DenseArray<i64>, q: &olap_cube::array::Region) -> i64 {
    a.fold_region(q, i64::MIN, |m, &x| m.max(x))
}

#[test]
fn twenty_rounds_of_mixed_queries_and_updates() {
    let shape = Shape::new(&[32, 24, 6]).unwrap();
    let a = uniform_cube(shape.clone(), 500, 100);
    let mut shadow = a.clone(); // ground truth maintained naively
    let cfg = IndexConfig {
        prefix: PrefixChoice::Basic,
        max_tree_fanout: Some(3),
        min_tree_fanout: None,
        sum_tree_fanout: Some(2),
        ..IndexConfig::default()
    };
    let mut index = CubeIndex::build(a, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(7);

    for round in 0..20u64 {
        // Queries.
        for q in uniform_regions(&shape, 10, 1000 + round) {
            let (s, _) = index.range_sum(&q).unwrap();
            assert_eq!(s, naive_sum(&shadow, &q), "round {round} {q}");
            let (at, m, _) = index.range_max(&q).unwrap();
            assert_eq!(m, naive_max(&shadow, &q), "round {round} {q}");
            assert!(q.contains(&at));
            assert_eq!(*shadow.get(&at), m);
        }
        // A batch of updates (with occasional duplicates).
        let k = rng.random_range(1..10usize);
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            let idx = vec![
                rng.random_range(0..32usize),
                rng.random_range(0..24usize),
                rng.random_range(0..6usize),
            ];
            let v = rng.random_range(-500i64..500);
            batch.push((idx, v));
        }
        if k > 2 {
            // Force a duplicate: last entry overwrites the first.
            let first = batch[0].0.clone();
            batch.push((first, rng.random_range(-500i64..500)));
        }
        index.apply_updates(&batch).unwrap();
        for (idx, v) in &batch {
            *shadow.get_mut(idx) = *v;
        }
    }

    // Final deep check: the index's cube equals the shadow exactly.
    assert_eq!(index.cube().as_slice(), shadow.as_slice());
}

#[test]
fn blocked_index_update_cycle() {
    let shape = Shape::new(&[45, 45]).unwrap();
    let a = uniform_cube(shape.clone(), 100, 5);
    let mut shadow = a.clone();
    let cfg = IndexConfig {
        prefix: PrefixChoice::Blocked(7),
        max_tree_fanout: None,
        min_tree_fanout: None,
        sum_tree_fanout: None,
        ..IndexConfig::default()
    };
    let mut index = CubeIndex::build(a, cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for round in 0..15u64 {
        let batch: Vec<(Vec<usize>, i64)> = (0..5)
            .map(|_| {
                (
                    vec![rng.random_range(0..45usize), rng.random_range(0..45usize)],
                    rng.random_range(0..100i64),
                )
            })
            .collect();
        index.apply_updates(&batch).unwrap();
        for (idx, v) in &batch {
            *shadow.get_mut(idx) = *v;
        }
        for q in uniform_regions(&shape, 8, 2000 + round) {
            let (s, _) = index.range_sum(&q).unwrap();
            assert_eq!(s, naive_sum(&shadow, &q), "round {round} {q}");
        }
    }
}
