//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the API subset its benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen iteration batch,
//! and reports min / mean / max per-iteration wall time on stdout. It is
//! intentionally simple — stable enough for A/B comparisons like the
//! sequential-vs-parallel construction sweep, not a statistics suite.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed measurements, recorded for the optional baseline dump.
static RECORDS: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

/// Writes every measurement taken so far as a JSON array to the path in
/// the `BENCH_BASELINE_JSON` environment variable (no-op when unset).
///
/// `criterion_main!` calls this after all groups finish, so
/// `BENCH_BASELINE_JSON=results/foo.json cargo bench --bench foo` leaves a
/// machine-readable baseline next to the human-readable stdout report.
pub fn write_baseline_if_requested() {
    let Ok(path) = std::env::var("BENCH_BASELINE_JSON") else {
        return;
    };
    let records = RECORDS.lock().expect("baseline record lock");
    let mut out = String::from("[\n");
    for (i, (label, min, mean, max)) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"benchmark\": \"{label}\", \"min_s\": {min:e}, \"mean_s\": {mean:e}, \"max_s\": {max:e}}}{sep}\n"
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write baseline {path}: {e}");
    } else {
        println!("\nbaseline written to {path}");
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `{function_name}/{parameter}`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The timing driver handed to bench closures.
pub struct Bencher {
    /// Accumulated `(iterations, elapsed)` samples.
    samples: Vec<(u64, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample for a
    /// measurable duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ≥ ~2ms per sample.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push((batch, start.elapsed()));
        }
    }
}

fn report(label: &str, samples: &[(u64, Duration)]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<50} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    RECORDS
        .lock()
        .expect("baseline record lock")
        .push((label.to_string(), min, mean, max));
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&label, &bencher.samples);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&label, &bencher.samples);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op marker).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Reads CLI configuration; the stand-in accepts and ignores the
    /// arguments Cargo's bench runner passes (e.g. `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report(&label, &bencher.samples);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_baseline_if_requested();
        }
    };
}
