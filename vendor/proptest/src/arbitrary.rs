//! `any::<T>()` — full-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for AnyStrategy<T> {}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Any bit pattern, NaN and infinities included — matches real
        // proptest's full-domain f64.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}
