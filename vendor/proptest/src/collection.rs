//! Collection strategies: `prop::collection::{vec, btree_map, btree_set}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; like real proptest, duplicate keys
/// coalesce, so the final size may be below the drawn target.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        out
    }
}

/// Strategy for `BTreeSet<T>`; duplicates coalesce as in [`btree_map`].
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(self.element.generate(rng));
        }
        out
    }
}
