//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of proptest it actually uses: the [`proptest!`] macro,
//! strategies for primitive ranges / tuples / collections, the
//! `prop_map` / `prop_flat_map` / `prop_filter` combinators, `prop_oneof!`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for offline determinism:
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   deterministic seed; re-running reproduces it exactly.
//! - **Fixed seeding.** Each test's stream is seeded from the test's
//!   module path and case index, so runs are reproducible everywhere and
//!   `.proptest-regressions` files are ignored.
//! - Filters retry locally (up to a cap) instead of counting global
//!   rejections.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Strategies for `bool` (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type for uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The commonly imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    /// The `prop::` alias the real prelude exposes (`prop::collection::vec`,
    /// `prop::num::f64::NORMAL`, `prop::bool::ANY`, …).
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-definition macro. Mirrors real proptest's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(200))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
///
/// Each test runs `cases` deterministic iterations; the body may use the
/// `prop_assert*` macros and `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::__proptest_run!(config, $name, ($($pat in $strat),+), $body);
            }
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::test_runner::ProptestConfig::default();
                $crate::__proptest_run!(config, $name, ($($pat in $strat),+), $body);
            }
        )*
    };
}

/// Internal: the per-test case loop shared by both `proptest!` arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ($config:expr, $name:ident, ($($pat:pat in $strat:expr),+), $body:block) => {{
        let cases = $config.cases;
        let test_id = concat!(module_path!(), "::", stringify!($name));
        for case in 0..cases {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(test_id, case as u64);
            $(
                let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);
            )+
            let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(e) = outcome {
                panic!(
                    "proptest {test_id}: case {case}/{cases} failed: {e}\n\
                     (deterministic: rerun this test to reproduce)"
                );
            }
        }
    }};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
