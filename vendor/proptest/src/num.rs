//! Numeric strategies (`prop::num::f64::NORMAL`).

/// Strategies for `f64`.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type for normal (finite, non-NaN, non-subnormal) floats.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Normal floats of either sign, spread across magnitudes
    /// (roughly `1e-9` to `1e9`).
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // sign * mantissa in [1, 2) * 2^exp, exp in [-30, 30].
            let bits = rng.next_u64();
            let sign = if bits & 1 == 1 { -1.0 } else { 1.0 };
            let exp = ((bits >> 1) % 61) as i32 - 30;
            let mantissa = 1.0 + ((bits >> 11) & ((1u64 << 52) - 1)) as f64 / (1u64 << 52) as f64;
            sign * mantissa * (exp as f64).exp2()
        }
    }
}
