//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is just a deterministic sampler: `generate` draws one value
//! from the given [`TestRng`]. There is no value tree and no shrinking —
//! failures reproduce exactly via the deterministic seeding instead.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values for property tests.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries until `keep` accepts the value (capped; the cap panics with
    /// `reason` so a too-strict filter is loud, not an infinite loop).
    fn prop_filter<R, F>(self, reason: R, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            keep,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive draws: {}",
            self.reason
        );
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from the boxed options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- primitive range strategies -------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.rng().random_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// A Vec of strategies produces a Vec of values (one draw each, in order).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
