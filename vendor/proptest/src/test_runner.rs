//! Deterministic RNG, config, and failure type for the test macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-run configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case. Bodies return
/// `Result<(), TestCaseError>`; `?` on any `std::error::Error` converts.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias kept for API compatibility with real proptest.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError::fail(e.to_string())
    }
}

/// The deterministic stream strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a stream from a test identifier and case index. The same
    /// `(test_id, case)` pair always produces the same stream.
    pub fn deterministic(test_id: &str, case: u64) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Access to the underlying seeded generator for range sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
