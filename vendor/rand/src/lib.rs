//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform sampling over
//! half-open and inclusive ranges ([`RngExt::random_range`]). The stream
//! is a fixed xoshiro256** sequence seeded via SplitMix64, so every
//! seeded workload, test, and bench is reproducible across runs and
//! platforms.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling extensions over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform boolean.
    fn random_bool_uniform(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;

    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`RngExt::random_range`]. The impls are
/// generic over `T` (mirroring real rand) so that `0..50` unifies with a
/// sample type dictated by surrounding context.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo reduction: the bias over a 64-bit draw is far below
                // anything observable in the test/bench workloads served here.
                let draw = rng.next_u64() % (span as u64 + 1);
                lo.wrapping_add(draw as $t)
            }

            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                <$t>::sample_inclusive(rng, lo, hi - 1)
            }
        }
    )+};
}

impl_sample_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sample range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        // For floats the paper-adjacent workloads treat [lo, hi) and
        // [lo, hi] identically; hitting exactly `hi` has measure zero.
        f64::sample_inclusive(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }

    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
